"""SwitchV — automated SDN switch validation with P4 models.

A complete Python reproduction of Dak Albab et al., SIGCOMM 2022, including
every substrate the paper's system runs on:

* :mod:`repro.smt` — a from-scratch QF_BV SMT solver (the Z3 role),
* :mod:`repro.p4` — P4 models, P4Info, P4-constraints, role instantiations,
  and a P4 text printer/parser,
* :mod:`repro.p4rt` — the P4Runtime protocol layer,
* :mod:`repro.bmv2` — a behavioral-model simulator,
* :mod:`repro.switch` — the layered PINS switch under test, with the
  paper's Appendix-A bug catalogue as injectable faults,
* :mod:`repro.fuzzer` — p4-fuzzer (control-plane API validation, §4),
* :mod:`repro.symbolic` — p4-symbolic (data-plane validation, §5),
* :mod:`repro.switchv` — the end-to-end harness, trivial suite, campaigns,
* :mod:`repro.controller` — a mini SDN controller using the same contract,
* :mod:`repro.workloads` — production-like table states and bug data.

Start with :class:`repro.switchv.SwitchVHarness`; see README.md.
"""

__version__ = "1.0.0"
