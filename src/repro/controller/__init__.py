"""repro.controller — a minimal Orion-style SDN controller.

The paper's ecosystem (Figure 1) has the P4 model serving as a
switch-agnostic *contract* between the switch and the SDN controller.
This package provides the controller side of that contract: a small
intent layer (routes, ACLs, mirrors) that compiles intents into P4Runtime
entries, batches them with the same @refers_to-aware batcher SwitchV uses
(§3 "Batching Table Entries": "as well as when the controller programs the
switch"), and keeps a shadow copy of switch state.

Used by the examples and the end-to-end integration tests; deliberately
small — SwitchV, not the controller, is the paper's contribution.
"""

from repro.controller.controller import Controller, RouteIntent

__all__ = ["Controller", "RouteIntent"]
