"""The mini controller: intents → P4Runtime entries → batched writes."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.fuzzer.batching import make_batches, order_inserts
from repro.p4.p4info import P4Info
from repro.p4rt.channel import ChannelError
from repro.p4rt.messages import TableEntry, Update, UpdateType, WriteRequest
from repro.p4rt.service import P4RuntimeService
from repro.p4rt.status import Code, Status
from repro.workloads.entries import EntryBuilder


@dataclass(frozen=True)
class RouteIntent:
    """A routing intent: prefix → out-port via a fresh nexthop chain."""

    prefix: int
    prefix_len: int
    port: int
    vrf: int = 1


@dataclass
class ProgrammingResult:
    accepted: int = 0
    rejected: List[Tuple[TableEntry, Status]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.rejected


class Controller:
    """Programs a switch through its P4Runtime contract."""

    def __init__(self, p4info: P4Info, switch: P4RuntimeService) -> None:
        self.p4info = p4info
        self.switch = switch
        self.builder = EntryBuilder(p4info)
        # Shadow state: what we believe is installed.
        self.shadow: Dict[Tuple, TableEntry] = {}
        self._next_object_id = 1
        self._port_nexthop: Dict[int, int] = {}

    def connect(self) -> Status:
        """Push the pipeline config (the contract handshake)."""
        return self.switch.set_forwarding_pipeline_config(self.p4info)

    # ------------------------------------------------------------------
    # Intent compilation
    # ------------------------------------------------------------------
    def _allocate_id(self) -> int:
        oid = self._next_object_id
        self._next_object_id += 1
        return oid

    def compile_fabric_base(self, ports: Sequence[int], vrf: int = 1) -> List[TableEntry]:
        """Base fabric state: RIF/neighbor/nexthop per port + VRF + admit."""
        b = self.builder
        entries: List[TableEntry] = []
        for port in ports:
            oid = self._allocate_id()
            entries.append(
                b.exact(
                    "router_interface_tbl",
                    {"router_interface_id": oid},
                    "set_port_and_src_mac",
                    {"port": port, "src_mac": 0x00AA_0000_0000 + port},
                )
            )
            entries.append(
                b.exact(
                    "neighbor_tbl",
                    {"router_interface_id": oid, "neighbor_id": oid},
                    "set_dst_mac",
                    {"dst_mac": 0x00BB_0000_0000 + port},
                )
            )
            entries.append(
                b.exact(
                    "nexthop_tbl",
                    {"nexthop_id": oid},
                    "set_ip_nexthop",
                    {"router_interface_id": oid, "neighbor_id": oid},
                )
            )
            self._port_nexthop[port] = oid
        entries.append(b.exact("vrf_tbl", {"vrf_id": vrf}, "NoAction"))
        entries.append(
            b.ternary("acl_pre_ingress_tbl", {}, "set_vrf", {"vrf_id": vrf}, priority=1)
        )
        entries.append(b.ternary("l3_admit_tbl", {}, "admit_to_l3", priority=1))
        return entries

    def compile_route(self, intent: RouteIntent) -> List[TableEntry]:
        nexthop = self._port_nexthop.get(intent.port)
        if nexthop is None:
            raise KeyError(f"no nexthop provisioned for port {intent.port}")
        return [
            self.builder.lpm(
                "ipv4_tbl",
                {"vrf_id": intent.vrf},
                "ipv4_dst",
                intent.prefix,
                intent.prefix_len,
                "set_nexthop_id",
                {"nexthop_id": nexthop},
            )
        ]

    # ------------------------------------------------------------------
    # Programming
    # ------------------------------------------------------------------
    def program(self, entries: Sequence[TableEntry]) -> ProgrammingResult:
        """Install entries, dependency-ordered and batch-safe (§3)."""
        result = ProgrammingResult()
        updates = order_inserts(
            self.p4info, [Update(UpdateType.INSERT, e) for e in entries]
        )
        for batch in make_batches(self.p4info, updates):
            try:
                response = self.switch.write(WriteRequest(updates=tuple(batch)))
            except ChannelError as exc:
                # The transport abandoned the batch (retries exhausted).
                # Record every entry as rejected-for-availability so the
                # caller can reprogram; the controller's idempotent retry
                # client makes a later re-program converge.
                status = Status(Code.UNAVAILABLE, str(exc))
                result.rejected.extend((u.entry, status) for u in batch)
                continue
            for update, status in zip(batch, response.statuses, strict=False):
                if status.ok:
                    result.accepted += 1
                    self.shadow[update.entry.match_key()] = update.entry
                else:
                    result.rejected.append((update.entry, status))
        return result

    def install_fabric(self, ports: Sequence[int], routes: Sequence[RouteIntent]) -> ProgrammingResult:
        self._port_nexthop = {}
        entries = self.compile_fabric_base(ports)
        for intent in routes:
            entries.extend(self.compile_route(intent))
        return self.program(entries)

    def withdraw(self, entries: Sequence[TableEntry]) -> ProgrammingResult:
        """Delete entries (referrers first, per the reverse dependency order)."""
        result = ProgrammingResult()
        updates = [Update(UpdateType.DELETE, e) for e in entries]
        updates.reverse()
        for batch in make_batches(self.p4info, updates):
            try:
                response = self.switch.write(WriteRequest(updates=tuple(batch)))
            except ChannelError as exc:
                status = Status(Code.UNAVAILABLE, str(exc))
                result.rejected.extend((u.entry, status) for u in batch)
                continue
            for update, status in zip(batch, response.statuses, strict=False):
                if status.ok:
                    result.accepted += 1
                    self.shadow.pop(update.entry.match_key(), None)
                else:
                    result.rejected.append((update.entry, status))
        return result

    def audit(self) -> bool:
        """Compare the shadow state against the switch's read-back."""
        from repro.p4rt.messages import ReadRequest

        observed = {
            e.match_key() for e in self.switch.read(ReadRequest(table_id=0)).entries
        }
        return observed == set(self.shadow)
