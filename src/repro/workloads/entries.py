"""Table-entry workload generation for the SAI-shaped models.

The paper seeds p4-symbolic with "a replay of production table entries"
(§2).  We synthesise states with the same structure: router interfaces
spread over the chip's ports, neighbors and next hops layered on top, WCMP
groups over next-hop subsets, VRFs, LPM route tables with a realistic
prefix-length mix, and ACL entries respecting the role's
@entry_restriction.  Entry counts are parameterised so the Table 3
workloads (798 entries on Inst1, 1314 on Inst2) are reproducible
deterministically from a seed.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.p4.p4info import P4Info
from repro.p4rt import codec
from repro.p4rt.messages import (
    ActionInvocation,
    ActionProfileAction,
    ActionProfileActionSet,
    FieldMatch,
    TableEntry,
)


class EntryBuilder:
    """Convenience constructor for wire entries against a P4Info catalogue."""

    def __init__(self, p4info: P4Info) -> None:
        self.p4info = p4info

    def _table(self, name: str):
        table = self.p4info.table_by_name(name)
        if table is None:
            raise KeyError(f"no table {name} in {self.p4info.program_name}")
        return table

    def _action(self, name: str):
        action = self.p4info.action_by_name(name)
        if action is None:
            raise KeyError(f"no action {name} in {self.p4info.program_name}")
        return action

    def _field_id(self, table, key_name: str) -> Tuple[int, int]:
        mf = table.match_field_by_name(key_name)
        if mf is None:
            raise KeyError(f"no key {key_name} in {table.name}")
        return mf.id, mf.bitwidth

    def _params(self, action, values: Dict[str, int]) -> Tuple[Tuple[int, bytes], ...]:
        out = []
        for p in action.params:
            if p.name not in values:
                raise KeyError(f"missing param {p.name} for {action.name}")
            out.append((p.id, codec.encode(values[p.name], p.bitwidth)))
        return tuple(out)

    # ------------------------------------------------------------------
    # Generic builders
    # ------------------------------------------------------------------
    def exact(self, table_name: str, keys: Dict[str, int], action_name: str,
              params: Optional[Dict[str, int]] = None, priority: int = 0) -> TableEntry:
        table = self._table(table_name)
        action = self._action(action_name)
        matches = []
        for key_name, value in keys.items():
            fid, width = self._field_id(table, key_name)
            matches.append(FieldMatch(fid, "exact", codec.encode(value, width)))
        return TableEntry(
            table_id=table.id,
            matches=tuple(matches),
            action=ActionInvocation(action.id, self._params(action, params or {})),
            priority=priority,
        )

    def lpm(self, table_name: str, exact_keys: Dict[str, int], lpm_key: str,
            prefix: int, prefix_len: int, action_name: str,
            params: Optional[Dict[str, int]] = None) -> TableEntry:
        table = self._table(table_name)
        action = self._action(action_name)
        matches = []
        for key_name, value in exact_keys.items():
            fid, width = self._field_id(table, key_name)
            matches.append(FieldMatch(fid, "exact", codec.encode(value, width)))
        fid, width = self._field_id(table, lpm_key)
        mask = codec.mask_for_prefix(prefix_len, width)
        matches.append(
            FieldMatch(fid, "lpm", codec.encode(prefix & mask, width), prefix_len=prefix_len)
        )
        return TableEntry(
            table_id=table.id,
            matches=tuple(matches),
            action=ActionInvocation(action.id, self._params(action, params or {})),
        )

    def ternary(self, table_name: str, masked_keys: Dict[str, Tuple[int, int]],
                action_name: str, params: Optional[Dict[str, int]] = None,
                priority: int = 10,
                optional_keys: Optional[Dict[str, int]] = None) -> TableEntry:
        table = self._table(table_name)
        action = self._action(action_name)
        matches = []
        for key_name, (value, mask) in masked_keys.items():
            fid, width = self._field_id(table, key_name)
            matches.append(
                FieldMatch(
                    fid,
                    "ternary",
                    codec.encode(value & mask, width),
                    mask=codec.encode(mask, width),
                )
            )
        for key_name, value in (optional_keys or {}).items():
            fid, width = self._field_id(table, key_name)
            matches.append(FieldMatch(fid, "optional", codec.encode(value, width)))
        return TableEntry(
            table_id=table.id,
            matches=tuple(matches),
            action=ActionInvocation(action.id, self._params(action, params or {})),
            priority=priority,
        )

    def wcmp_group(self, group_id: int, members: Sequence[Tuple[int, int]]) -> TableEntry:
        """A one-shot WCMP group: members are (nexthop_id, weight)."""
        table = self._table("wcmp_group_tbl")
        action = self._action("set_nexthop_id")
        fid, width = self._field_id(table, "wcmp_group_id")
        actions = tuple(
            ActionProfileAction(
                action=ActionInvocation(
                    action.id, self._params(action, {"nexthop_id": nh})
                ),
                weight=weight,
            )
            for nh, weight in members
        )
        return TableEntry(
            table_id=table.id,
            matches=(FieldMatch(fid, "exact", codec.encode(group_id, width)),),
            action=ActionProfileActionSet(actions=actions),
        )


def baseline_entries(p4info: P4Info, ports: Sequence[int] = (1, 2, 3, 4)) -> List[TableEntry]:
    """The canonical minimal forwarding state used by the trivial suite and
    the examples: one RIF/neighbor/nexthop per port, VRF 1, a pre-ingress
    VRF assignment, L3 admission, one IPv4 route per port, and an ACL entry
    punting a magic destination to the controller.

    Entries are returned in dependency order (referenced entries first).
    """
    b = EntryBuilder(p4info)
    entries: List[TableEntry] = []
    for index, port in enumerate(ports, start=1):
        entries.append(
            b.exact(
                "router_interface_tbl",
                {"router_interface_id": index},
                "set_port_and_src_mac",
                {"port": port, "src_mac": 0x00AA00000000 + index},
            )
        )
        entries.append(
            b.exact(
                "neighbor_tbl",
                {"router_interface_id": index, "neighbor_id": index},
                "set_dst_mac",
                {"dst_mac": 0x00BB00000000 + index},
            )
        )
        entries.append(
            b.exact(
                "nexthop_tbl",
                {"nexthop_id": index},
                "set_ip_nexthop",
                {"router_interface_id": index, "neighbor_id": index},
            )
        )
    entries.append(b.exact("vrf_tbl", {"vrf_id": 1}, "NoAction"))
    entries.append(
        b.ternary("acl_pre_ingress_tbl", {}, "set_vrf", {"vrf_id": 1}, priority=1)
    )
    entries.append(b.ternary("l3_admit_tbl", {}, "admit_to_l3", priority=1))
    entries.extend(
        b.lpm(
            "ipv4_tbl",
            {"vrf_id": 1},
            "ipv4_dst",
            0x0A000000 + (index << 16),  # 10.<index>.0.0/16
            16,
            "set_nexthop_id",
            {"nexthop_id": index},
        )
        for index, _port in enumerate(ports, start=1)
    )
    # Punt 10.255.255.1 (by destination, or source on WAN-style ACLs) to
    # the controller: the trivial suite's packet-in canary.
    acl_table = p4info.table_by_name("acl_ingress_tbl")
    if acl_table is not None:
        masked = (
            {"dst_ip": (0x0AFFFF01, 0xFFFFFFFF)}
            if acl_table.match_field_by_name("dst_ip") is not None
            else {"src_ip": (0x0AFFFF01, 0xFFFFFFFF)}
        )
        if acl_table.match_field_by_name("is_ipv4") is not None:
            # The role ACL constraints require IPv4 qualification when
            # matching IPv4 fields.
            masked["is_ipv4"] = (1, 1)
        entries.append(b.ternary("acl_ingress_tbl", masked, "trap", priority=20))
    return entries


PUNT_CANARY_IP = 0x0AFFFF01  # 10.255.255.1


# Realistic prefix-length mix for synthetic route tables (rough BGP shape
# scaled to a fabric: /16..../28 heavy around /24).
_PREFIX_MIX = [16] * 2 + [20] * 3 + [22] * 4 + [24] * 8 + [26] * 2 + [28] * 1

# Wider mix for production-scale states (10^5-10^6 routes): every length
# /16../28 is populated, which both tracks a full BGP-derived FIB more
# closely and keeps the short-prefix spaces sparse enough that rejection
# sampling stays cheap when a million distinct routes are drawn.
_WIDE_PREFIX_MIX = (
    [16] * 2 + [17] * 1 + [18] * 2 + [19] * 2 + [20] * 3 + [21] * 3
    + [22] * 4 + [23] * 4 + [24] * 8 + [25] * 2 + [26] * 2 + [27] * 1 + [28] * 1
)

# Above this total the wide mix kicks in by default.
_WIDE_MIX_THRESHOLD = 10_000


def _role_specific_entries(p4info: P4Info, b: EntryBuilder) -> List[TableEntry]:
    """Entries exercising role-specific features: ICMP and TTL ACL matches
    on ToR-style ACLs, mirroring, and tunnel encap/decap on Cerberus."""
    entries: List[TableEntry] = []
    acl = p4info.table_by_name("acl_ingress_tbl")

    if acl is not None and acl.match_field_by_name("icmp_type") is not None:
        # Punt ICMP echo requests (type 8) — the classic control-plane trap.
        entries.append(
            b.ternary(
                "acl_ingress_tbl",
                {
                    "is_ipv4": (1, 1),
                    "ip_protocol": (1, 0xFF),
                    "icmp_type": (8, 0xFF),
                },
                "acl_copy",
                priority=25,
            )
        )
    if acl is not None and acl.match_field_by_name("ttl") is not None:
        # Punt packets whose (post-rewrite) TTL is exactly 33 — a sentinel
        # entry that makes rewrite/ACL ordering observable regardless of
        # whether the packet also matches a route (the punt flag diverges
        # even when both sides drop).
        entries.append(
            b.ternary(
                "acl_ingress_tbl",
                {"is_ipv4": (1, 1), "ttl": (33, 0xFF)},
                "trap",
                priority=26,
            )
        )

    has_mirror_action = acl is not None and any(
        p4info.actions[aid].name == "acl_mirror" for aid in acl.action_ids
    )
    if p4info.table_by_name("mirror_session_tbl") is not None and has_mirror_action:
        entries.append(
            b.exact(
                "mirror_session_tbl",
                {"mirror_session_id": 1},
                "set_mirror_port",
                {"port": 2},
            )
        )
        if acl.match_field_by_name("dst_ip") is not None:
            entries.append(
                b.ternary(
                    "acl_ingress_tbl",
                    {"is_ipv4": (1, 1), "dst_ip": (0x0A01002A, 0xFFFFFFFF)},
                    "acl_mirror",
                    {"mirror_session_id": 1},
                    priority=27,
                )
            )

    # An ACL entry whose value bytes contain 0x20 (the space character):
    # probes string-keyed internal buses (the space_in_key fault).
    if acl is not None:
        space_key = "dst_ip" if acl.match_field_by_name("dst_ip") is not None else "src_ip"
        masked = {space_key: (0x0A200020, 0xFFFFFFFF)}  # 10.32.0.32
        if acl.match_field_by_name("is_ipv4") is not None:
            masked["is_ipv4"] = (1, 1)
        entries.append(b.ternary("acl_ingress_tbl", masked, "drop", priority=28))

    # A default route makes edge destinations (e.g. limited broadcast)
    # routable, which several model-fault detections rely on.
    entries.append(
        b.lpm("ipv4_tbl", {"vrf_id": 1}, "ipv4_dst", 0, 1, "set_nexthop_id", {"nexthop_id": 2})
    )
    entries.append(
        b.lpm(
            "ipv4_tbl", {"vrf_id": 1}, "ipv4_dst", 0x80000000, 1,
            "set_nexthop_id", {"nexthop_id": 2},
        )
    )

    if p4info.table_by_name("tunnel_tbl") is not None:
        # IP-in-IP tunnels with byte-asymmetric destination addresses, so an
        # endianness slip is observable.
        entries.append(
            b.exact(
                "tunnel_tbl",
                {"tunnel_id": 1},
                "set_ip_in_ip_encap",
                {"encap_src_ip": 0x0AC80001, "encap_dst_ip": 0x0A00004D},
            )
        )
        entries.append(
            b.lpm(
                "ipv4_tbl",
                {"vrf_id": 1},
                "ipv4_dst",
                0x0AC90000,  # 10.201.0.0/16 routes into the tunnel
                16,
                "set_nexthop_id_and_tunnel",
                {"nexthop_id": 1, "tunnel_id": 1},
            )
        )
    if p4info.table_by_name("decap_tbl") is not None:
        entries.append(
            b.ternary(
                "decap_tbl",
                {"dst_ip": (0x0A000000, 0xFF000000)},
                "decap",
                priority=5,
                optional_keys={"in_port": 2},
            )
        )
    return entries


def production_like_entries(
    p4info: P4Info,
    total: int,
    seed: int = 1,
    ports: Sequence[int] = (1, 2, 3, 4, 5, 6, 7, 8),
    prefix_mix: Optional[Sequence[int]] = None,
) -> List[TableEntry]:
    """A synthetic production replay of roughly ``total`` entries.

    Structure: the baseline scaffolding, a WCMP layer, then LPM routes
    (plus a sprinkle of ACL entries) filling the remaining budget.
    Deterministic for a given seed.  Totals past
    ``_WIDE_MIX_THRESHOLD`` switch to the wide prefix mix (override with
    ``prefix_mix``); the paper-scale workloads are byte-identical to what
    this function always produced.  Mind the target tables' guaranteed
    sizes at large totals — :mod:`repro.workloads.scale` raises them.
    """
    if prefix_mix is None:
        prefix_mix = _PREFIX_MIX if total <= _WIDE_MIX_THRESHOLD else _WIDE_PREFIX_MIX
    rng = random.Random(seed)
    b = EntryBuilder(p4info)
    entries = baseline_entries(p4info, ports=ports)

    num_ports = len(ports)
    # WCMP groups over nexthops 1..len(ports).
    num_groups = max(2, min(8, total // 100))
    for gid in range(1, num_groups + 1):
        size = rng.randint(2, min(4, num_ports))
        members = rng.sample(range(1, num_ports + 1), size)
        entries.append(
            b.wcmp_group(gid, [(nh, rng.randint(1, 3)) for nh in members])
        )

    # A couple of extra VRFs with their own route spaces, reachable via
    # port-based pre-ingress assignment (last two ports land in them).
    extra_vrfs = [2, 3]
    for index, vrf in enumerate(extra_vrfs):
        entries.append(b.exact("vrf_tbl", {"vrf_id": vrf}, "NoAction"))
        entries.append(
            b.ternary(
                "acl_pre_ingress_tbl",
                {},
                "set_vrf",
                {"vrf_id": vrf},
                priority=2,
                optional_keys={"in_port": ports[-(index + 1)]},
            )
        )

    entries.extend(_role_specific_entries(p4info, b))

    vrfs = [1] + extra_vrfs
    seen_routes = set()
    budget = total - len(entries)
    acl_budget = max(4, budget // 20)
    route_budget = budget - acl_budget

    while route_budget > 0:
        vrf = rng.choice(vrfs)
        plen = rng.choice(prefix_mix)
        prefix = rng.getrandbits(32) & codec.mask_for_prefix(plen, 32)
        if (vrf, prefix, plen) in seen_routes:
            continue
        seen_routes.add((vrf, prefix, plen))
        roll = rng.random()
        if roll < 0.70:
            action, params = "set_nexthop_id", {"nexthop_id": rng.randint(1, num_ports)}
        elif roll < 0.90:
            action, params = "set_wcmp_group_id", {"wcmp_group_id": rng.randint(1, num_groups)}
        else:
            action, params = "drop", {}
        entries.append(b.lpm("ipv4_tbl", {"vrf_id": vrf}, "ipv4_dst", prefix, plen, action, params))
        route_budget -= 1

    priority = 30
    seen_acl = set()
    while acl_budget > 0:
        dst = rng.getrandbits(32)
        if dst in seen_acl:
            continue
        seen_acl.add(dst)
        table = p4info.table_by_name("acl_ingress_tbl")
        if table is not None and table.match_field_by_name("dst_ip") is not None:
            masked = {"dst_ip": (dst, 0xFFFFFF00)}
            if table.match_field_by_name("is_ipv4") is not None:
                masked["is_ipv4"] = (1, 1)
            entries.append(
                b.ternary(
                    "acl_ingress_tbl",
                    masked,
                    "drop" if rng.random() < 0.7 else "acl_copy",
                    priority=priority,
                )
            )
        else:
            # WAN-style ACL: match on source prefix instead.
            masked = {"src_ip": (dst, 0xFFFFFF00), "is_ipv4": (1, 1)}
            entries.append(b.ternary("acl_ingress_tbl", masked, "drop", priority=priority))
        priority += 1
        acl_budget -= 1
    return entries
