"""The paper's published bug data (Table 1, Table 2, Figure 7, Appendix A).

Three layers of ground truth feed the benchmarks:

* :data:`TABLE1_PINS` / :data:`TABLE1_CERBERUS` — per-component bug counts
  with the p4-fuzzer / p4-symbolic split, copied from Table 1.
* :data:`TABLE2_PINS` / :data:`TABLE2_CERBERUS` — how many bugs each trivial
  test (§6.2) would have found, copied from Table 2.
* :data:`FIGURE7_BUCKETS` / :func:`synthesize_resolution_days` — Figure 7's
  days-to-resolution histogram.  The paper publishes exact per-bug numbers
  only for the Appendix-A sample (carried on our fault catalogue); the rest
  of the 122 PINS bugs are synthesised to match the published aggregates
  (majority ≤ 14 days, 33% ≤ 5 days, 9 unresolved, mean far below the
  66-day non-SwitchV baseline) with a deterministic generator.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.switch.faults import FAULT_CATALOG

# ----------------------------------------------------------------------
# Table 1: bugs by component (paper's exact numbers).
# Component -> (total, p4-fuzzer, p4-symbolic)
# ----------------------------------------------------------------------

TABLE1_PINS: Dict[str, Tuple[int, int, int]] = {
    "P4Runtime Server": (47, 11, 36),
    "gNMI": (2, 0, 2),
    "Orchestration Agent": (24, 12, 11),
    "SyncD Binary": (23, 10, 13),
    "Switch Linux": (9, 0, 9),
    "Hardware": (1, 1, 0),
    "P4 Toolchain": (2, 1, 1),
    "Input P4 Program": (15, 2, 13),
}
TABLE1_PINS_TOTAL = (122, 37, 85)

TABLE1_CERBERUS: Dict[str, Tuple[int, int, int]] = {
    "Switch software": (24, 14, 10),
    "Hardware": (1, 0, 1),
    "Input P4 Program": (3, 0, 3),
    "BMv2 P4 Simulator": (4, 4, 0),
}
TABLE1_CERBERUS_TOTAL = (32, 18, 14)

# ----------------------------------------------------------------------
# Table 2: trivial-suite detectability. Test -> (PINS count/%), Cerberus.
# Percentages as published; counts for PINS derived from them.
# ----------------------------------------------------------------------

TABLE2_PINS: Dict[str, Tuple[int, float]] = {
    "set_p4info": (22, 0.18),
    "table_entry_programming": (15, 0.12),
    "read_all_tables": (10, 0.08),
    "packet_in": (12, 0.10),
    "packet_out": (4, 0.03),
    "packet_forwarding": (0, 0.0),
    "not_found": (60, 0.49),
}

TABLE2_CERBERUS: Dict[str, Tuple[int, float]] = {
    "set_p4info": (0, 0.0),
    "table_entry_programming": (0, 0.0),
    "read_all_tables": (2, 0.06),
    "packet_in": (4, 0.13),
    "packet_out": (1, 0.03),
    "packet_forwarding": (0, 0.0),
    "not_found": (25, 0.78),
}

# ----------------------------------------------------------------------
# Figure 7: days-to-resolution buckets (x-axis labels of the figure).
# ----------------------------------------------------------------------

FIGURE7_BUCKETS: List[Tuple[str, int, Optional[int]]] = [
    ("0-3", 0, 3),
    ("3-6", 3, 6),
    ("6-10", 6, 10),
    ("10-15", 10, 15),
    ("15-20", 15, 20),
    ("20-25", 20, 25),
    ("25-30", 25, 30),
    ("30-60", 30, 60),
    ("60-90", 60, 90),
    ("90-120", 90, 120),
    ("120-150", 120, 150),
    (">= 150", 150, None),
]

PINS_UNRESOLVED = 9  # "We reported 9 bugs that remain unresolved"


def bucket_of(days: int) -> str:
    """Figure 7 bucket label for a resolution time."""
    for label, low, high in FIGURE7_BUCKETS:
        if high is None:
            if days >= low:
                return label
        elif low <= days < high:
            return label
    raise ValueError(f"unbucketable days {days}")


def bucket_counts(days: List[int]) -> Dict[str, int]:
    counts = {label: 0 for label, _l, _h in FIGURE7_BUCKETS}
    for value in days:
        counts[bucket_of(value)] += 1
    return counts


def catalog_resolution_days(stack: str = "pins") -> List[Tuple[str, Optional[int]]]:
    """(discovering tool, days) for the concrete Appendix-A-derived faults."""
    return [
        (fault.discovered_by, fault.days_to_resolution)
        for fault in FAULT_CATALOG
        if fault.stack == stack
    ]


def synthesize_resolution_days(
    total: int = 122,
    unresolved: int = PINS_UNRESOLVED,
    seed: int = 7,
    stack: str = "pins",
) -> List[Tuple[str, Optional[int]]]:
    """Per-bug (tool, days) for the full population behind Figure 7.

    Starts from the published per-bug data (the catalogue) and fills up to
    ``total`` with draws shaped to the paper's aggregate statements:
    33% of bugs resolved within 5 days, the majority within 14 days, a long
    tail reaching past 150 days, and ``unresolved`` bugs open.  The tool
    split follows Table 1 (37 fuzzer / 85 symbolic for PINS).
    """
    rng = random.Random(seed)
    known = catalog_resolution_days(stack)
    out: List[Tuple[str, Optional[int]]] = list(known)
    fuzzer_total, symbolic_total = (
        (TABLE1_PINS_TOTAL[1], TABLE1_PINS_TOTAL[2])
        if stack == "pins"
        else (TABLE1_CERBERUS_TOTAL[1], TABLE1_CERBERUS_TOTAL[2])
    )
    fuzzer_left = fuzzer_total - sum(1 for tool, _d in known if tool == "p4-fuzzer")
    unresolved_left = unresolved - sum(1 for _t, d in known if d is None)

    while len(out) < total:
        tool = "p4-fuzzer" if (fuzzer_left > 0 and rng.random() < 0.35) else "p4-symbolic"
        if tool == "p4-fuzzer":
            fuzzer_left -= 1
        if unresolved_left > 0 and rng.random() < unresolved_left / max(
            1, total - len(out)
        ):
            unresolved_left -= 1
            out.append((tool, None))
            continue
        roll = rng.random()
        if roll < 0.33:
            days = rng.randint(0, 5)  # 33% within 5 days
        elif roll < 0.62:
            days = rng.randint(6, 14)  # majority within 14
        elif roll < 0.85:
            days = rng.randint(15, 45)
        elif roll < 0.96:
            days = rng.randint(46, 120)
        else:
            days = rng.randint(121, 200)
        out.append((tool, days))
    return out[:total]


def aggregate_figure7(
    population: List[Tuple[str, Optional[int]]],
) -> Dict[str, Dict[str, int]]:
    """Figure 7's series: Total / Symbolic / Fuzzer histogram per bucket."""
    resolved = [(tool, d) for tool, d in population if d is not None]
    return {
        "Total": bucket_counts([d for _t, d in resolved]),
        "Symbolic": bucket_counts([d for t, d in resolved if t == "p4-symbolic"]),
        "Fuzzer": bucket_counts([d for t, d in resolved if t == "p4-fuzzer"]),
    }


def median_resolution_days(population: List[Tuple[str, Optional[int]]]) -> float:
    resolved = sorted(d for _t, d in population if d is not None)
    mid = len(resolved) // 2
    if len(resolved) % 2:
        return float(resolved[mid])
    return (resolved[mid - 1] + resolved[mid]) / 2
