"""Production-scale workload helpers.

The paper's Table 3 workloads top out at 1314 entries; real switches run
route tables into the hundreds of thousands and sit at capacity (CRM —
critical resource monitoring — alarms fire as tables approach their
guaranteed sizes).  This module provides the pieces the million-entry
benchmarks and differential tests need:

* :func:`scale_table_sizes` — an AST rewrite raising selected tables'
  guaranteed sizes, so the shipped programs can legally hold production
  route counts (the P4 sources pin ``ipv4_tbl`` at 1024);
* :func:`production_scale_program` — a convenience wrapper sizing the
  route/ACL tables for a given workload total, returning the scaled
  program and its matching P4Info;
* :func:`crm_fill_updates` — a fill-to-capacity update sequence with
  optional steady-state churn (delete + re-insert at the capacity
  boundary), the regime where superlinear per-update cost hurts most.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Callable, List, Mapping, Optional, Sequence, Tuple

from repro.p4.ast import If, P4Program, Seq, Table, TableApply
from repro.p4.p4info import P4Info, build_p4info
from repro.p4rt.messages import TableEntry, Update, UpdateType


def _map_tables(block: Seq, fn: Callable[[Table], Table]) -> Seq:
    nodes = []
    for node in block:
        if isinstance(node, TableApply):
            node = TableApply(fn(node.table))
        elif isinstance(node, If):
            node = If(
                cond=node.cond,
                then_block=_map_tables(node.then_block, fn),
                else_block=_map_tables(node.else_block, fn),
                label=node.label,
            )
        nodes.append(node)
    return Seq(tuple(nodes))


def scale_table_sizes(program: P4Program, sizes: Mapping[str, int]) -> P4Program:
    """A copy of the program with the named tables' guaranteed sizes raised
    (or lowered) to the given values; every other table is untouched."""

    def resize(table: Table) -> Table:
        new = sizes.get(table.name)
        if new is None or new == table.size:
            return table
        return replace(table, size=new)

    return replace(
        program,
        ingress=_map_tables(program.ingress, resize),
        egress=_map_tables(program.egress, resize),
    )


def production_scale_program(
    program: P4Program, total_entries: int
) -> Tuple[P4Program, P4Info]:
    """Scale the route/ACL tables to hold a ``total_entries`` production
    workload (routes dominate; ACLs get a tenth with headroom) and return
    the program with its matching catalogue."""
    sizes = {
        "ipv4_tbl": max(1024, total_entries),
        "ipv6_tbl": max(1024, total_entries),
        "acl_ingress_tbl": max(1024, total_entries // 10),
    }
    scaled = scale_table_sizes(program, sizes)
    return scaled, build_p4info(scaled)


def crm_fill_updates(
    entries: Sequence[TableEntry],
    churn: int = 0,
    seed: int = 1,
    victims: Optional[Sequence[TableEntry]] = None,
) -> List[Update]:
    """A CRM-style replay: fill to capacity, then churn at the boundary.

    The first ``len(entries)`` updates INSERT the workload in dependency
    order; the remaining ``2 * churn`` updates repeatedly DELETE an
    installed entry and immediately re-INSERT it — the steady state of a
    production switch whose tables are full.  ``victims`` restricts churn
    to a pool that is safe to delete (e.g. routes, which reference other
    entries but are never referenced themselves); it defaults to the whole
    workload, in which case some deletes may legitimately be rejected for
    referential integrity — the oracle judges those rejections as
    admissible either way.
    """
    rng = random.Random(seed)
    updates = [Update(UpdateType.INSERT, entry) for entry in entries]
    pool = list(victims) if victims is not None else list(entries)
    if churn and pool:
        for _ in range(churn):
            victim = pool[rng.randrange(len(pool))]
            updates.append(Update(UpdateType.DELETE, victim))
            updates.append(Update(UpdateType.INSERT, victim))
    return updates
