"""repro.workloads — production-like table-entry workloads and bug data.

* :mod:`repro.workloads.entries` — an entry builder for the SAI-shaped
  models plus generators for baseline and production-replay-like states
  (the paper replays production table entries; we synthesise states with
  the same structure and the Table 3 sizes: 798 / 1314 entries).
* :mod:`repro.workloads.bug_catalog` — the Appendix-A bug data (component,
  discovering tool, days to resolution, trivial-test detectability) plus
  Table 1/2 aggregate counts, used by the campaign benchmarks.
* :mod:`repro.workloads.scale` — production-scale helpers: table-size
  rewrites so the shipped programs can hold 10^5-10^6 routes, and
  CRM-style fill-to-capacity update sequences.
"""

from repro.workloads.entries import EntryBuilder, baseline_entries, production_like_entries
from repro.workloads.scale import (
    crm_fill_updates,
    production_scale_program,
    scale_table_sizes,
)

__all__ = [
    "EntryBuilder",
    "baseline_entries",
    "production_like_entries",
    "crm_fill_updates",
    "production_scale_program",
    "scale_table_sizes",
]
