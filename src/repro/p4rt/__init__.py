"""repro.p4rt — the P4Runtime protocol layer.

The paper's control-plane contract is the P4Runtime standard instantiated
for a given P4 program.  We reproduce the protocol's *semantics* in-process
(the gRPC transport is irrelevant to every behaviour SwitchV checks):

* :mod:`repro.p4rt.codec` — canonical bytestring encoding of match values
  (the P4Runtime "canonical binary representation": minimal-length, no
  redundant leading zero bytes).
* :mod:`repro.p4rt.status` — gRPC-style status codes used by Write/Read
  responses, including per-update statuses inside a batch.
* :mod:`repro.p4rt.messages` — WriteRequest / Update / TableEntry /
  FieldMatch / ActionInvocation / ActionProfileActionSet / ReadRequest /
  PacketIn / PacketOut message dataclasses.
* :mod:`repro.p4rt.service` — the abstract service interface a switch
  exposes, plus a direct in-process client.
* :mod:`repro.p4rt.channel` — a fault-injecting transport layer wrapping
  any service (dropped/duplicated/delayed RPCs, resets, crash/restart).
* :mod:`repro.p4rt.retry` — a retrying client with per-RPC deadlines,
  deterministic backoff, and idempotency-aware Write semantics.
"""

from repro.p4rt.channel import (
    ChannelError,
    ChannelReset,
    ChannelStats,
    DeadlineExceeded,
    FaultInjectingChannel,
    FaultProfile,
    PROFILES,
    RequestDropped,
    ResponseDropped,
    RetriesExhausted,
    resolve_profile,
)
from repro.p4rt.messages import (
    ActionInvocation,
    ActionProfileAction,
    ActionProfileActionSet,
    FieldMatch,
    PacketIn,
    PacketOut,
    ReadRequest,
    ReadResponse,
    TableEntry,
    Update,
    UpdateType,
    WriteRequest,
    WriteResponse,
)
from repro.p4rt.retry import (
    RetryPolicy,
    RetryStats,
    RetryingP4RuntimeClient,
    WriteInfo,
    build_resilient_client,
)
from repro.p4rt.status import Code, Status

__all__ = [
    "ActionInvocation",
    "ActionProfileAction",
    "ActionProfileActionSet",
    "ChannelError",
    "ChannelReset",
    "ChannelStats",
    "Code",
    "DeadlineExceeded",
    "FaultInjectingChannel",
    "FaultProfile",
    "FieldMatch",
    "PROFILES",
    "PacketIn",
    "PacketOut",
    "ReadRequest",
    "ReadResponse",
    "RequestDropped",
    "ResponseDropped",
    "RetriesExhausted",
    "RetryPolicy",
    "RetryStats",
    "RetryingP4RuntimeClient",
    "Status",
    "TableEntry",
    "Update",
    "UpdateType",
    "WriteInfo",
    "WriteRequest",
    "WriteResponse",
    "build_resilient_client",
    "resolve_profile",
]
