"""repro.p4rt — the P4Runtime protocol layer.

The paper's control-plane contract is the P4Runtime standard instantiated
for a given P4 program.  We reproduce the protocol's *semantics* in-process
(the gRPC transport is irrelevant to every behaviour SwitchV checks):

* :mod:`repro.p4rt.codec` — canonical bytestring encoding of match values
  (the P4Runtime "canonical binary representation": minimal-length, no
  redundant leading zero bytes).
* :mod:`repro.p4rt.status` — gRPC-style status codes used by Write/Read
  responses, including per-update statuses inside a batch.
* :mod:`repro.p4rt.messages` — WriteRequest / Update / TableEntry /
  FieldMatch / ActionInvocation / ActionProfileActionSet / ReadRequest /
  PacketIn / PacketOut message dataclasses.
* :mod:`repro.p4rt.service` — the abstract service interface a switch
  exposes, plus a direct in-process client.
"""

from repro.p4rt.messages import (
    ActionInvocation,
    ActionProfileAction,
    ActionProfileActionSet,
    FieldMatch,
    PacketIn,
    PacketOut,
    ReadRequest,
    ReadResponse,
    TableEntry,
    Update,
    UpdateType,
    WriteRequest,
    WriteResponse,
)
from repro.p4rt.status import Code, Status

__all__ = [
    "ActionInvocation",
    "ActionProfileAction",
    "ActionProfileActionSet",
    "Code",
    "FieldMatch",
    "PacketIn",
    "PacketOut",
    "ReadRequest",
    "ReadResponse",
    "Status",
    "TableEntry",
    "Update",
    "UpdateType",
    "WriteRequest",
    "WriteResponse",
]
