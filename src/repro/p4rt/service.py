"""The P4Runtime service interface and an in-process client.

In the deployed system this is a gRPC service; every semantic SwitchV
validates lives above the transport, so we model the service as an abstract
base class that switch stacks implement directly.  The client adds the
connection conveniences a controller or test harness wants (single-update
writes, full-state reads) without changing semantics.
"""

from __future__ import annotations

import abc
from typing import List, Sequence

from repro.p4.p4info import P4Info
from repro.p4rt.messages import (
    PacketIn,
    PacketOut,
    ReadRequest,
    ReadResponse,
    TableEntry,
    Update,
    UpdateType,
    WriteRequest,
    WriteResponse,
)
from repro.p4rt.status import Status


class P4RuntimeService(abc.ABC):
    """What a P4Runtime-speaking switch exposes to the controller."""

    @abc.abstractmethod
    def set_forwarding_pipeline_config(self, p4info: P4Info) -> Status:
        """Push the P4Info contract (the 'Set P4Info' step of §6.2)."""

    @abc.abstractmethod
    def write(self, request: WriteRequest) -> WriteResponse:
        """Apply a batch of updates; per-update statuses are returned."""

    @abc.abstractmethod
    def read(self, request: ReadRequest) -> ReadResponse:
        """Read back installed entries (wildcard read if table_id == 0)."""

    @abc.abstractmethod
    def packet_out(self, packet: PacketOut) -> Status:
        """Inject a packet from the controller into the switch."""

    @abc.abstractmethod
    def drain_packet_ins(self) -> List[PacketIn]:
        """Collect packets the switch punted to the controller."""


class P4RuntimeClient:
    """Thin convenience wrapper over a service (the controller side)."""

    def __init__(self, service: P4RuntimeService, device_id: int = 1) -> None:
        self._service = service
        self._device_id = device_id

    def set_pipeline(self, p4info: P4Info) -> Status:
        return self._service.set_forwarding_pipeline_config(p4info)

    def write_updates(self, updates: Sequence[Update]) -> WriteResponse:
        request = WriteRequest(updates=tuple(updates), device_id=self._device_id)
        return self._service.write(request)

    def insert(self, entry: TableEntry) -> Status:
        response = self.write_updates([Update(UpdateType.INSERT, entry)])
        return response.statuses[0]

    def modify(self, entry: TableEntry) -> Status:
        response = self.write_updates([Update(UpdateType.MODIFY, entry)])
        return response.statuses[0]

    def delete(self, entry: TableEntry) -> Status:
        response = self.write_updates([Update(UpdateType.DELETE, entry)])
        return response.statuses[0]

    def read_all(self) -> List[TableEntry]:
        return list(self._service.read(ReadRequest(table_id=0)).entries)

    def read_table(self, table_id: int) -> List[TableEntry]:
        return list(self._service.read(ReadRequest(table_id=table_id)).entries)

    def packet_out(self, payload: bytes, egress_port: int, submit_to_ingress: bool = False) -> Status:
        return self._service.packet_out(
            PacketOut(payload=payload, egress_port=egress_port, submit_to_ingress=submit_to_ingress)
        )

    def drain_packet_ins(self) -> List[PacketIn]:
        return self._service.drain_packet_ins()
