"""The P4Runtime service interface and an in-process client.

In the deployed system this is a gRPC service; every semantic SwitchV
validates lives above the transport, so we model the service as an abstract
base class that switch stacks implement directly.  The client adds the
connection conveniences a controller or test harness wants (single-update
writes, full-state reads) without changing semantics.
"""

from __future__ import annotations

import abc
import threading
from typing import List, Sequence

from repro.p4.p4info import P4Info
from repro.p4rt.messages import (
    PacketIn,
    PacketOut,
    ReadRequest,
    ReadResponse,
    TableEntry,
    Update,
    UpdateType,
    WriteRequest,
    WriteResponse,
)
from repro.p4rt.status import Status


class P4RuntimeService(abc.ABC):
    """What a P4Runtime-speaking switch exposes to the controller."""

    @abc.abstractmethod
    def set_forwarding_pipeline_config(self, p4info: P4Info) -> Status:
        """Push the P4Info contract (the 'Set P4Info' step of §6.2)."""

    @abc.abstractmethod
    def write(self, request: WriteRequest) -> WriteResponse:
        """Apply a batch of updates; per-update statuses are returned."""

    @abc.abstractmethod
    def read(self, request: ReadRequest) -> ReadResponse:
        """Read back installed entries (wildcard read if table_id == 0)."""

    @abc.abstractmethod
    def packet_out(self, packet: PacketOut) -> Status:
        """Inject a packet from the controller into the switch."""

    @abc.abstractmethod
    def drain_packet_ins(self) -> List[PacketIn]:
        """Collect packets the switch punted to the controller."""


class SerializedP4RuntimeService(P4RuntimeService):
    """Thread-safe facade: serializes every RPC through one reentrant lock.

    The in-process switch stacks are plain single-threaded Python objects;
    when several threads share one session (the pipelined fuzzer's executor
    in real-time mode, a multi-threaded driver), wrap the stack in this
    facade so RPCs never interleave mid-call.  The fault-injecting channel
    and retry client already serialize their own roll/stats bookkeeping;
    this wrapper is for bare stacks and custom services that do not.
    """

    def __init__(self, service: P4RuntimeService) -> None:
        self._service = service
        self._lock = threading.RLock()

    def set_forwarding_pipeline_config(self, p4info: P4Info) -> Status:
        with self._lock:
            return self._service.set_forwarding_pipeline_config(p4info)

    def write(self, request: WriteRequest) -> WriteResponse:
        with self._lock:
            return self._service.write(request)

    def read(self, request: ReadRequest) -> ReadResponse:
        with self._lock:
            return self._service.read(request)

    def packet_out(self, packet: PacketOut) -> Status:
        with self._lock:
            return self._service.packet_out(packet)

    def drain_packet_ins(self) -> List[PacketIn]:
        with self._lock:
            return self._service.drain_packet_ins()

    def __getattr__(self, name):
        # Data-plane helpers (send_packet, drain_egress) reach the wrapped
        # stack unserialized: they are the tester's physical ports, driven
        # from the harness thread only.
        return getattr(self._service, name)


class P4RuntimeClient:
    """Thin convenience wrapper over a service (the controller side)."""

    def __init__(self, service: P4RuntimeService, device_id: int = 1) -> None:
        self._service = service
        self._device_id = device_id

    def set_pipeline(self, p4info: P4Info) -> Status:
        return self._service.set_forwarding_pipeline_config(p4info)

    def write_updates(self, updates: Sequence[Update]) -> WriteResponse:
        request = WriteRequest(updates=tuple(updates), device_id=self._device_id)
        return self._service.write(request)

    def insert(self, entry: TableEntry) -> Status:
        response = self.write_updates([Update(UpdateType.INSERT, entry)])
        return response.statuses[0]

    def modify(self, entry: TableEntry) -> Status:
        response = self.write_updates([Update(UpdateType.MODIFY, entry)])
        return response.statuses[0]

    def delete(self, entry: TableEntry) -> Status:
        response = self.write_updates([Update(UpdateType.DELETE, entry)])
        return response.statuses[0]

    def read_all(self) -> List[TableEntry]:
        return list(self._service.read(ReadRequest(table_id=0)).entries)

    def read_table(self, table_id: int) -> List[TableEntry]:
        return list(self._service.read(ReadRequest(table_id=table_id)).entries)

    def packet_out(self, payload: bytes, egress_port: int, submit_to_ingress: bool = False) -> Status:
        return self._service.packet_out(
            PacketOut(payload=payload, egress_port=egress_port, submit_to_ingress=submit_to_ingress)
        )

    def drain_packet_ins(self) -> List[PacketIn]:
        return self._service.drain_packet_ins()
