"""gRPC-style status codes for P4Runtime responses.

P4Runtime reports the outcome of a Write RPC as a gRPC status; for batched
writes, a failed RPC carries one nested status per update (the
``Error details`` mechanism).  The oracle reasons about these codes, so we
keep the exact gRPC numeric values and names.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List


class Code(enum.IntEnum):
    """The subset of gRPC status codes used by the P4Runtime specification."""

    OK = 0
    CANCELLED = 1
    UNKNOWN = 2
    INVALID_ARGUMENT = 3
    DEADLINE_EXCEEDED = 4
    NOT_FOUND = 5
    ALREADY_EXISTS = 6
    PERMISSION_DENIED = 7
    RESOURCE_EXHAUSTED = 8
    FAILED_PRECONDITION = 9
    ABORTED = 10
    OUT_OF_RANGE = 11
    UNIMPLEMENTED = 12
    INTERNAL = 13
    UNAVAILABLE = 14


@dataclass(frozen=True)
class Status:
    """A single status: code plus human-readable message."""

    code: Code = Code.OK
    message: str = ""

    @property
    def ok(self) -> bool:
        return self.code is Code.OK

    def __repr__(self) -> str:
        if self.ok:
            return "Status(OK)"
        return f"Status({self.code.name}: {self.message})"


OK = Status()


def invalid_argument(message: str) -> Status:
    return Status(Code.INVALID_ARGUMENT, message)


def not_found(message: str) -> Status:
    return Status(Code.NOT_FOUND, message)


def already_exists(message: str) -> Status:
    return Status(Code.ALREADY_EXISTS, message)


def resource_exhausted(message: str) -> Status:
    return Status(Code.RESOURCE_EXHAUSTED, message)


def failed_precondition(message: str) -> Status:
    return Status(Code.FAILED_PRECONDITION, message)


def internal(message: str) -> Status:
    return Status(Code.INTERNAL, message)


def unimplemented(message: str) -> Status:
    return Status(Code.UNIMPLEMENTED, message)


@dataclass
class BatchStatus:
    """Outcome of a batched Write: overall status + per-update statuses.

    Per the P4Runtime specification, if any update fails the overall code is
    the code of the *first* failing update (implementations vary; the oracle
    only relies on the per-update statuses), and every update gets an
    individual status.  A compliant switch applies updates independently —
    partial application is allowed across a batch, but each single update is
    atomic.
    """

    per_update: List[Status] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(s.ok for s in self.per_update)

    @property
    def overall(self) -> Status:
        for s in self.per_update:
            if not s.ok:
                return s
        return OK

    def __repr__(self) -> str:
        if self.ok:
            return f"BatchStatus(OK x{len(self.per_update)})"
        bad = sum(1 for s in self.per_update if not s.ok)
        return f"BatchStatus({bad}/{len(self.per_update)} failed: {self.overall!r})"
