"""P4Runtime message dataclasses.

These mirror the protobuf messages of the P4Runtime specification closely
enough that every behaviour SwitchV exercises — batched writes, one-shot
action selector programming, canonical-byte validation, read-backs,
packet-io — has the same shape here.  Values are stored as *raw bytes*, not
integers: p4-fuzzer mutations deliberately construct non-canonical and
overlong encodings, and the switch under test must be able to receive them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import List, Optional, Tuple, Union

from repro.p4rt import codec


class UpdateType(enum.Enum):
    INSERT = "INSERT"
    MODIFY = "MODIFY"
    DELETE = "DELETE"


@dataclass(frozen=True)
class FieldMatch:
    """One match-field clause inside a table entry.

    Exactly one of the kind-specific payloads is meaningful, selected by
    ``kind``:

    * ``exact``: ``value``
    * ``lpm``: ``value`` + ``prefix_len``
    * ``ternary``: ``value`` + ``mask``
    * ``optional``: ``value``

    Per the P4Runtime spec, omitting a ternary/optional/lpm field match means
    wildcard; exact fields are mandatory.  ``kind`` is what the *client*
    claims — a mutation may deliberately mislabel it.
    """

    field_id: int
    kind: str  # "exact" | "lpm" | "ternary" | "optional"
    value: bytes
    mask: bytes = b""
    prefix_len: int = 0

    def canonical(self) -> "FieldMatch":
        return replace(
            self,
            value=codec.canonicalize(self.value),
            mask=codec.canonicalize(self.mask) if self.mask else b"",
        )

    def __repr__(self) -> str:
        if self.kind == "exact":
            return f"FieldMatch(#{self.field_id} == {self.value.hex()})"
        if self.kind == "lpm":
            return f"FieldMatch(#{self.field_id} lpm {self.value.hex()}/{self.prefix_len})"
        if self.kind == "ternary":
            return f"FieldMatch(#{self.field_id} &&& {self.value.hex()}/{self.mask.hex()})"
        return f"FieldMatch(#{self.field_id} optional {self.value.hex()})"


@dataclass(frozen=True)
class ActionInvocation:
    """A single action with concrete arguments: (param_id, raw bytes)."""

    action_id: int
    params: Tuple[Tuple[int, bytes], ...] = ()

    def param(self, param_id: int) -> Optional[bytes]:
        for pid, data in self.params:
            if pid == param_id:
                return data
        return None

    def __repr__(self) -> str:
        inner = ", ".join(f"#{pid}={data.hex()}" for pid, data in self.params)
        return f"Action(0x{self.action_id:08x}; {inner})"


@dataclass(frozen=True)
class ActionProfileAction:
    """One weighted member of a one-shot action set."""

    action: ActionInvocation
    weight: int
    watch_port: int = 0


@dataclass(frozen=True)
class ActionProfileActionSet:
    """One-shot action-selector programming (§4.2): a set of weighted actions."""

    actions: Tuple[ActionProfileAction, ...] = ()

    def __repr__(self) -> str:
        inner = ", ".join(f"{a.action!r}*{a.weight}" for a in self.actions)
        return f"ActionSet[{inner}]"


TableAction = Union[ActionInvocation, ActionProfileActionSet]


@dataclass(frozen=True)
class TableEntry:
    """A table entry as carried in Write updates and Read responses."""

    table_id: int
    matches: Tuple[FieldMatch, ...] = ()
    action: Optional[TableAction] = None
    priority: int = 0
    metadata: bytes = b""  # opaque controller cookie

    def match_key(self) -> Tuple:
        """The entry's identity for INSERT/MODIFY/DELETE matching.

        Per the P4Runtime spec an entry is identified by (table, canonical
        field matches, priority) — the action is not part of the key.
        """
        canon = tuple(
            sorted(
                (m.field_id, m.kind, codec.canonicalize(m.value), codec.canonicalize(m.mask) if m.mask else b"", m.prefix_len)
                for m in self.matches
            )
        )
        return (self.table_id, canon, self.priority)

    def match_by_field(self, field_id: int) -> Optional[FieldMatch]:
        for m in self.matches:
            if m.field_id == field_id:
                return m
        return None

    def __repr__(self) -> str:
        return (
            f"TableEntry(0x{self.table_id:08x}, {list(self.matches)!r}, "
            f"{self.action!r}, prio={self.priority})"
        )


@dataclass(frozen=True)
class Update:
    """One element of a batched write."""

    type: UpdateType
    entry: TableEntry

    def __repr__(self) -> str:
        return f"Update({self.type.value}, {self.entry!r})"


@dataclass(frozen=True)
class WriteRequest:
    """A batched write RPC.

    The spec allows the switch to execute the updates of one request in any
    order (§4 Example 2) — the oracle and the batcher both hinge on this.
    """

    updates: Tuple[Update, ...] = ()
    device_id: int = 1
    election_id: int = 1

    def __len__(self) -> int:
        return len(self.updates)


@dataclass(frozen=True)
class WriteResponse:
    """Outcome of a Write: one status per update (P4Runtime error details)."""

    statuses: Tuple["StatusLike", ...] = ()

    @property
    def ok(self) -> bool:
        return all(s.ok for s in self.statuses)


# Avoid importing Status at module import time in type position only.
from repro.p4rt.status import Status as StatusLike  # noqa: E402


@dataclass(frozen=True)
class ReadRequest:
    """Wildcard read: table_id == 0 means 'all tables'."""

    table_id: int = 0
    device_id: int = 1


@dataclass(frozen=True)
class ReadResponse:
    entries: Tuple[TableEntry, ...] = ()

    def by_table(self, table_id: int) -> List[TableEntry]:
        return [e for e in self.entries if e.table_id == table_id]


@dataclass(frozen=True)
class PacketOut:
    """Controller -> switch packet injection."""

    payload: bytes
    egress_port: int
    submit_to_ingress: bool = False


@dataclass(frozen=True)
class PacketIn:
    """Switch -> controller punted packet."""

    payload: bytes
    ingress_port: int
    target_egress_port: int = 0
