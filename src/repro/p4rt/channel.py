"""A fault-injecting transport between P4Runtime clients and the switch.

SwitchV runs against real switch stacks whose P4Runtime channels drop,
stall, and reset (§6, Table 1: P4Runtime Server and SyncD bugs include
hangs and crashes), yet the in-process service interface of
:mod:`repro.p4rt.service` assumes every RPC returns exactly once.  This
module restores the transport failure modes as an *orthogonal* layer: a
:class:`FaultInjectingChannel` wraps any :class:`P4RuntimeService` and
injects availability faults — dropped requests, dropped responses,
duplicated (at-least-once) deliveries, bounded delays past the RPC
deadline, connection resets, and switch crash/restart that loses
uncommitted batch state — without touching the behavioural fault registry
in :mod:`repro.switch.faults`.

Two invariants make the layer useful for validation rather than chaos:

* **Determinism.**  All fault decisions come from one ``random.Random``
  seeded by the profile; the same profile against the same request
  sequence injects the same faults.  Soak runs are reproducible.
* **Honest ambiguity.**  The exceptions never reveal whether a failed
  Write reached the switch.  :class:`RequestDropped` is the only
  known-not-applied failure (the transport failed before sending);
  everything else — :class:`ResponseDropped`, :class:`DeadlineExceeded`,
  :class:`ChannelReset` — leaves the outcome ambiguous, exactly like a
  broken TCP session.  Clients must resolve the ambiguity themselves
  (idempotent retries, read-back resync — see :mod:`repro.p4rt.retry`
  and the oracle's §4.3 adopt-observed-state design).

Only ``write`` and ``read`` are faulted: they are the RPCs the
fuzzer/oracle loop depends on, and the ones with ambiguous side effects.
Pipeline-config pushes, packet-io, and the data-plane test interface pass
through untouched (the connection gate models the P4RT session only).
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional

from repro.p4.p4info import P4Info
from repro.p4rt.messages import (
    PacketIn,
    PacketOut,
    ReadRequest,
    ReadResponse,
    WriteRequest,
    WriteResponse,
)
from repro.p4rt.service import P4RuntimeService
from repro.p4rt.status import Status


# ----------------------------------------------------------------------
# Failure taxonomy
# ----------------------------------------------------------------------
class ChannelError(Exception):
    """Base class for transport-level failures (not switch verdicts)."""


class RequestDropped(ChannelError):
    """The request never left the client.  Known not applied: safe retry."""


class ResponseDropped(ChannelError):
    """The response was lost.  The request MAY have been applied."""


class DeadlineExceeded(ChannelError):
    """The RPC missed its deadline.  The request MAY have been applied."""


class ChannelReset(ChannelError):
    """The connection dropped (or the switch crashed).  Outcome ambiguous;
    the channel stays down until :meth:`FaultInjectingChannel.reconnect`."""


class RetriesExhausted(ChannelError):
    """A retrying client gave up.  Carries the last underlying failure."""


# ----------------------------------------------------------------------
# Fault profiles
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultProfile:
    """One transport fault mix.  Rates are independent per-RPC probabilities."""

    name: str = "custom"
    drop_request_rate: float = 0.0
    drop_response_rate: float = 0.0
    duplicate_rate: float = 0.0  # at-least-once delivery: request applied twice
    delay_rate: float = 0.0
    max_delay_s: float = 0.2  # sampled latency upper bound for delay faults
    reset_rate: float = 0.0
    crash_rate: float = 0.0  # switch crash: partial batch commit + reset
    seed: int = 0xC4A11

    def with_seed(self, seed: int) -> "FaultProfile":
        return replace(self, seed=seed)


# The single-fault profiles the acceptance tests sweep, at a 10% rate,
# plus a mixed "chaos" profile for soak runs.
PROFILES: Dict[str, FaultProfile] = {
    "none": FaultProfile(name="none"),
    "drop_request": FaultProfile(name="drop_request", drop_request_rate=0.10),
    "drop_response": FaultProfile(name="drop_response", drop_response_rate=0.10),
    "duplicate": FaultProfile(name="duplicate", duplicate_rate=0.10),
    "delay": FaultProfile(name="delay", delay_rate=0.10, max_delay_s=0.2),
    "reset": FaultProfile(name="reset", reset_rate=0.10),
    "crash": FaultProfile(name="crash", crash_rate=0.05),
    "chaos": FaultProfile(
        name="chaos",
        drop_request_rate=0.03,
        drop_response_rate=0.03,
        duplicate_rate=0.03,
        delay_rate=0.03,
        reset_rate=0.02,
        crash_rate=0.01,
    ),
}


def resolve_profile(profile, seed: Optional[int] = None) -> FaultProfile:
    """Accept a profile or its catalogue name; optionally reseed it."""
    if isinstance(profile, str):
        profile = PROFILES[profile]
    if seed is not None:
        profile = profile.with_seed(seed)
    return profile


@dataclass
class ChannelStats:
    """What the channel did to the traffic (per-channel, monotonic)."""

    writes: int = 0
    reads: int = 0
    dropped_requests: int = 0
    dropped_responses: int = 0
    duplicated: int = 0
    delays: int = 0
    deadline_exceeded: int = 0
    resets: int = 0
    crashes: int = 0
    reconnects: int = 0
    simulated_delay_s: float = 0.0

    @property
    def faults_injected(self) -> int:
        return (
            self.dropped_requests
            + self.dropped_responses
            + self.duplicated
            + self.deadline_exceeded
            + self.resets
            + self.crashes
        )


# ----------------------------------------------------------------------
# The channel
# ----------------------------------------------------------------------
class FaultInjectingChannel(P4RuntimeService):
    """Wraps a service and injects availability faults on write/read."""

    def __init__(
        self,
        inner: P4RuntimeService,
        profile: FaultProfile,
        rpc_deadline_s: float = 0.05,
        sleeper: Optional[Callable[[float], None]] = None,
    ) -> None:
        self.inner = inner
        self.profile = profile
        # The per-RPC deadline the client has negotiated; a sampled delay
        # beyond it surfaces as DeadlineExceeded (see repro.p4rt.retry).
        self.rpc_deadline_s = rpc_deadline_s
        self.rng = random.Random(profile.seed)
        self.stats = ChannelStats()
        self._connected = True
        # None = delays are modeled (accounted, never slept): the default
        # for the in-process stacks, and what keeps tests instant.  A real
        # sleeper (time.sleep) makes injected latency wall-clock real for
        # out-of-process drivers.
        self._sleeper = sleeper
        # Fault rolls, inner-service calls, and stats mutation happen under
        # one lock so concurrent callers (the pipelined fuzzer's executor
        # threads) can never interleave mid-RPC; the roll stream stays a
        # pure function of the *order* RPCs enter the channel.  Sleeps
        # happen outside the lock so real-time callers genuinely overlap.
        self._lock = threading.RLock()
        # Per-thread modeled wait of the last write/read RPC (delay faults
        # only; drops and resets are modeled as instant).
        self._tls = threading.local()

    @property
    def real_time(self) -> bool:
        """Whether injected latency is actually slept (vs only accounted)."""
        return self._sleeper is not None

    @property
    def last_rpc_wait_s(self) -> float:
        """Modeled wait of this thread's most recent write/read RPC."""
        return getattr(self._tls, "wait_s", 0.0)

    # ------------------------------------------------------------------
    # Connection lifecycle
    # ------------------------------------------------------------------
    @property
    def connected(self) -> bool:
        return self._connected

    def reconnect(self) -> None:
        with self._lock:
            self._connected = True
            self.stats.reconnects += 1

    def _require_connection(self) -> None:
        if not self._connected:
            raise ChannelReset("channel is down; reconnect required")

    # ------------------------------------------------------------------
    # Fault rolls (one rng draw per fault class per RPC, fixed order,
    # so the injected sequence is a pure function of the profile seed
    # and the RPC count).
    # ------------------------------------------------------------------
    def _roll(self, rate: float) -> bool:
        return rate > 0.0 and self.rng.random() < rate

    def _maybe_delay(self) -> float:
        """Bounded delay; past the deadline it becomes an ambiguous timeout.

        Returns the modeled wait the caller experienced.  When the sampled
        latency exceeds the deadline the caller waited exactly the deadline
        before giving up, so the raised DeadlineExceeded is charged
        ``rpc_deadline_s`` of wait (see :meth:`_finish`)."""
        if not self._roll(self.profile.delay_rate):
            return 0.0
        latency = self.rng.uniform(0.0, self.profile.max_delay_s)
        self.stats.delays += 1
        self.stats.simulated_delay_s += latency
        if latency <= self.rpc_deadline_s:
            return latency
        self.stats.deadline_exceeded += 1
        # Whether the request made it out before the stall is part of the
        # ambiguity; the caller only sees DeadlineExceeded either way.
        raise DeadlineExceeded(
            f"simulated latency {latency * 1000:.0f}ms exceeded the "
            f"{self.rpc_deadline_s * 1000:.0f}ms deadline"
        )

    def _finish(self, wait_s: float, exc: Optional[ChannelError], response):
        """Record the RPC's modeled wait, sleep it for real-time callers
        (outside the channel lock), and deliver the outcome."""
        self._tls.wait_s = wait_s
        if wait_s and self._sleeper is not None:
            self._sleeper(wait_s)
        if exc is not None:
            raise exc
        return response

    # ------------------------------------------------------------------
    # Faulted RPCs
    # ------------------------------------------------------------------
    def write(self, request: WriteRequest) -> WriteResponse:
        self._tls.wait_s = 0.0
        wait_s = 0.0
        exc: Optional[ChannelError] = None
        response = None
        with self._lock:
            try:
                self.stats.writes += 1
                self._require_connection()
                if self._roll(self.profile.drop_request_rate):
                    self.stats.dropped_requests += 1
                    raise RequestDropped(
                        "write request dropped before reaching the switch"
                    )
                if self._roll(self.profile.reset_rate):
                    self.stats.resets += 1
                    applied = self.rng.random() < 0.5
                    if applied:
                        self.inner.write(request)
                    self._connected = False
                    raise ChannelReset("connection reset during write")
                if self._roll(self.profile.crash_rate) and request.updates:
                    # Crash/restart mid-batch: the switch commits a prefix of
                    # the batch, then the session dies.  The uncommitted tail
                    # is lost.
                    self.stats.crashes += 1
                    committed = self.rng.randrange(0, len(request.updates))
                    if committed:
                        self.inner.write(
                            replace(request, updates=request.updates[:committed])
                        )
                    self._connected = False
                    raise ChannelReset(
                        f"switch crashed after committing "
                        f"{committed}/{len(request.updates)} updates of the batch"
                    )
                dropped_response = self._roll(self.profile.drop_response_rate)
                duplicated = self._roll(self.profile.duplicate_rate)
                wait_s = self._maybe_delay()
                response = self.inner.write(request)
                if duplicated:
                    # At-least-once delivery: the transport retransmitted and
                    # the switch applied the batch a second time.  The client
                    # sees the first (true) response; the duplicate's statuses
                    # are lost.
                    self.stats.duplicated += 1
                    self.inner.write(request)
                if dropped_response:
                    self.stats.dropped_responses += 1
                    raise ResponseDropped(
                        "write response lost after the switch applied it"
                    )
            except DeadlineExceeded as deadline_exc:
                wait_s = self.rpc_deadline_s
                exc = deadline_exc
            except ChannelError as channel_exc:
                exc = channel_exc
        return self._finish(wait_s, exc, response)

    def read(self, request: ReadRequest) -> ReadResponse:
        self._tls.wait_s = 0.0
        wait_s = 0.0
        exc: Optional[ChannelError] = None
        response = None
        with self._lock:
            try:
                self.stats.reads += 1
                self._require_connection()
                if self._roll(self.profile.drop_request_rate):
                    self.stats.dropped_requests += 1
                    raise RequestDropped("read request dropped")
                if self._roll(self.profile.reset_rate):
                    self.stats.resets += 1
                    self._connected = False
                    raise ChannelReset("connection reset during read")
                wait_s = self._maybe_delay()
                response = self.inner.read(request)
                if self._roll(self.profile.drop_response_rate):
                    self.stats.dropped_responses += 1
                    raise ResponseDropped("read response lost")
            except DeadlineExceeded as deadline_exc:
                wait_s = self.rpc_deadline_s
                exc = deadline_exc
            except ChannelError as channel_exc:
                exc = channel_exc
        return self._finish(wait_s, exc, response)

    # ------------------------------------------------------------------
    # Unfaulted pass-throughs (not part of the modelled P4RT session)
    # ------------------------------------------------------------------
    def set_forwarding_pipeline_config(self, p4info: P4Info) -> Status:
        return self.inner.set_forwarding_pipeline_config(p4info)

    def packet_out(self, packet: PacketOut) -> Status:
        return self.inner.packet_out(packet)

    def drain_packet_ins(self) -> List[PacketIn]:
        return self.inner.drain_packet_ins()

    def __getattr__(self, name):
        # The harness drives the data plane (send_packet, drain_egress,
        # inject) through the same object; those interfaces are the
        # tester's physical ports, not the P4RT channel.
        return getattr(self.inner, name)
