"""A retrying P4Runtime client with idempotency-aware Write semantics.

The validation loop must keep producing *sound* verdicts when the
transport misbehaves.  :class:`RetryingP4RuntimeClient` wraps any
:class:`P4RuntimeService` (typically a
:class:`repro.p4rt.channel.FaultInjectingChannel`) and adds:

* **per-RPC deadlines** — propagated to the channel so a stalled RPC
  surfaces as :class:`DeadlineExceeded` instead of hanging;
* **exponential backoff with deterministic seeded jitter** — retries are
  spread out, and two runs with the same seeds back off identically, so
  fault campaigns stay reproducible;
* **idempotency-aware retry semantics** — after an *ambiguous* Write
  outcome (response lost, deadline missed, connection reset: the earlier
  attempt may or may not have been applied), a retried INSERT that comes
  back ``ALREADY_EXISTS`` and a retried DELETE that comes back
  ``NOT_FOUND`` are treated as success: the earlier attempt evidently
  landed.  The rewrite happens only when an ambiguous failure actually
  preceded the response — a first-attempt ``ALREADY_EXISTS`` is a real
  switch verdict and passes through untouched.

The rewrite is safe for an exclusive writer (a controller replaying its
own intents).  A fuzzer that *deliberately* sends duplicate INSERTs must
not judge a rewritten status at all: it should consult
:attr:`last_write_info` and, when ``ambiguous`` is set, resynchronise its
oracle from a state read-back (the §4.3 adopt-observed-state design)
instead of judging per-update statuses.  Both consumers are wired in
:mod:`repro.fuzzer.fuzzer` and :mod:`repro.controller.controller`.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.p4.p4info import P4Info
from repro.p4rt.channel import (
    ChannelError,
    ChannelReset,
    DeadlineExceeded,
    FaultInjectingChannel,
    RequestDropped,
    RetriesExhausted,
    resolve_profile,
)
from repro.p4rt.messages import (
    PacketIn,
    PacketOut,
    ReadRequest,
    ReadResponse,
    UpdateType,
    WriteRequest,
    WriteResponse,
)
from repro.p4rt.service import P4RuntimeService
from repro.p4rt.status import Code, Status


@dataclass(frozen=True)
class RetryPolicy:
    """Retry/backoff knobs.  Defaults absorb a 10% single-fault profile
    with failure probability ~1e-6 per RPC."""

    max_attempts: int = 6
    base_backoff_s: float = 0.01
    max_backoff_s: float = 1.0
    jitter_seed: int = 0xB0FF
    rpc_deadline_s: float = 0.05
    # Rewrite ALREADY_EXISTS/NOT_FOUND into OK on retried INSERT/DELETE
    # after an ambiguous outcome (see module docstring).
    idempotent_retries: bool = True
    # Wall-clock budget for one RPC *including* retries and backoff: once
    # spent, the client gives up even with attempts remaining.  Measured
    # against the injected monotonic clock when one is wired, otherwise
    # against the modeled wait (channel delays + backoff) so simulated
    # campaigns enforce the same budget without sleeping.  None = no
    # budget (attempt-bounded only, the historical behaviour).
    total_deadline_s: Optional[float] = None


@dataclass
class RetryStats:
    """Everything the client did to keep the conversation alive."""

    rpcs: int = 0
    retries: int = 0
    ambiguous_writes: int = 0
    idempotent_rescues: int = 0
    reconnects: int = 0
    deadline_exceeded: int = 0
    exhausted: int = 0
    total_backoff_s: float = 0.0


@dataclass
class WriteInfo:
    """Per-write transparency for callers that judge responses (the fuzzer)."""

    attempts: int = 1
    # True iff some earlier attempt of this write failed ambiguously: the
    # final response's statuses may describe a *re*-application.
    ambiguous: bool = False
    # Statuses rewritten to OK under the idempotency rule.
    rescued: int = 0
    # Modeled (or, with a real sleeper, actually slept) time this write
    # spent waiting on the transport: injected channel latency plus
    # retry backoff, summed across attempts.  The pipelined fuzzer uses
    # this to compute window makespans.
    wait_s: float = 0.0


class RetryingP4RuntimeClient(P4RuntimeService):
    """A P4RuntimeService facade that survives a flaky transport."""

    def __init__(
        self,
        service: P4RuntimeService,
        policy: Optional[RetryPolicy] = None,
        sleep: Optional[Callable[[float], None]] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self._service = service
        self.policy = policy or RetryPolicy()
        # None = simulated backoff (accounted, not slept): the in-process
        # transport has no real clock to wait out.
        self._sleep = sleep
        # Monotonic clock for wall-clock deadline enforcement
        # (policy.total_deadline_s).  None = simulated time: the budget is
        # charged against the modeled wait instead, so tests stay instant.
        self._clock = clock
        self._jitter = random.Random(self.policy.jitter_seed)
        self.retry_stats = RetryStats()
        # Per-thread RPC transparency: concurrent pipelined writers each
        # see their own write's info, never a sibling thread's.
        self._tls = threading.local()
        self.last_write_info = WriteInfo()
        # Propagate the per-RPC deadline down to the transport.
        if hasattr(service, "rpc_deadline_s"):
            service.rpc_deadline_s = self.policy.rpc_deadline_s

    @property
    def real_time(self) -> bool:
        """Whether waits are actually slept here or below (vs modeled)."""
        return self._sleep is not None or bool(
            getattr(self._service, "real_time", False)
        )

    @property
    def last_write_info(self) -> WriteInfo:
        return getattr(self._tls, "write_info", None) or WriteInfo()

    @last_write_info.setter
    def last_write_info(self, info: WriteInfo) -> None:
        self._tls.write_info = info

    @property
    def last_read_wait_s(self) -> float:
        """Transport wait of this thread's most recent read RPC."""
        return getattr(self._tls, "read_wait_s", 0.0)

    # ------------------------------------------------------------------
    # Backoff
    # ------------------------------------------------------------------
    def _backoff(self, attempt: int) -> float:
        """Exponential backoff with deterministic seeded jitter in [50%, 100%]."""
        ceiling = min(
            self.policy.max_backoff_s,
            self.policy.base_backoff_s * (2 ** (attempt - 1)),
        )
        delay = ceiling * (0.5 + 0.5 * self._jitter.random())
        self.retry_stats.total_backoff_s += delay
        if self._sleep is not None:
            self._sleep(delay)
        return delay

    def _service_wait(self) -> float:
        """The underlying channel's modeled wait for the attempt just made."""
        return getattr(self._service, "last_rpc_wait_s", 0.0)

    def _budget_spent(self, started: Optional[float], modeled_wait_s: float) -> bool:
        """Whether the RPC's wall-clock budget is exhausted (no budget =
        never)."""
        budget = self.policy.total_deadline_s
        if budget is None:
            return False
        if self._clock is not None and started is not None:
            return self._clock() - started >= budget
        return modeled_wait_s >= budget

    def _note_failure(self, exc: ChannelError) -> None:
        if isinstance(exc, DeadlineExceeded):
            self.retry_stats.deadline_exceeded += 1
        if isinstance(exc, ChannelReset):
            reconnect = getattr(self._service, "reconnect", None)
            if reconnect is not None:
                reconnect()
                self.retry_stats.reconnects += 1

    # ------------------------------------------------------------------
    # Write (the only RPC with ambiguous side effects)
    # ------------------------------------------------------------------
    def write(self, request: WriteRequest) -> WriteResponse:
        info = WriteInfo()
        self.retry_stats.rpcs += 1
        started = self._clock() if self._clock is not None else None
        attempt = 0
        while True:
            attempt += 1
            try:
                response = self._service.write(request)
                info.wait_s += self._service_wait()
                break
            except RequestDropped as exc:
                # Known not applied: a plain retry, no ambiguity.
                info.wait_s += self._service_wait()
                last = exc
            except ChannelError as exc:
                # ResponseDropped / DeadlineExceeded / ChannelReset: the
                # request may have been applied.
                info.wait_s += self._service_wait()
                info.ambiguous = True
                self._note_failure(exc)
                last = exc
            if attempt >= self.policy.max_attempts or self._budget_spent(
                started, info.wait_s
            ):
                self.retry_stats.exhausted += 1
                info.attempts = attempt
                self.last_write_info = info
                raise RetriesExhausted(
                    f"write abandoned after {attempt} attempts: {last}"
                ) from last
            self.retry_stats.retries += 1
            info.wait_s += self._backoff(attempt)
        info.attempts = attempt
        if info.ambiguous:
            self.retry_stats.ambiguous_writes += 1
            if self.policy.idempotent_retries:
                response = self._normalize(request, response, info)
        self.last_write_info = info
        return response

    def _normalize(
        self, request: WriteRequest, response: WriteResponse, info: WriteInfo
    ) -> WriteResponse:
        """Apply the idempotency rule to a re-applied write's statuses."""
        if len(response.statuses) != len(request.updates):
            # A faulty switch answered with the wrong number of statuses.
            # Rewriting (and rebuilding the response at the truncated
            # length) would mask the oracle's batch-cardinality check —
            # pass the malformed response through for it to judge.
            return response
        statuses: List[Status] = []
        rewritten = False
        for update, status in zip(request.updates, response.statuses, strict=True):
            if not status.ok and (
                (update.type is UpdateType.INSERT and status.code is Code.ALREADY_EXISTS)
                or (update.type is UpdateType.DELETE and status.code is Code.NOT_FOUND)
            ):
                statuses.append(Status())
                info.rescued += 1
                self.retry_stats.idempotent_rescues += 1
                rewritten = True
            else:
                statuses.append(status)
        if not rewritten:
            return response
        return WriteResponse(statuses=tuple(statuses))

    # ------------------------------------------------------------------
    # Idempotent RPCs: retry on any transport failure
    # ------------------------------------------------------------------
    def read(self, request: ReadRequest) -> ReadResponse:
        self.retry_stats.rpcs += 1
        started = self._clock() if self._clock is not None else None
        wait_s = 0.0
        attempt = 0
        while True:
            attempt += 1
            try:
                response = self._service.read(request)
                self._tls.read_wait_s = wait_s + self._service_wait()
                return response
            except ChannelError as exc:
                wait_s += self._service_wait()
                self._note_failure(exc)
                if attempt >= self.policy.max_attempts or self._budget_spent(
                    started, wait_s
                ):
                    self.retry_stats.exhausted += 1
                    self._tls.read_wait_s = wait_s
                    raise RetriesExhausted(
                        f"read abandoned after {attempt} attempts: {exc}"
                    ) from exc
                self.retry_stats.retries += 1
                wait_s += self._backoff(attempt)

    # ------------------------------------------------------------------
    # Pass-throughs (unfaulted by the channel)
    # ------------------------------------------------------------------
    def set_forwarding_pipeline_config(self, p4info: P4Info) -> Status:
        return self._service.set_forwarding_pipeline_config(p4info)

    def packet_out(self, packet: PacketOut) -> Status:
        return self._service.packet_out(packet)

    def drain_packet_ins(self) -> List[PacketIn]:
        return self._service.drain_packet_ins()

    def __getattr__(self, name):
        return getattr(self._service, name)


def build_resilient_client(
    switch: P4RuntimeService,
    fault_profile=None,
    retry_policy: Optional[RetryPolicy] = None,
    seed: Optional[int] = None,
    sleep: Optional[Callable[[float], None]] = None,
    clock: Optional[Callable[[], float]] = None,
) -> RetryingP4RuntimeClient:
    """Wrap a switch in (optionally) a fault-injecting channel + retry client.

    ``fault_profile`` may be a :class:`FaultProfile`, a catalogue name from
    :data:`repro.p4rt.channel.PROFILES`, or ``None`` for a clean transport
    (the retry client is still useful: it absorbs nothing but costs nothing).

    ``sleep``/``clock`` opt into real time end to end: injected channel
    latency and retry backoff are actually slept, and
    ``RetryPolicy.total_deadline_s`` is enforced against the monotonic
    clock.  The defaults keep both simulated (accounted, instant), which is
    what every test and in-process campaign wants.
    """
    service: P4RuntimeService = switch
    if fault_profile is not None:
        service = FaultInjectingChannel(
            service, resolve_profile(fault_profile, seed), sleeper=sleep
        )
    return RetryingP4RuntimeClient(service, retry_policy, sleep=sleep, clock=clock)
