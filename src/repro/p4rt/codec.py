"""Canonical binary representation of P4Runtime values.

The P4Runtime specification requires match values and action parameters to
be transmitted as bytestrings in *canonical* form: big-endian, with no
redundant leading zero octets, and never empty (the value 0 is the single
byte ``0x00``).  Servers must reject non-canonical values.

This tiny module is load-bearing: the paper's Appendix A lists a real
toolchain bug ("Incorrect handling of zero bytes in IDs") in exactly this
layer, and p4-fuzzer mutations deliberately produce non-canonical encodings
to probe it.
"""

from __future__ import annotations


class CodecError(ValueError):
    """A value failed canonical-form validation."""


def encode(value: int, bitwidth: int) -> bytes:
    """Encode ``value`` canonically for a field of width ``bitwidth``."""
    if value < 0:
        raise CodecError(f"P4Runtime values are unsigned, got {value}")
    if bitwidth <= 0:
        raise CodecError(f"bitwidth must be positive, got {bitwidth}")
    if value >= 1 << bitwidth:
        raise CodecError(f"value {value} does not fit in {bitwidth} bits")
    if value == 0:
        return b"\x00"
    length = (value.bit_length() + 7) // 8
    return value.to_bytes(length, "big")


def decode(data: bytes, bitwidth: int, strict: bool = True) -> int:
    """Decode a canonical bytestring.

    With ``strict=True`` (what a compliant server does) non-canonical input —
    empty strings, redundant leading zero bytes, or values exceeding the
    field width — raises :class:`CodecError`.  With ``strict=False`` the raw
    integer is returned if it fits; this models lenient implementations and
    lets the fuzzer's oracle distinguish "rejected for non-canonicity" from
    "rejected for overflow".
    """
    if len(data) == 0:
        raise CodecError("empty bytestring is not a canonical value")
    value = int.from_bytes(data, "big")
    if strict and not is_canonical(data):
        raise CodecError(f"non-canonical encoding: {data!r}")
    if value >= 1 << bitwidth:
        raise CodecError(f"decoded value {value} exceeds {bitwidth}-bit field")
    return value


def is_canonical(data: bytes) -> bool:
    """Whether ``data`` is in canonical form (minimal length, non-empty)."""
    if len(data) == 0:
        return False
    if len(data) == 1:
        return True
    return data[0] != 0


def canonicalize(data: bytes) -> bytes:
    """Re-encode arbitrary bytes into canonical form."""
    if len(data) == 0:
        return b"\x00"
    stripped = data.lstrip(b"\x00")
    return stripped if stripped else b"\x00"


def mask_for_prefix(prefix_len: int, bitwidth: int) -> int:
    """The integer mask selecting the top ``prefix_len`` bits of a field."""
    if not 0 <= prefix_len <= bitwidth:
        raise CodecError(f"prefix length {prefix_len} out of range for width {bitwidth}")
    if prefix_len == 0:
        return 0
    return ((1 << prefix_len) - 1) << (bitwidth - prefix_len)
