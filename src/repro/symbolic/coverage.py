"""Coverage goals (§5 "Coverage Constraints").

p4-symbolic poses one SMT query per goal.  Entry coverage ("hit every
reachable table entry at least once" — what the paper runs nightly and
benchmarks in Table 3) yields |entries| + |tables| goals; branch coverage
adds every `if` direction; trace coverage over *all* combinations is
combinatoric and impractical, so — like the paper — we expose the trace to
test engineers and let them assert selected trace combinations
(:func:`trace_goal`).
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.smt import terms as T
from repro.symbolic.executor import ProfileExecution, TraceKey


class CoverageMode(enum.Enum):
    ENTRY = "entry"  # every installed entry (+ every table miss)
    BRANCH = "branch"  # entry coverage plus both directions of every if
    CUSTOM = "custom"  # caller-supplied goals only


@dataclass(frozen=True)
class CoverageGoal:
    """One thing a generated packet must witness."""

    name: str
    # Per-profile condition builder: given that profile's execution, return
    # the goal term, or None when the goal is not expressible there.
    condition: Callable[[ProfileExecution], Optional[T.Term]]


def entry_goal_name(table: str, identity: Tuple) -> str:
    """The canonical name of an entry-coverage goal.

    The digest is structural — SHA-256 over the identity's repr (match-key
    names, kinds, values, masks, priority; all primitives with stable
    reprs) — never ``hash()``, which PYTHONHASHSEED randomises per process.
    Goal names key the on-disk per-goal packet cache and the fuzzer's
    coverage map, so they must be identical across runs, restarts, and
    fleet shards.  Both :func:`goals_for_mode` and :func:`entry_goal` build
    names here so the two can't drift.
    """
    digest = hashlib.sha256(repr(identity).encode()).hexdigest()[:8]
    return f"entry:{table}:{digest}"


def _trace_lookup(key: TraceKey) -> Callable[[ProfileExecution], Optional[T.Term]]:
    def build(execution: ProfileExecution) -> Optional[T.Term]:
        term = execution.trace.get(key)
        if term is None or term is T.FALSE:
            return None
        return term

    return build


def goals_for_mode(
    executions: Sequence[ProfileExecution],
    mode: CoverageMode,
    custom: Sequence[CoverageGoal] = (),
) -> List[CoverageGoal]:
    """Materialise the goal list for a coverage mode."""
    if mode is CoverageMode.CUSTOM:
        return list(custom)
    keys: Dict[TraceKey, None] = {}
    for execution in executions:
        for key in execution.trace:
            keys.setdefault(key, None)
    goals: List[CoverageGoal] = []
    for key in keys:
        kind = key[0]
        if kind == "entry":
            _kind, table, identity = key
            goals.append(
                CoverageGoal(name=entry_goal_name(table, identity),
                             condition=_trace_lookup(key))
            )
        elif kind == "miss":
            goals.append(CoverageGoal(name=f"miss:{key[1]}", condition=_trace_lookup(key)))
        elif kind == "branch" and mode is CoverageMode.BRANCH:
            _kind, label, taken = key
            goals.append(
                CoverageGoal(
                    name=f"branch:{label}:{'t' if taken else 'f'}",
                    condition=_trace_lookup(key),
                )
            )
    goals.extend(custom)
    return goals


def entry_goal(table: str, identity: Tuple) -> CoverageGoal:
    """A goal asserting a specific installed entry is hit."""
    return CoverageGoal(
        name=entry_goal_name(table, identity),
        condition=_trace_lookup(("entry", table, identity)),
    )


def trace_goal(name: str, keys: Sequence[TraceKey]) -> CoverageGoal:
    """A selected-trace goal: all the given constructs execute together.

    This is the paper's "practical middle ground between branch and trace
    coverage": engineers pick important trace combinations instead of
    enumerating all of them.
    """

    def build(execution: ProfileExecution) -> Optional[T.Term]:
        terms = []
        for key in keys:
            term = execution.trace.get(key)
            if term is None or term is T.FALSE:
                return None
            terms.append(term)
        return T.and_(*terms)

    return CoverageGoal(name=name, condition=build)


def output_goal(name: str, builder: Callable[[ProfileExecution], Optional[T.Term]]) -> CoverageGoal:
    """A goal over X/Y/T built by the caller (full generality of §5)."""
    return CoverageGoal(name=name, condition=builder)
