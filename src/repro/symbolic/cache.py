"""Test-packet caching (§6.3 "Caching").

Generating packets — repeatedly invoking the SMT solver — is the slowest
SwitchV stage.  When the P4 program, the table entries, and the coverage
request are unchanged from a previous run, the generated packets are simply
looked up.  The cache key is a digest over exactly the inputs that affect
the SMT constraints; anything else (the switch build under test, which
changes far more often than the specification) leaves the cache valid.

Two granularities are supported:

* **Whole-run** (`lookup`/`store`): keyed by :func:`cache_key`, a digest of
  the complete generation request.  Any edit to the table state invalidates
  everything.
* **Per-goal** (`lookup_goal`/`store_goal`): keyed by a digest of the one
  goal's *solved formula* — the goal condition and profile constraints as
  materialised by the symbolic executor (see
  ``PacketGenerator._goal_cache_key``).  Editing one table entry only
  changes the conditions that structurally mention it, so untouched goals
  keep their digests and reuse their packets; only the affected goals are
  re-solved.  Unsatisfiable verdicts are cached too (``packet=None``).

Corrupt or version-skewed on-disk pickles are treated as misses: the bad
file is deleted and generation proceeds as if it never existed.
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Mapping, Optional, Sequence

from repro.bmv2.entries import InstalledEntry
from repro.p4.ast import P4Program
from repro.symbolic.coverage import CoverageMode
from repro.symbolic.packets import GeneratedPacket, GenerationResult, GenerationStats


def cache_key(
    program: P4Program,
    state: Mapping[str, Sequence[InstalledEntry]],
    mode: CoverageMode,
    valid_ports: Sequence[int],
) -> str:
    """A digest of everything that affects the generated SMT constraints."""
    h = hashlib.sha256()
    h.update(program.name.encode())
    # The dataclass reprs of the AST are deterministic and structural.
    h.update(repr(program.ingress).encode())
    h.update(repr(program.egress).encode())
    h.update(repr(program.metadata).encode())
    for table_name in sorted(state):
        h.update(table_name.encode())
        for entry in sorted(state[table_name], key=lambda e: repr(e.identity())):
            h.update(repr((entry.identity(), entry.action)).encode())
    h.update(mode.value.encode())
    h.update(repr(tuple(valid_ports)).encode())
    return h.hexdigest()


@dataclass
class CachedGoal:
    """One goal's cached outcome: its packet, or None if unsatisfiable."""

    goal: str
    packet: Optional[GeneratedPacket]


class PacketCache:
    """In-memory packet cache with optional on-disk persistence."""

    def __init__(self, directory: Optional[Path] = None) -> None:
        self._memory: Dict[str, GenerationResult] = {}
        self._goal_memory: Dict[str, CachedGoal] = {}
        self._directory = Path(directory) if directory else None
        if self._directory:
            self._directory.mkdir(parents=True, exist_ok=True)
            (self._directory / "goals").mkdir(exist_ok=True)

    # ------------------------------------------------------------------
    # Whole-run granularity
    # ------------------------------------------------------------------
    def lookup(self, key: str) -> Optional[GenerationResult]:
        hit = self._memory.get(key)
        if hit is not None:
            return self._mark_hit(hit)
        result = self._load(self._directory / f"{key}.pkl" if self._directory else None)
        if result is not None:
            self._memory[key] = result
            return self._mark_hit(result)
        return None

    def store(self, key: str, result: GenerationResult) -> None:
        self._memory[key] = result
        if self._directory:
            with (self._directory / f"{key}.pkl").open("wb") as fh:
                pickle.dump(result, fh)

    # ------------------------------------------------------------------
    # Per-goal granularity
    # ------------------------------------------------------------------
    def lookup_goal(self, key: str) -> Optional[CachedGoal]:
        hit = self._goal_memory.get(key)
        if hit is not None:
            return hit
        cached = self._load(
            self._directory / "goals" / f"{key}.pkl" if self._directory else None
        )
        if isinstance(cached, CachedGoal):
            self._goal_memory[key] = cached
            return cached
        return None

    def store_goal(self, key: str, cached: CachedGoal) -> None:
        self._goal_memory[key] = cached
        if self._directory:
            with (self._directory / "goals" / f"{key}.pkl").open("wb") as fh:
                pickle.dump(cached, fh)

    # ------------------------------------------------------------------
    @staticmethod
    def _load(path: Optional[Path]):
        """Unpickle ``path``, treating any failure as a cache miss.

        A truncated write (crashed run), a pickle produced by an
        incompatible code version, or plain disk corruption must not take
        down validation — the cache is an optimisation, never a dependency.
        The unreadable file is deleted so the subsequent store can replace
        it.
        """
        if path is None or not path.exists():
            return None
        try:
            with path.open("rb") as fh:
                return pickle.load(fh)
        except Exception:
            try:
                path.unlink()
            except OSError:
                pass
            return None

    @staticmethod
    def _mark_hit(result: GenerationResult) -> GenerationResult:
        stats = GenerationStats(
            goals_total=result.stats.goals_total,
            goals_covered=result.stats.goals_covered,
            goals_unsatisfiable=result.stats.goals_unsatisfiable,
            solver_queries=0,
            elapsed_seconds=0.0,
            cache_hit=True,
        )
        return GenerationResult(
            packets=list(result.packets), uncovered=list(result.uncovered), stats=stats
        )

    def clear(self) -> None:
        self._memory.clear()
        self._goal_memory.clear()
        if self._directory:
            for path in self._directory.glob("*.pkl"):
                path.unlink()
            for path in (self._directory / "goals").glob("*.pkl"):
                path.unlink()
