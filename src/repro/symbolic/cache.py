"""Test-packet caching (§6.3 "Caching").

Generating packets — repeatedly invoking the SMT solver — is the slowest
SwitchV stage.  When the P4 program, the table entries, and the coverage
request are unchanged from a previous run, the generated packets are simply
looked up.  The cache key is a digest over exactly the inputs that affect
the SMT constraints; anything else (the switch build under test, which
changes far more often than the specification) leaves the cache valid.
"""

from __future__ import annotations

import hashlib
import pickle
from pathlib import Path
from typing import Dict, Mapping, Optional, Sequence

from repro.bmv2.entries import InstalledEntry
from repro.p4.ast import P4Program
from repro.symbolic.coverage import CoverageMode
from repro.symbolic.packets import GenerationResult, GenerationStats


def cache_key(
    program: P4Program,
    state: Mapping[str, Sequence[InstalledEntry]],
    mode: CoverageMode,
    valid_ports: Sequence[int],
) -> str:
    """A digest of everything that affects the generated SMT constraints."""
    h = hashlib.sha256()
    h.update(program.name.encode())
    # The dataclass reprs of the AST are deterministic and structural.
    h.update(repr(program.ingress).encode())
    h.update(repr(program.egress).encode())
    h.update(repr(program.metadata).encode())
    for table_name in sorted(state):
        h.update(table_name.encode())
        for entry in sorted(state[table_name], key=lambda e: repr(e.identity())):
            h.update(repr((entry.identity(), entry.action)).encode())
    h.update(mode.value.encode())
    h.update(repr(tuple(valid_ports)).encode())
    return h.hexdigest()


class PacketCache:
    """In-memory packet cache with optional on-disk persistence."""

    def __init__(self, directory: Optional[Path] = None) -> None:
        self._memory: Dict[str, GenerationResult] = {}
        self._directory = Path(directory) if directory else None
        if self._directory:
            self._directory.mkdir(parents=True, exist_ok=True)

    def lookup(self, key: str) -> Optional[GenerationResult]:
        hit = self._memory.get(key)
        if hit is not None:
            return self._mark_hit(hit)
        if self._directory:
            path = self._directory / f"{key}.pkl"
            if path.exists():
                with path.open("rb") as fh:
                    result = pickle.load(fh)
                self._memory[key] = result
                return self._mark_hit(result)
        return None

    def store(self, key: str, result: GenerationResult) -> None:
        self._memory[key] = result
        if self._directory:
            with (self._directory / f"{key}.pkl").open("wb") as fh:
                pickle.dump(result, fh)

    @staticmethod
    def _mark_hit(result: GenerationResult) -> GenerationResult:
        stats = GenerationStats(
            goals_total=result.stats.goals_total,
            goals_covered=result.stats.goals_covered,
            goals_unsatisfiable=result.stats.goals_unsatisfiable,
            solver_queries=0,
            elapsed_seconds=0.0,
            cache_hit=True,
        )
        return GenerationResult(
            packets=list(result.packets), uncovered=list(result.uncovered), stats=stats
        )

    def clear(self) -> None:
        self._memory.clear()
        if self._directory:
            for path in self._directory.glob("*.pkl"):
                path.unlink()
