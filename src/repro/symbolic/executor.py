"""The guarded single-pass symbolic executor (§5).

For each parser profile the executor maintains:

* the symbolic state **S** — every field path mapped to an SMT term over
  the input variables **X** (header fields and the ingress port);
* the symbolic trace **T** — every control construct (branch direction,
  table entry, table miss) mapped to the condition under which it executes.

Trace isolation uses guarded commands: side effects of an entry's action
are merged into S via ``ite(guard, new, old)`` where the guard is the
conjunction of the enclosing context, the entry's match condition, and the
negation of all higher-priority entries' match conditions — exactly the
T[i1]/T[i5] construction of the paper's worked example.

Hashing is free (§5): each hash use and each action-selector choice
introduces fresh unconstrained variables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.bmv2.entries import DecodedAction, DecodedActionSet, InstalledEntry
from repro.p4.ast import (
    BinOp,
    BoolOp,
    Cmp,
    Const,
    FieldRef,
    HashExpr,
    If,
    IsValid,
    MatchKind,
    P4Program,
    Param,
    Seq,
    Statement,
    Table,
    TableApply,
)
from repro.smt import terms as T
from repro.symbolic.profiles import ParserProfile, profiles_for_pattern

# A trace key identifies one control-flow construct:
#   ("branch", label, taken)          — an `if` direction
#   ("entry", table_name, identity)   — a specific installed entry matching
#   ("miss", table_name)              — the default action firing
TraceKey = Tuple


@dataclass
class ProfileExecution:
    """The result of symbolically executing one parser profile."""

    profile: ParserProfile
    # Input variables X: field path -> term (vars or pinned constants).
    inputs: Dict[str, T.Term]
    # Output expressions Y: field path -> term over X.
    outputs: Dict[str, T.Term]
    # The symbolic trace T.
    trace: Dict[TraceKey, T.Term]
    # Profile-level path constraints (parser pins/exclusions, port validity).
    constraints: List[T.Term]


class SymbolicExecutionError(RuntimeError):
    pass


class SymbolicExecutor:
    """Executes a program symbolically against a fixed table state."""

    def __init__(
        self,
        program: P4Program,
        state: Mapping[str, Sequence[InstalledEntry]],
        valid_ports: Sequence[int] = (1, 2, 3, 4, 5, 6, 7, 8),
    ) -> None:
        self.program = program
        self.state = {k: list(v) for k, v in state.items()}
        self.valid_ports = tuple(valid_ports)
        self._fresh_counter = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def execute(self) -> List[ProfileExecution]:
        """Run every parser profile; returns one execution per profile."""
        return [
            self._execute_profile(profile)
            for profile in profiles_for_pattern(self.program.parser.pattern)
        ]

    # ------------------------------------------------------------------
    # Per-profile execution
    # ------------------------------------------------------------------
    def _fresh(self, name: str, width: int) -> T.Term:
        self._fresh_counter += 1
        return T.bv_var(f"{name}#{self._fresh_counter}", width)

    def _execute_profile(self, profile: ParserProfile) -> ProfileExecution:
        state: Dict[str, T.Term] = {}
        inputs: Dict[str, T.Term] = {}
        constraints: List[T.Term] = []
        prefix = profile.name
        pins = profile.pin_map()

        for path in self.program.all_field_paths():
            width = self.program.field_width(path)
            header = path.split(".", 1)[0]
            if header in profile.valid_headers:
                term = (
                    T.bv_const(pins[path], width)
                    if path in pins
                    else T.bv_var(f"{prefix}::{path}", width)
                )
                inputs[path] = term
                state[path] = term
            elif path == "standard.ingress_port":
                term = T.bv_var(f"{prefix}::{path}", width)
                inputs[path] = term
                state[path] = term
                constraints.append(
                    T.or_(*[term.eq(p) for p in self.valid_ports])
                )
            else:
                # Invalid headers and metadata start at zero, matching the
                # concrete interpreter.
                state[path] = T.bv_const(0, width)

        for path, excluded in profile.exclusions:
            term = state[path]
            constraints.extend(term.ne(value) for value in excluded)

        trace: Dict[TraceKey, T.Term] = {}
        self._run_block(self.program.ingress, state, profile, T.TRUE, trace)
        # Egress only executes when the packet was not dropped in ingress.
        not_dropped = state["standard.drop"].eq(T.bv_const(0, 1))
        self._run_block(self.program.egress, state, profile, not_dropped, trace)

        # The smart constructors in repro.smt.terms already fold constants
        # and flatten connectives at construction time; a further global
        # simplification pass costs more than it saves on large states.
        outputs = dict(state)
        return ProfileExecution(
            profile=profile,
            inputs=inputs,
            outputs=outputs,
            trace=trace,
            constraints=constraints,
        )

    # ------------------------------------------------------------------
    # Control flow
    # ------------------------------------------------------------------
    def _run_block(
        self,
        block: Seq,
        state: Dict[str, T.Term],
        profile: ParserProfile,
        context: T.Term,
        trace: Dict[TraceKey, T.Term],
    ) -> None:
        for node in block:
            if isinstance(node, TableApply):
                self._apply_table(node.table, state, profile, context, trace)
            elif isinstance(node, If):
                cond = self._eval_bool(node.cond, state, profile)
                label = node.label or repr(node.cond)
                then_ctx = T.and_(context, cond)
                else_ctx = T.and_(context, T.not_(cond))
                trace[("branch", label, True)] = T.or_(
                    trace.get(("branch", label, True), T.FALSE), then_ctx
                )
                trace[("branch", label, False)] = T.or_(
                    trace.get(("branch", label, False), T.FALSE), else_ctx
                )
                self._run_block(node.then_block, state, profile, then_ctx, trace)
                self._run_block(node.else_block, state, profile, else_ctx, trace)
            elif isinstance(node, Statement):
                self._assign(node, state, profile, context, params={})
            else:  # pragma: no cover - defensive
                raise SymbolicExecutionError(f"unknown control node {node!r}")

    # ------------------------------------------------------------------
    # Tables
    # ------------------------------------------------------------------
    def _ordered_entries(self, table: Table) -> List[InstalledEntry]:
        """Entries in descending match priority, as the paper's example:
        numeric priority for ternary tables, prefix length for LPM."""
        entries = list(self.state.get(table.name, ()))
        if table.requires_priority:
            entries.sort(key=lambda e: -e.priority)
        else:
            lpm_keys = [k.key_name for k in table.keys if k.kind is MatchKind.LPM]
            if lpm_keys:
                key_name = lpm_keys[0]

                def prefix(e: InstalledEntry) -> int:
                    m = e.match(key_name)
                    return m.prefix_len if (m and m.present) else -1

                entries.sort(key=lambda e: -prefix(e))
        return entries

    def _match_condition(
        self, table: Table, entry: InstalledEntry, state: Dict[str, T.Term]
    ) -> T.Term:
        conjuncts: List[T.Term] = []
        for key in table.keys:
            m = entry.match(key.key_name)
            if m is None or not m.present:
                continue
            value = state[key.field.path]
            width = value.width
            if m.mask and m.mask != (1 << width) - 1:
                conjuncts.append(
                    (value & T.bv_const(m.mask, width)).eq(
                        T.bv_const(m.value & m.mask, width)
                    )
                )
            else:
                conjuncts.append(value.eq(T.bv_const(m.value, width)))
        return T.and_(*conjuncts) if conjuncts else T.TRUE

    def _apply_table(
        self,
        table: Table,
        state: Dict[str, T.Term],
        profile: ParserProfile,
        context: T.Term,
        trace: Dict[TraceKey, T.Term],
    ) -> None:
        entries = self._ordered_entries(table)
        # Walk in descending priority, accumulating the negation of all
        # higher-priority matches (the guarded-command construction).
        no_higher_match = T.TRUE
        for entry in entries:
            match = self._match_condition(table, entry, state)
            guard = T.and_(context, no_higher_match, match)
            key: TraceKey = ("entry", table.name, entry.identity())
            trace[key] = T.or_(trace.get(key, T.FALSE), guard)
            self._execute_entry_action(table, entry, state, profile, guard)
            no_higher_match = T.and_(no_higher_match, T.not_(match))
        miss_guard = T.and_(context, no_higher_match)
        miss_key: TraceKey = ("miss", table.name)
        trace[miss_key] = T.or_(trace.get(miss_key, T.FALSE), miss_guard)
        self._execute_action_body(
            table.default_action.body, {}, state, profile, miss_guard
        )

    def _execute_entry_action(
        self,
        table: Table,
        entry: InstalledEntry,
        state: Dict[str, T.Term],
        profile: ParserProfile,
        guard: T.Term,
    ) -> None:
        if isinstance(entry.action, DecodedActionSet):
            # Free selection: fresh boolean selectors choose the member; the
            # guard chain makes exactly one fire per execution.
            members = entry.action.members
            remaining = guard
            for index, (member, _weight) in enumerate(members):
                if index == len(members) - 1:
                    member_guard = remaining
                else:
                    self._fresh_counter += 1
                    chooser = T.bool_var(f"select:{table.name}#{self._fresh_counter}")
                    member_guard = T.and_(remaining, chooser)
                    remaining = T.and_(remaining, T.not_(chooser))
                self._run_named_action(table, member, state, profile, member_guard)
        else:
            self._run_named_action(table, entry.action, state, profile, guard)

    def _run_named_action(
        self,
        table: Table,
        decoded: DecodedAction,
        state: Dict[str, T.Term],
        profile: ParserProfile,
        guard: T.Term,
    ) -> None:
        if decoded.name in table.action_names:
            action = table.action(decoded.name)
        elif decoded.name == table.default_action.name:
            action = table.default_action
        else:
            raise SymbolicExecutionError(
                f"entry in {table.name} uses unknown action {decoded.name}"
            )
        self._execute_action_body(action.body, decoded.param_map(), state, profile, guard)

    def _execute_action_body(
        self,
        body: Sequence[Statement],
        params: Dict[str, int],
        state: Dict[str, T.Term],
        profile: ParserProfile,
        guard: T.Term,
    ) -> None:
        for stmt in body:
            self._assign(stmt, state, profile, guard, params)

    def _assign(
        self,
        stmt: Statement,
        state: Dict[str, T.Term],
        profile: ParserProfile,
        guard: T.Term,
        params: Dict[str, int],
    ) -> None:
        dest = stmt.dest.path
        width = self.program.field_width(dest)
        value = self._eval_expr(stmt.value, state, profile, params, width)
        old = state[dest]
        state[dest] = T.ite(guard, value, old)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _eval_expr(
        self,
        expr,
        state: Dict[str, T.Term],
        profile: ParserProfile,
        params: Dict[str, int],
        width_hint: int,
    ) -> T.Term:
        if isinstance(expr, Const):
            return T.bv_const(expr.value, expr.width if expr.width else width_hint)
        if isinstance(expr, FieldRef):
            return state[expr.path]
        if isinstance(expr, Param):
            if expr.name not in params:
                raise SymbolicExecutionError(f"unbound parameter {expr.name}")
            return T.bv_const(params[expr.name], width_hint)
        if isinstance(expr, BinOp):
            left = self._eval_expr(expr.left, state, profile, params, width_hint)
            right = self._eval_expr(expr.right, state, profile, params, left.width)
            if left.width != right.width:
                # Align narrower constants to the wider operand.
                if right.width < left.width:
                    right = T.zext(right, left.width - right.width)
                else:
                    left = T.zext(left, right.width - left.width)
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            if expr.op == "&":
                return left & right
            if expr.op == "|":
                return left | right
            if expr.op == "^":
                return left ^ right
            raise SymbolicExecutionError(f"unknown binop {expr.op}")
        if isinstance(expr, HashExpr):
            # Hashing is a free operation: a fresh unconstrained variable.
            return self._fresh(f"hash:{expr.label}", expr.width)
        raise SymbolicExecutionError(f"unknown expression {expr!r}")

    def _eval_bool(self, cond, state: Dict[str, T.Term], profile: ParserProfile) -> T.Term:
        if isinstance(cond, IsValid):
            return T.TRUE if cond.header in profile.valid_headers else T.FALSE
        if isinstance(cond, Cmp):
            left = self._eval_expr(cond.left, state, profile, {}, 0)
            right = self._eval_expr(cond.right, state, profile, {}, left.width)
            if cond.op == "==":
                return left.eq(right)
            if cond.op == "!=":
                return left.ne(right)
            if cond.op == "<":
                return left.ult(right)
            if cond.op == "<=":
                return left.ule(right)
            if cond.op == ">":
                return right.ult(left)
            return right.ule(left)
        if isinstance(cond, BoolOp):
            args = [self._eval_bool(a, state, profile) for a in cond.args]
            if cond.op == "and":
                return T.and_(*args)
            if cond.op == "or":
                return T.or_(*args)
            return T.not_(args[0])
        raise SymbolicExecutionError(f"unknown condition {cond!r}")
