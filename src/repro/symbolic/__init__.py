"""repro.symbolic — p4-symbolic, the data-plane test-packet generator (§5).

Symbolically executes the P4 model in a single pass (guarded commands, not
per-trace forking), treating each table entry as an implicit branch whose
guard conjoins the entry's match condition with the negation of all
higher-priority matches.  The symbolic trace T maps every control-flow
construct — branches and table entries — to the condition under which it
executes; coverage goals are assertions over the input variables X, output
expressions Y, and T, discharged by the QF_BV solver.

* :mod:`repro.symbolic.profiles` — parser profiles (the semi-hardcoded
  parser patterns of §5 "Limitations").
* :mod:`repro.symbolic.executor` — the guarded single-pass executor.
* :mod:`repro.symbolic.coverage` — coverage goals (entry, branch, custom).
* :mod:`repro.symbolic.packets` — model → concrete test packet extraction.
* :mod:`repro.symbolic.parallel` — sharded multi-process goal solving.
* :mod:`repro.symbolic.cache` — test-packet caching (§6.3 "Caching"),
  whole-run and per-goal.
"""

from repro.symbolic.coverage import CoverageGoal, CoverageMode, entry_goal_name
from repro.symbolic.executor import SymbolicExecutor, TraceKey
from repro.symbolic.packets import GeneratedPacket, GenerationResult, PacketGenerator
from repro.symbolic.parallel import generate_parallel

__all__ = [
    "CoverageGoal",
    "CoverageMode",
    "GeneratedPacket",
    "GenerationResult",
    "PacketGenerator",
    "SymbolicExecutor",
    "TraceKey",
    "entry_goal_name",
    "generate_parallel",
]
