"""Parser profiles: the enumerated shapes a parsed packet can take.

§5 "Limitations": p4-symbolic relies on "semi-hardcoded support for parser
patterns of interest" instead of a generic parser.  A *profile* is one
terminal parser state — a concrete set of valid headers together with the
field constraints that steer the parser there (ether types, IP protocol
numbers).  Header validity is concrete within a profile, so ``isValid()``
conditions never need symbolic booleans; the executor simply runs once per
profile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

from repro.p4.programs.common import (
    ETHERTYPE_IPV4,
    ETHERTYPE_IPV6,
    IP_PROTOCOL_ICMP,
    IP_PROTOCOL_TCP,
    IP_PROTOCOL_UDP,
)

_L4 = ((IP_PROTOCOL_ICMP, "icmp"), (IP_PROTOCOL_TCP, "tcp"), (IP_PROTOCOL_UDP, "udp"))


@dataclass(frozen=True)
class ParserProfile:
    """One terminal parser state."""

    name: str
    valid_headers: FrozenSet[str]
    # Field path -> pinned value (parser select equalities).
    pins: Tuple[Tuple[str, int], ...] = ()
    # Field path -> excluded values (fall-through select arms).
    exclusions: Tuple[Tuple[str, Tuple[int, ...]], ...] = ()

    def pin_map(self) -> Dict[str, int]:
        return dict(self.pins)


def profiles_for_pattern(pattern: str) -> List[ParserProfile]:
    """All terminal states of a registered parser pattern, mirroring
    :func:`repro.bmv2.packet.parse_packet` exactly."""
    if pattern != "ethernet_ipv4_ipv6":
        raise ValueError(f"unknown parser pattern {pattern!r}")
    profiles: List[ParserProfile] = [
        ParserProfile(
            name="eth",
            valid_headers=frozenset({"ethernet"}),
            exclusions=(("ethernet.ether_type", (ETHERTYPE_IPV4, ETHERTYPE_IPV6)),),
        )
    ]
    for ip_header, ether_type, proto_field in (
        ("ipv4", ETHERTYPE_IPV4, "ipv4.protocol"),
        ("ipv6", ETHERTYPE_IPV6, "ipv6.next_header"),
    ):
        profiles.append(
            ParserProfile(
                name=f"eth_{ip_header}",
                valid_headers=frozenset({"ethernet", ip_header}),
                pins=(("ethernet.ether_type", ether_type),),
                exclusions=((proto_field, tuple(p for p, _n in _L4)),),
            )
        )
        profiles.extend(
            ParserProfile(
                name=f"eth_{ip_header}_{l4_header}",
                valid_headers=frozenset({"ethernet", ip_header, l4_header}),
                pins=(
                    ("ethernet.ether_type", ether_type),
                    (proto_field, proto),
                ),
            )
            for proto, l4_header in _L4
        )
    return profiles
