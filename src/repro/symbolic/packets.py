"""Concrete test-packet extraction.

Builds one QF_BV solver per parser profile (profile constraints asserted
once), then discharges every coverage goal as an *assumption* query against
the appropriate solver — the incremental usage pattern the SMT layer is
designed for.  A satisfying model is turned into a concrete packet: pinned
parser fields take their pinned values, solved fields take model values,
everything else defaults to zero.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.bmv2.entries import InstalledEntry
from repro.bmv2.packet import Packet
from repro.p4.ast import P4Program
from repro.smt import Result, Solver
from repro.smt import terms as T
from repro.smt.compile import compile_term
from repro.smt.pool import MISS, SolverPool
from repro.symbolic.coverage import CoverageGoal, CoverageMode, goals_for_mode
from repro.symbolic.executor import ProfileExecution, SymbolicExecutor


@dataclass
class GeneratedPacket:
    """A concrete test packet witnessing one coverage goal."""

    goal: str
    profile: str
    packet: Packet
    ingress_port: int

    def __repr__(self) -> str:
        return f"GeneratedPacket({self.goal}, {self.profile}, port {self.ingress_port})"


@dataclass
class GenerationStats:
    goals_total: int = 0
    goals_covered: int = 0
    goals_unsatisfiable: int = 0
    solver_queries: int = 0
    elapsed_seconds: float = 0.0
    cache_hit: bool = False
    # Per-goal cache: how many goals were answered without any solving.
    goals_from_cache: int = 0
    # Coverage subsumption: goals an already-generated packet of the same
    # profile happened to satisfy (checked by concrete evaluation), covered
    # without touching the solver.
    goals_subsumed: int = 0
    # Canonicalisation: extra assumption checks spent pinning witness
    # packets to solver-history-independent values (what makes warm-pool,
    # cold, and per-worker runs byte-identical).
    canonical_checks: int = 0
    # Attempt formulas answered by the SolverPool's solved-formula memo
    # (unchanged since a previous table state) without any SAT work.
    pool_hits: int = 0
    # Aggregate SAT-solver effort behind the queries, summed across every
    # per-profile solver (and every worker, in parallel runs) — the numbers
    # that make benchmark regressions attributable to the solver rather
    # than to orchestration overhead.
    sat_conflicts: int = 0
    sat_decisions: int = 0
    sat_propagations: int = 0
    # CNF economy: SAT variables allocated, clauses received by the kernel,
    # and gate lookups answered by the structural encoder's cache instead
    # of fresh variables+clauses — the clause-economy counters that let
    # benchmark tables attribute speedups to the encoding, not wall-clock
    # noise.  Deltas over this generator's own work, like the effort above.
    cnf_vars: int = 0
    cnf_clauses: int = 0
    gates_shared: int = 0
    # How many worker processes solved goals (1 = sequential).
    workers: int = 1

    def merge(self, other: "GenerationStats") -> None:
        """Fold another shard's counters into this one (parallel merge)."""
        self.goals_total += other.goals_total
        self.goals_covered += other.goals_covered
        self.goals_unsatisfiable += other.goals_unsatisfiable
        self.solver_queries += other.solver_queries
        self.canonical_checks += other.canonical_checks
        self.pool_hits += other.pool_hits
        self.goals_from_cache += other.goals_from_cache
        self.goals_subsumed += other.goals_subsumed
        self.sat_conflicts += other.sat_conflicts
        self.sat_decisions += other.sat_decisions
        self.sat_propagations += other.sat_propagations
        self.cnf_vars += other.cnf_vars
        self.cnf_clauses += other.cnf_clauses
        self.gates_shared += other.gates_shared


@dataclass
class GenerationResult:
    packets: List[GeneratedPacket]
    uncovered: List[str]
    stats: GenerationStats


class PacketGenerator:
    """Drives symbolic execution and goal solving for one table state."""

    def __init__(
        self,
        program: P4Program,
        state: Mapping[str, Sequence[InstalledEntry]],
        valid_ports: Sequence[int] = (1, 2, 3, 4, 5, 6, 7, 8),
        solver_pool: Optional[SolverPool] = None,
        encoder: str = "structural",
        kernel: str = "modern",
    ) -> None:
        self.program = program
        self.state = state
        self.valid_ports = tuple(valid_ports)
        # Encoder/kernel selection for privately-built solvers.  When a
        # pool is supplied its own configuration wins — every solver
        # sharing a pool must agree on the encoding.
        self.encoder = encoder
        self.kernel = kernel
        # When a SolverPool is supplied, per-profile solvers are borrowed
        # from it instead of built fresh: across table states the profile
        # constraints are identical and unchanged goal subformulas are the
        # *same* hash-consed terms, so a warm solver reuses its Tseitin
        # encoding and learned clauses and only encodes what an edit
        # actually changed.
        self._pool = solver_pool
        self._executions: Optional[List[ProfileExecution]] = None
        self._solvers: Dict[str, Solver] = {}
        # SAT-effort counters of each solver at acquisition time: pooled
        # solvers arrive with lifetime counters, and stats must only report
        # the effort this generator caused.
        self._effort_base: Dict[str, tuple] = {}
        self._constraint_digests: Dict[str, str] = {}
        # Background/soft-dst refinements memoised per
        # (profile, constrained-variable-set) — goals over the same table
        # constrain the same variables, so the conjunctions rebuild once.
        self._refinement_cache: Dict[tuple, tuple] = {}
        # Concrete input assignments of already-generated packets, for
        # subsumption checks (keyed by packet object identity).
        self._assignment_cache: Dict[int, Dict[str, int]] = {}

    # ------------------------------------------------------------------
    def executions(self) -> List[ProfileExecution]:
        if self._executions is None:
            executor = SymbolicExecutor(self.program, self.state, self.valid_ports)
            self._executions = executor.execute()
        return self._executions

    def _solver_for(self, execution: ProfileExecution) -> Solver:
        name = execution.profile.name
        solver = self._solvers.get(name)
        if solver is None:
            # Trace/output terms were already simplified by the executor;
            # re-simplifying every (large) goal assumption inside the solver
            # costs more than it saves.
            if self._pool is not None:
                solver = self._pool.solver(
                    ("packets", self.program.name, name),
                    execution.constraints,
                    simplify_terms=False,
                )
            else:
                solver = Solver(
                    simplify_terms=False, encoder=self.encoder, kernel=self.kernel
                )
                for constraint in execution.constraints:
                    solver.add(constraint)
            self._solvers[name] = solver
            s = solver.stats
            self._effort_base[name] = (
                s["conflicts"], s["decisions"], s["propagations"],
                s["sat_vars"], s["cnf_clauses"], s["gates_shared"],
            )
        return solver

    # ------------------------------------------------------------------
    def generate(
        self,
        mode: CoverageMode = CoverageMode.ENTRY,
        custom_goals: Sequence[CoverageGoal] = (),
        workers: int = 1,
        goal_cache=None,
    ) -> GenerationResult:
        """Produce one packet per satisfiable coverage goal.

        ``workers > 1`` shards the goals across that many processes (see
        :mod:`repro.symbolic.parallel`); ``workers=1`` is the exact
        sequential path.  ``goal_cache`` (a
        :class:`repro.symbolic.cache.PacketCache`) enables per-goal
        memoisation: goals whose solved formula is unchanged since a prior
        run are answered without touching the solver.
        """
        if workers > 1:
            from repro.symbolic.parallel import generate_parallel

            return generate_parallel(
                self, mode=mode, custom_goals=custom_goals, workers=workers,
                goal_cache=goal_cache,
            )
        start = time.perf_counter()
        stats = GenerationStats()
        # Assignment memos are keyed by packet object identity; stale ids
        # from a previous run's (collected) packets must not alias.
        self._assignment_cache.clear()
        executions = self.executions()
        goals = goals_for_mode(executions, mode, custom_goals)
        stats.goals_total = len(goals)
        effort_before = self._solver_effort()
        packets: List[GeneratedPacket] = []
        uncovered: List[str] = []
        for index, goal in enumerate(goals):
            key = self._goal_cache_key(goal, executions) if goal_cache is not None else None
            if key is not None:
                hit = goal_cache.lookup_goal(key)
                if hit is not None:
                    stats.goals_from_cache += 1
                    if hit.packet is not None:
                        packets.append(hit.packet)
                        stats.goals_covered += 1
                    else:
                        uncovered.append(goal.name)
                        stats.goals_unsatisfiable += 1
                    continue
            generated = self.subsume_goal(goal, executions, packets)
            if generated is not None:
                stats.goals_subsumed += 1
                packets.append(generated)
                stats.goals_covered += 1
                if key is not None:
                    from repro.symbolic.cache import CachedGoal

                    goal_cache.store_goal(
                        key, CachedGoal(goal=goal.name, packet=generated)
                    )
                continue
            generated = self._solve_goal(goal, executions, stats, index)
            if generated is not None:
                packets.append(generated)
                stats.goals_covered += 1
            else:
                uncovered.append(goal.name)
                stats.goals_unsatisfiable += 1
            if key is not None:
                from repro.symbolic.cache import CachedGoal

                goal_cache.store_goal(key, CachedGoal(goal=goal.name, packet=generated))
        self._account_effort(stats, effort_before)
        stats.elapsed_seconds = time.perf_counter() - start
        return GenerationResult(packets=packets, uncovered=uncovered, stats=stats)

    # ------------------------------------------------------------------
    def _solver_effort(self) -> tuple:
        """Cumulative (conflicts, decisions, propagations, sat vars, cnf
        clauses, gates shared) over all solvers.

        Measured relative to each solver's counters at acquisition, so a
        warm pooled solver only contributes work this generator caused.
        """
        totals = [0] * 6
        for name, solver in self._solvers.items():
            s = solver.stats
            base = self._effort_base.get(name, (0, 0, 0, 0, 0, 0))
            for i, key in enumerate(
                ("conflicts", "decisions", "propagations",
                 "sat_vars", "cnf_clauses", "gates_shared")
            ):
                totals[i] += s[key] - (base[i] if i < len(base) else 0)
        return tuple(totals)

    def _account_effort(self, stats: GenerationStats, before: tuple) -> None:
        after = self._solver_effort()
        stats.sat_conflicts += after[0] - before[0]
        stats.sat_decisions += after[1] - before[1]
        stats.sat_propagations += after[2] - before[2]
        stats.cnf_vars += after[3] - before[3]
        stats.cnf_clauses += after[4] - before[4]
        stats.gates_shared += after[5] - before[5]

    def _goal_cache_key(self, goal: CoverageGoal, executions) -> str:
        """A digest of the goal's *solved formula*, not the whole run.

        Covers exactly what determines this goal's packet: the goal
        condition and the profile constraints, per profile, as materialised
        by the symbolic executor.  An edited table entry changes the
        conditions that structurally mention it (same-table priority
        negations, downstream matches on metadata it sets) and leaves every
        other goal's digest — and cached packet — intact.
        """
        h = hashlib.sha256()
        h.update(self.program.name.encode())
        h.update(repr(self.valid_ports).encode())
        h.update(goal.name.encode())
        for execution in executions:
            h.update(execution.profile.name.encode())
            h.update(self._constraints_digest(execution).encode())
            condition = goal.condition(execution)
            if condition is None:
                h.update(b"-")
            else:
                h.update(T.term_digest(condition).encode())
        return h.hexdigest()

    def _constraints_digest(self, execution) -> str:
        digest = self._constraint_digests.get(execution.profile.name)
        if digest is None:
            h = hashlib.sha256()
            for constraint in execution.constraints:
                h.update(T.term_digest(constraint).encode())
            digest = h.hexdigest()
            self._constraint_digests[execution.profile.name] = digest
        return digest

    def _solve_goal(
        self,
        goal: CoverageGoal,
        executions: Sequence[ProfileExecution],
        stats: GenerationStats,
        index: int = 0,
    ) -> Optional[GeneratedPacket]:
        # Diversify ingress ports across goals: solvers otherwise settle on
        # one habitual port, leaving port-qualified behaviour untested.
        preferred_port = self.valid_ports[index % len(self.valid_ports)]
        for execution in executions:
            condition = goal.condition(execution)
            if condition is None or condition is T.FALSE:
                continue
            solver = self._solver_for(execution)
            port_term = execution.inputs["standard.ingress_port"]
            # Soft preference: place the destination inside the common route
            # space even when the goal constrains it loosely (e.g. an ACL
            # guard's negations) — divergences on *forwarded* packets are
            # observable, dropped ones often are not.
            background, soft_dst = self._refinements(execution, condition)
            attempts = [
                # Canonical forwarding context: the first valid port (whose
                # VRF owns the background route space) plus a routable
                # destination — maximises the observability of divergences.
                (condition, port_term.eq(self.valid_ports[0]), background, soft_dst),
                # Same context for goals that pin the destination themselves.
                (condition, port_term.eq(self.valid_ports[0]), background),
                # Port rotation for port-qualified behaviour.
                (condition, port_term.eq(preferred_port), background),
                (condition, background),
                (condition,),
            ]
            for assumptions in attempts:
                # The solved formula (constraints ∧ assumptions) fully
                # determines both the SAT verdict and the canonical witness,
                # so the pool memoises outcomes by formula identity: across
                # table states, every attempt whose formula is unchanged —
                # the same hash-consed term — is answered here, and only
                # edit-affected formulas reach the warm solver.
                key = None
                if self._pool is not None:
                    formula = T.and_(*execution.constraints, *assumptions)
                    key = (self.program.name, formula)
                    cached = self._pool.lookup_formula(key)
                    if cached is not MISS:
                        stats.pool_hits += 1
                        if cached is None:
                            continue  # memoised UNSAT for this attempt
                        return self._packet_from_model(goal, execution, cached)
                stats.solver_queries += 1
                if solver.check(*assumptions) is Result.SAT:
                    witness = self._canonical_witness(
                        solver, execution, assumptions, stats
                    )
                    if key is not None:
                        self._pool.store_formula(key, witness)
                    return self._packet_from_model(goal, execution, witness)
                if key is not None:
                    self._pool.store_formula(key, None)
        return None

    # ------------------------------------------------------------------
    # Canonical witness extraction
    # ------------------------------------------------------------------
    # A CDCL model is an accident of solver history: phase saving, learned
    # clauses, and activity orders all feed into which satisfying assignment
    # comes out, so a warm pooled solver (or a forked worker) would emit
    # different — equally valid — packets than a cold run.  To keep results
    # byte-identical across solver histories, the model is never used
    # directly.  Instead, every input variable the solved formula mentions
    # is pinned to the first value in a history-independent candidate order
    # (structural pin from the assumptions, hint mined from masked-equality
    # conjuncts, background value, zero, then per-bit descent) that keeps
    # the formula satisfiable.  "Keeps satisfiable" is decided by the
    # solver's SAT/UNSAT verdict — which is model-independent — with a
    # compiled-evaluation fast path: if completing the candidate with the
    # current model already satisfies the formula concretely, it is a
    # witness and the solver call is skipped (the verdict would have been
    # SAT either way, so the shortcut never changes the outcome).

    def _canonical_witness(
        self, solver: Solver, execution: ProfileExecution, assumptions, stats
    ) -> Dict[str, int]:
        inputs_by_name: Dict[str, tuple] = {}
        for path, term in execution.inputs.items():
            if not term.is_const:
                inputs_by_name[term.name] = (path, term)
        formula = T.and_(*execution.constraints, *assumptions)
        compiled = compile_term(formula)
        pinned, hints = self._structural_pins(assumptions, inputs_by_name)
        targets = sorted(
            name
            for name in compiled.variables
            if name in inputs_by_name and name not in pinned
        )
        witness: Dict[str, int] = {
            name: value for name, value in pinned.items() if name in inputs_by_name
        }
        if not targets:
            return witness
        # The current model is one valid completion of any prefix we have
        # pinned so far; it seeds the concrete fast path only.
        model = dict(solver.model(compiled.variables | set(inputs_by_name)))
        # Batched fast path: if every target's *first-choice* candidate is
        # jointly satisfiable, the sequential loop below would accept each
        # first choice too (every prefix of a jointly-SAT pin set stays
        # SAT), so the whole witness resolves in one evaluation or one
        # solver check.  First choices are pure functions of the formula
        # and the background table — determinism is unaffected; a joint
        # UNSAT just falls through to the per-variable loop.
        first_choice: Dict[str, int] = {}
        for name in targets:
            path, term = inputs_by_name[name]
            hinted = hints.get(name, ())
            first_choice[name] = (
                hinted[0]
                if hinted
                else self._BACKGROUND.get(path, 0) & ((1 << term.width) - 1)
            )
        if compiled.evaluate({**model, **witness, **first_choice}):
            witness.update(first_choice)
            return witness
        stats.canonical_checks += 1
        batch = [
            inputs_by_name[name][1].eq(
                T.bv_const(value, inputs_by_name[name][1].width)
            )
            for name, value in first_choice.items()
        ]
        if solver.check(*assumptions, *batch) is Result.SAT:
            witness.update(first_choice)
            return witness
        fixed: List[T.Term] = []
        for name in targets:
            path, term = inputs_by_name[name]
            mask = (1 << term.width) - 1
            background = self._BACKGROUND.get(path, 0) & mask
            candidates = []
            # The MSB-flipped background serves goals that *exclude* the
            # background space (route misses, ACL negations): it leaves
            # every prefix the background belongs to while keeping the
            # low bits recognisable, and costs one check instead of a
            # per-bit descent.
            far = background ^ (1 << (term.width - 1))
            for value in (*hints.get(name, ()), background, far, 0):
                if value not in candidates:
                    candidates.append(value)
            chosen = None
            for value in candidates:
                trial = {**model, **witness, name: value}
                if compiled.evaluate(trial):
                    chosen = value
                    break
                stats.canonical_checks += 1
                if solver.check(*assumptions, *fixed, term.eq(value)) is Result.SAT:
                    chosen = value
                    # Refresh the completion seed: the new model satisfies
                    # everything fixed so far, keeping the fast path alive.
                    model = dict(solver.model(compiled.variables | set(inputs_by_name)))
                    break
            if chosen is None:
                chosen = self._descend_bits(
                    solver, assumptions, fixed, term, background, stats
                )
            witness[name] = chosen
            fixed.append(term.eq(T.bv_const(chosen, term.width)))
        return witness

    def _structural_pins(self, assumptions, inputs_by_name) -> tuple:
        """(pins, hints) mined from the assumption conjuncts.

        Pins are exact ``var == const`` conjuncts (background refinement,
        port preference, exact-match goal fields): they hold in every model
        of the assumption set, so they are adopted without any solver
        query.  Hints come from masked equalities ``(var & mask) == const``
        (ternary/LPM matches): merging the required bits over the
        background value gives a strong first candidate.
        """
        pins: Dict[str, int] = {}
        hints: Dict[str, tuple] = {}
        for assumption in assumptions:
            conjuncts = (
                assumption.args if assumption.op == T.OP_AND else (assumption,)
            )
            for c in conjuncts:
                if c.op != T.OP_EQ:
                    continue
                lhs, rhs = c.args
                if not rhs.is_const:
                    lhs, rhs = rhs, lhs
                if not rhs.is_const:
                    continue
                if lhs.op == T.OP_VAR:
                    if lhs.payload in inputs_by_name:
                        pins.setdefault(lhs.payload, rhs.payload)
                    continue
                if lhs.op != T.OP_BVAND:
                    continue
                var, mask_term = lhs.args
                if not mask_term.is_const:
                    var, mask_term = mask_term, var
                if not (mask_term.is_const and var.op == T.OP_VAR):
                    continue
                name = var.payload
                entry = inputs_by_name.get(name)
                if entry is None:
                    continue
                path, term = entry
                width_mask = (1 << term.width) - 1
                background = self._BACKGROUND.get(path, 0) & width_mask
                hint = ((background & ~mask_term.payload) | rhs.payload) & width_mask
                hints[name] = hints.get(name, ()) + (hint,)
        return pins, hints

    def _descend_bits(
        self, solver, assumptions, fixed, term, background: int, stats
    ) -> int:
        """Deterministic last resort: the value a greedy MSB-first walk
        would produce — at each position prefer the background bit, flip
        only when the preferred bit is unsatisfiable given the bits fixed
        so far.  Computed segment-wise instead of bit-wise: first try the
        whole remaining suffix of background bits in one check; on
        failure, binary-search the longest satisfiable preferred prefix
        (prefix satisfiability is monotone), after which the next bit's
        flip is forced — every model of the pinned prefix already has it
        flipped, so no check is needed.  O(flips · log width) solver
        checks instead of O(width), same witness bit for bit.

        Precondition: the caller already established that the full
        background value is unsatisfiable (it was a rejected candidate),
        so the first iteration skips the whole-suffix check."""
        value = 0
        pins: List[T.Term] = []
        full_suffix_known_unsat = True

        def preferred_pins(msb: int, count: int) -> List[T.Term]:
            return [
                T.extract(term, b, b).eq(T.bv_const((background >> b) & 1, 1))
                for b in range(msb, msb - count, -1)
            ]

        def sat_with(extra: List[T.Term]) -> bool:
            stats.canonical_checks += 1
            return (
                solver.check(*assumptions, *fixed, *pins, *extra) is Result.SAT
            )

        # A completion consistent with `fixed` (one guaranteed-SAT check).
        # Its bits are SAT *witnesses*: wherever the completion already
        # agrees with the background, the corresponding preferred-run
        # check is known SAT without asking the solver.  It never decides
        # a value — the greedy preferred-first choice is unchanged — so
        # the witness stays solver-history-independent.
        stats.canonical_checks += 1
        solver.check(*assumptions, *fixed)
        comp = solver.model([term.name])[term.name]

        def agreement(msb: int, limit: int) -> int:
            run = 0
            while run < limit and (
                ((comp >> (msb - run)) & 1) == ((background >> (msb - run)) & 1)
            ):
                run += 1
            return run

        bit = term.width - 1
        while bit >= 0:
            remaining = bit + 1
            agree = agreement(bit, remaining)
            if not full_suffix_known_unsat and (
                agree == remaining or sat_with(preferred_pins(bit, remaining))
            ):
                pins.extend(preferred_pins(bit, remaining))
                value |= background & ((1 << remaining) - 1)
                break
            full_suffix_known_unsat = False
            # Longest satisfiable run of preferred bits below `bit`:
            # lo is known-SAT (the completion witnesses `agree`),
            # hi known-UNSAT.
            lo, hi = agree, remaining
            while hi - lo > 1:
                mid = (lo + hi) // 2
                if sat_with(preferred_pins(bit, mid)):
                    comp = solver.model([term.name])[term.name]
                    # The fresh completion satisfies the mid-run and may
                    # agree further down — extend lo for free.
                    lo = max(mid, agreement(bit, remaining - 1))
                else:
                    hi = mid
            if lo:
                pins.extend(preferred_pins(bit, lo))
                run = (background >> (bit - lo + 1)) & ((1 << lo) - 1)
                value |= run << (bit - lo + 1)
                bit -= lo
            flipped = 1 - ((background >> bit) & 1)
            pins.append(T.extract(term, bit, bit).eq(T.bv_const(flipped, 1)))
            value |= flipped << bit
            bit -= 1
        return value

    def _refinements(self, execution, condition: T.Term) -> tuple:
        """(background, soft_dst) refinement conjunctions for a goal.

        Both depend only on *which* variables the condition constrains,
        not on how — and goals over the same table constrain the same
        variable set — so the free-variable scan and conjunction rebuild
        happen once per (profile, constrained-set) instead of once per
        goal attempt.
        """
        constrained = frozenset(T.free_variables(condition))
        key = (execution.profile.name, constrained)
        cached = self._refinement_cache.get(key)
        if cached is None:
            cached = (
                self._background_refinement(execution, constrained),
                self._soft_dst_preference(execution, constrained),
            )
            self._refinement_cache[key] = cached
        return cached

    def _soft_dst_preference(self, execution, constrained: frozenset) -> T.Term:
        clauses = []
        for path in ("ipv4.dst_addr", "ipv6.dst_addr"):
            term = execution.inputs.get(path)
            if term is None or term.is_const or term.name not in constrained:
                continue  # free fields are already background-pinned
            clauses.append(term.eq(self._BACKGROUND[path] & ((1 << term.width) - 1)))
        return T.and_(*clauses) if clauses else T.TRUE

    def _background_refinement(self, execution, constrained: frozenset) -> T.Term:
        """Pin fields the goal leaves free to realistic background values.

        Only fields whose variables do not occur in the goal condition are
        pinned, so the refinement can never make a satisfiable goal
        unsatisfiable on its own (the extra port preference can, hence the
        query cascade).  Without this, packets carry whatever residue the
        solver's previous queries left in those variables — all-zero TTLs
        and addresses that mask real divergences.
        """
        clauses = []
        for path, term in execution.inputs.items():
            if term.is_const or term.name in constrained:
                continue
            if path in self._BACKGROUND:
                width = term.width
                clauses.append(term.eq(self._BACKGROUND[path] & ((1 << width) - 1)))
        return T.and_(*clauses) if clauses else T.TRUE

    # ------------------------------------------------------------------
    # Coverage subsumption
    # ------------------------------------------------------------------
    def subsume_goal(
        self,
        goal: CoverageGoal,
        executions: Sequence[ProfileExecution],
        packets: Sequence[GeneratedPacket],
    ) -> Optional[GeneratedPacket]:
        """A prior packet that already witnesses ``goal``, or None.

        Before paying a solver cascade, evaluate the goal condition
        concretely under each already-generated packet of the same parser
        profile (the profile constraints hold for those by construction).
        A hit covers the goal for free; the witness is re-labelled so
        downstream replay still attributes behaviour per goal.
        """
        for execution in executions:
            condition = goal.condition(execution)
            if condition is None or condition is T.FALSE:
                continue
            # Compiled once per condition (process-wide cache) and then
            # evaluated in the flat bytecode loop against every candidate
            # witness — this is the hottest concrete-evaluation path.
            compiled = compile_term(condition)
            needed = compiled.variables
            for prior in packets:
                if prior.profile != execution.profile.name:
                    continue
                assignment = self._packet_assignment(prior, execution)
                # Concrete evaluation is only a proof when every variable
                # the condition mentions has a value from the packet.
                if not needed <= assignment.keys():
                    continue
                if compiled.evaluate(assignment):
                    return GeneratedPacket(
                        goal=goal.name,
                        profile=prior.profile,
                        packet=prior.packet.copy(),
                        ingress_port=prior.ingress_port,
                    )
        return None

    def _packet_assignment(
        self, generated: GeneratedPacket, execution: ProfileExecution
    ) -> Dict[str, int]:
        """The variable assignment a generated packet induces."""
        cached = self._assignment_cache.get(id(generated.packet))
        if cached is not None:
            return cached
        assignment: Dict[str, int] = {}
        for path, term in execution.inputs.items():
            if term.is_const:
                continue
            if path == "standard.ingress_port":
                assignment[term.name] = generated.ingress_port
            elif path in generated.packet.fields:
                assignment[term.name] = generated.packet.fields[path]
        self._assignment_cache[id(generated.packet)] = assignment
        return assignment

    # ------------------------------------------------------------------
    # Background values for input fields the goal leaves unconstrained.
    # Any value satisfies the formula for such fields; realistic non-zero
    # defaults make test packets exercise behaviour the constraints do not
    # pin down (DSCP rewrites, ICMP field extraction, MTU handling) —
    # all-zero packets would mask entire bug classes.
    _BACKGROUND = {
        "ethernet.dst_addr": 0x02BB00000042,
        "ethernet.src_addr": 0x02AA00000017,
        "ipv4.version": 4,
        "ipv4.ihl": 5,
        "ipv4.dscp": 10,
        "ipv4.ttl": 64,
        "ipv4.src_addr": 0x0A090909,  # 10.9.9.9
        "ipv4.dst_addr": 0x0A010009,  # 10.1.0.9 — inside common route space
        "ipv6.version": 6,
        "ipv6.hop_limit": 64,
        "ipv6.src_addr": 0x20010DB8_00000000_00000000_00000009,
        "ipv6.dst_addr": 0x20010DB8_00000000_00000000_00000042,
        "icmp.type": 13,
        "icmp.code": 5,
        "tcp.src_port": 10000,
        "tcp.dst_port": 443,
        "udp.src_port": 10000,
        "udp.dst_port": 443,
    }
    # 96-byte payload: large enough that truncation bugs are observable.
    _PAYLOAD = (b"SwitchV!" * 12)[:96]

    def _packet_from_model(
        self, goal: CoverageGoal, execution: ProfileExecution, model
    ) -> GeneratedPacket:
        packet = Packet(payload=self._PAYLOAD)
        profile = execution.profile
        for path, term in execution.inputs.items():
            if path == "standard.ingress_port":
                continue
            if term.is_const:
                value = term.value
            elif term.name in model:
                value = model[term.name]
            else:
                # Unconstrained by every asserted formula: free to pick a
                # realistic background value.
                width = self.program.field_width(path)
                value = self._BACKGROUND.get(path, 0) & ((1 << width) - 1)
            packet.fields[path] = value
        packet.valid_headers = set(profile.valid_headers)
        port_term = execution.inputs["standard.ingress_port"]
        ingress_port = model.get(port_term.name, self.valid_ports[0])
        if ingress_port not in self.valid_ports:
            ingress_port = self.valid_ports[0]
        return GeneratedPacket(
            goal=goal.name,
            profile=profile.name,
            packet=packet,
            ingress_port=ingress_port,
        )
