"""Parallel packet generation: sharded goal solving across processes.

Packet generation poses one independent solver cascade per coverage goal,
which makes it embarrassingly parallel — the observation P4Testgen exploits
for per-path test extraction.  This module shards the goal list round-robin
across ``workers`` forked processes.  Each worker inherits the parent's
symbolic executions and hash-consed term graph through fork's copy-on-write
memory (no re-execution, no pickling of terms), builds its own per-profile
incremental solvers, solves its shard, and ships back picklable
:class:`GeneratedPacket` results plus its :class:`GenerationStats` counters,
which the parent merges.

Robustness contract:

* ``workers=1`` never enters this module — :meth:`PacketGenerator.generate`
  keeps the exact sequential path.
* Platforms without the ``fork`` start method degrade to sequential solving.
* A crashed worker (OOM-killed, segfaulted, fault-injected) loses only its
  shard's progress: the parent detects the broken pool and re-solves every
  unfinished goal sequentially, so a run is never lost to a worker death.

The SAT/UNSAT verdict of every cascade query is model-independent, so the
*covered-goal set* is identical to a sequential run; only the concrete
witness packets may differ (each worker's solver walks its own decision
path).
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence

from repro.symbolic.cache import CachedGoal
from repro.symbolic.coverage import CoverageGoal, CoverageMode, goals_for_mode
from repro.symbolic.packets import (
    GeneratedPacket,
    GenerationResult,
    GenerationStats,
    PacketGenerator,
)

# Worker state, published by the parent immediately before the pool forks;
# workers read it through fork-inherited memory (closures and term graphs
# included), which is why none of it needs to be picklable.
_WORKER_GENERATOR: Optional[PacketGenerator] = None
_WORKER_GOALS: Optional[List[CoverageGoal]] = None

# Test hook: when True, forked workers die immediately (inherited at fork
# time), exercising the broken-pool -> sequential-fallback path.
_FAULT_INJECT = False


def _solve_shard(indices: List[int]):
    """Worker entry point: solve one shard of goal indices."""
    if _FAULT_INJECT:
        os._exit(3)
    generator = _WORKER_GENERATOR
    goals = _WORKER_GOALS
    executions = generator.executions()
    shard_stats = GenerationStats()
    effort_before = generator._solver_effort()
    solved = []
    # Shard-local subsumption: a goal an earlier packet of this shard
    # already witnesses is covered without a solver cascade.  (Cross-shard
    # subsumption would need the other workers' packets — not worth the
    # synchronisation; missed hits just solve normally.)
    shard_packets: List[GeneratedPacket] = []
    for index in indices:
        generated = generator.subsume_goal(goals[index], executions, shard_packets)
        if generated is not None:
            shard_stats.goals_subsumed += 1
        else:
            generated = generator._solve_goal(
                goals[index], executions, shard_stats, index
            )
        if generated is not None:
            shard_packets.append(generated)
        solved.append((index, generated))
    generator._account_effort(shard_stats, effort_before)
    return solved, shard_stats


def generate_parallel(
    generator: PacketGenerator,
    mode: CoverageMode = CoverageMode.ENTRY,
    custom_goals: Sequence[CoverageGoal] = (),
    workers: int = 2,
    goal_cache=None,
) -> GenerationResult:
    """Shard the coverage goals across ``workers`` processes and merge."""
    global _WORKER_GENERATOR, _WORKER_GOALS
    start = time.perf_counter()
    stats = GenerationStats(workers=max(1, workers))
    executions = generator.executions()
    goals = goals_for_mode(executions, mode, custom_goals)
    stats.goals_total = len(goals)

    # Per-goal cache pass (parent only): answered goals never reach a worker.
    outcomes: Dict[int, Optional[GeneratedPacket]] = {}
    keys: Dict[int, str] = {}
    to_solve: List[int] = []
    for index, goal in enumerate(goals):
        if goal_cache is not None:
            key = generator._goal_cache_key(goal, executions)
            keys[index] = key
            hit = goal_cache.lookup_goal(key)
            if hit is not None:
                stats.goals_from_cache += 1
                outcomes[index] = hit.packet
                continue
        to_solve.append(index)

    if to_solve:
        if workers <= 1 or "fork" not in mp.get_all_start_methods():
            _solve_sequentially(generator, goals, executions, to_solve, outcomes, stats)
        else:
            # Round-robin sharding balances the port-diversified goal
            # cascade (solve cost correlates with goal index order) and
            # preserves each goal's original index, which the sequential
            # path uses for ingress-port rotation.
            shards = [to_solve[k::workers] for k in range(workers)]
            shards = [shard for shard in shards if shard]
            _WORKER_GENERATOR = generator
            _WORKER_GOALS = goals
            try:
                with ProcessPoolExecutor(
                    max_workers=len(shards), mp_context=mp.get_context("fork")
                ) as pool:
                    futures = [pool.submit(_solve_shard, shard) for shard in shards]
                    for future in futures:
                        try:
                            solved, shard_stats = future.result()
                        except Exception:
                            continue  # shard lost; re-solved below
                        for index, generated in solved:
                            outcomes[index] = generated
                        stats.merge(shard_stats)
            except Exception:
                pass  # pool never came up; everything re-solved below
            finally:
                _WORKER_GENERATOR = None
                _WORKER_GOALS = None
            unsolved = [index for index in to_solve if index not in outcomes]
            if unsolved:
                _solve_sequentially(
                    generator, goals, executions, unsolved, outcomes, stats
                )
        if goal_cache is not None:
            for index in to_solve:
                goal_cache.store_goal(
                    keys[index],
                    CachedGoal(goal=goals[index].name, packet=outcomes[index]),
                )

    # Assemble in goal order, matching the sequential result layout.
    packets: List[GeneratedPacket] = []
    uncovered: List[str] = []
    for index, goal in enumerate(goals):
        generated = outcomes[index]
        if generated is not None:
            packets.append(generated)
            stats.goals_covered += 1
        else:
            uncovered.append(goal.name)
            stats.goals_unsatisfiable += 1
    stats.elapsed_seconds = time.perf_counter() - start
    return GenerationResult(packets=packets, uncovered=uncovered, stats=stats)


def _solve_sequentially(
    generator: PacketGenerator,
    goals: List[CoverageGoal],
    executions,
    indices: List[int],
    outcomes: Dict[int, Optional[GeneratedPacket]],
    stats: GenerationStats,
) -> None:
    """In-parent fallback: solve the given goal indices one by one."""
    effort_before = generator._solver_effort()
    solved_packets: List[GeneratedPacket] = []
    for index in indices:
        generated = generator.subsume_goal(goals[index], executions, solved_packets)
        if generated is not None:
            stats.goals_subsumed += 1
        else:
            generated = generator._solve_goal(goals[index], executions, stats, index)
        if generated is not None:
            solved_packets.append(generated)
        outcomes[index] = generated
    generator._account_effort(stats, effort_before)

