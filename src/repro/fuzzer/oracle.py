"""The P4Runtime oracle (§4.3).

Encodes the P4Runtime specification instantiated for a given P4 program and
judges whether the switch's observable behaviour is *admissible* — never
predicting a single outcome, because the spec under-specifies (resource
rejections, batch ordering).  To avoid tracking the exponential set of
valid states across a request sequence, the oracle follows the paper's
design: after each batch it reads the switch's state back, checks that the
observed state is a valid successor of the previous one given the reported
per-update statuses, then adopts it and forgets history.

The oracle deliberately shares no validation code with the switch's
P4Runtime layer: it classifies updates with the reference decoder
(:func:`repro.bmv2.entries.decode_table_entry`), so a disagreement between
the two implementations of the spec surfaces as an incident either way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bmv2.entries import EntryDecodeError, InstalledEntry, decode_table_entry
from repro.p4.constraints import parse_constraint
from repro.p4.constraints.evaluator import evaluate_constraint
from repro.p4.constraints.lang import ConstraintSyntaxError
from repro.p4.constraints.refs import ReferenceGraph, ReferenceIndex
from repro.p4.p4info import P4Info
from repro.p4rt.messages import TableEntry, Update, UpdateType, WriteResponse
from repro.p4rt.status import Code, Status
from repro.switchv.report import Incident, IncidentKind, IncidentLog

# Cached marker for wire entries that fail to decode: equal-but-undecodable
# pairs must keep reporting mismatches, so decode *failures* are memoised
# alongside successes (see Oracle._decode_cached).
_DECODE_FAILED = object()


@dataclass(frozen=True)
class Classified:
    """The oracle's verdict on one update, before seeing the response."""

    update: Update
    # "invalid": must be rejected.  "valid": state-dependent rules apply.
    validity: str
    reason: str = ""
    decoded: Optional[InstalledEntry] = None


class Oracle:
    """Judges responses and read-backs against the instantiated spec.

    State bookkeeping is incremental by default: per-table entry counters,
    a :class:`~repro.p4.constraints.refs.ReferenceIndex` answering the
    dangling/orphan questions, and a decoded-form cache keyed by wire
    entry, so per-update judging cost is independent of how many entries
    are installed.  ``incremental=False`` keeps the original linear
    recomputation — retained as the baseline the differential tests and
    benchmarks compare against (verdicts are identical either way).
    """

    # Class-level default so whole campaigns can be flipped to the linear
    # baseline without threading a parameter through every constructor.
    default_incremental = True

    def __init__(
        self,
        p4info: P4Info,
        strict_constraints: bool = False,
        incremental: Optional[bool] = None,
    ) -> None:
        self.p4info = p4info
        self.refs = ReferenceGraph(p4info)
        self.incremental = (
            self.default_incremental if incremental is None else incremental
        )
        self._constraints = {}
        # A malformed @entry_restriction must never *silently* disable
        # constraint checking for its table: that would suppress every
        # constraint-violation incident with no signal.  The error is a
        # model bug; it is recorded here and surfaced as a MODEL_ERROR
        # incident (see constraint_incidents), or raised immediately in
        # strict mode.
        self.constraint_errors: Dict[int, str] = {}
        for tid, table in p4info.tables.items():
            if table.entry_restriction:
                try:
                    self._constraints[tid] = parse_constraint(table.entry_restriction)
                except ConstraintSyntaxError as exc:
                    if strict_constraints:
                        raise
                    self.constraint_errors[tid] = str(exc)
        # The adopted switch state: entry identity -> wire entry.
        self.expected: Dict[Tuple, TableEntry] = {}
        # Incrementally maintained referenceable state (mirrors expected).
        self._available = self.refs.collect_state(())
        # Incremental mode: per-table entry counts, the reverse-reference
        # index, and the decoded-form cache for read-back diffing.
        self._counts: Dict[int, int] = {}
        self._index = ReferenceIndex(self.refs)
        self._decoded: Dict[TableEntry, object] = {}

    def constraint_incidents(self) -> IncidentLog:
        """Model incidents for tables whose @entry_restriction failed to
        parse (constraint checking is disabled there — say so loudly)."""
        log = IncidentLog()
        for tid in sorted(self.constraint_errors):
            table = self.p4info.tables[tid]
            log.report(
                Incident(
                    kind=IncidentKind.MODEL_ERROR,
                    summary=f"malformed @entry_restriction on {table.name}: "
                    "constraint checking disabled for this table",
                    expected="a parseable entry restriction",
                    observed=self.constraint_errors[tid],
                    table_id=tid,
                    table_name=table.name,
                    source="p4-fuzzer",
                )
            )
        return log

    # ------------------------------------------------------------------
    # Classification (syntactic validity + constraint compliance, §4)
    # ------------------------------------------------------------------
    def classify(self, update: Update) -> Classified:
        try:
            decoded = decode_table_entry(self.p4info, update.entry)
        except EntryDecodeError as exc:
            return Classified(update, "invalid", reason=exc.reason)
        constraint = self._constraints.get(update.entry.table_id)
        if (
            constraint is not None
            and update.type is not UpdateType.DELETE
            and not evaluate_constraint(constraint, decoded.key_values())
        ):
            return Classified(update, "invalid", reason="constraint_violation")
        return Classified(update, "valid", decoded=decoded)

    # ------------------------------------------------------------------
    # Batch judging
    # ------------------------------------------------------------------
    def judge_batch(
        self,
        updates: Sequence[Update],
        response: WriteResponse,
        read_back: Optional[Sequence[TableEntry]] = None,
    ) -> IncidentLog:
        """Judge one batch's statuses and, if provided, the post-batch
        read-back (pass ``None`` to skip the read comparison)."""
        log = IncidentLog()
        if len(response.statuses) != len(updates):
            log.report(
                Incident(
                    kind=IncidentKind.SWITCH_UNRESPONSIVE,
                    summary="response cardinality mismatch",
                    expected=f"{len(updates)} statuses",
                    observed=f"{len(response.statuses)} statuses",
                    source="p4-fuzzer",
                )
            )
            # The per-update outcomes are unknowable, so the projected
            # expected state is now garbage.  Resynchronise from the
            # read-back (when one was taken) so subsequent batches are
            # judged against the switch's actual state instead of a stale
            # projection compounding phantom incidents.
            if read_back is not None:
                self.resync(read_back)
            return log

        for update, status in zip(updates, response.statuses, strict=False):
            self._judge_update(update, status, log)

        if read_back is not None:
            self._judge_read_back(read_back, log)
        return log

    def _judge_update(self, update: Update, status: Status, log: IncidentLog) -> None:
        classified = self.classify(update)
        entry = update.entry
        key = entry.match_key()

        if classified.validity == "invalid":
            if status.ok:
                table = self.p4info.tables.get(entry.table_id)
                log.report(
                    Incident(
                        kind=IncidentKind.INVALID_REQUEST_ACCEPTED,
                        summary=f"{update.type.value} with {classified.reason} accepted",
                        expected="rejection (request is invalid)",
                        observed="OK",
                        test_input=repr(entry),
                        table_id=entry.table_id,
                        table_name=table.name if table else "",
                        source="p4-fuzzer",
                    )
                )
                # The switch claims it applied the entry; adopt it so the
                # read-back comparison stays coherent.
                self._apply(update)
            return

        # Valid update: state-dependent admissibility.
        if update.type is UpdateType.INSERT:
            self._judge_insert(update, status, log)
        elif update.type is UpdateType.MODIFY:
            self._judge_modify(update, status, log)
        else:
            self._judge_delete(update, status, log)

    def _judge_insert(self, update: Update, status: Status, log: IncidentLog) -> None:
        entry = update.entry
        key = entry.match_key()
        table = self.p4info.tables[entry.table_id]
        exists = key in self.expected
        dangling = self.refs.dangling_references(entry, self._available_values())
        if self.incremental:
            table_count = self._counts.get(entry.table_id, 0)
        else:
            table_count = sum(
                1 for k in self.expected if self._key_table(k) == entry.table_id
            )

        if exists:
            if status.ok:
                log.report(
                    Incident(
                        kind=IncidentKind.INVALID_REQUEST_ACCEPTED,
                        summary=f"duplicate insert into {table.name} accepted",
                        expected="ALREADY_EXISTS",
                        observed="OK",
                        test_input=repr(entry),
                        table_id=entry.table_id,
                        table_name=table.name,
                        source="p4-fuzzer",
                    )
                )
            elif status.code is not Code.ALREADY_EXISTS:
                log.report(
                    Incident(
                        kind=IncidentKind.WRONG_ERROR_CODE,
                        summary=f"duplicate insert into {table.name} rejected with "
                        f"{status.code.name}",
                        expected="ALREADY_EXISTS",
                        observed=status.code.name,
                        table_id=entry.table_id,
                        table_name=table.name,
                        source="p4-fuzzer",
                    )
                )
            return
        if dangling:
            if status.ok:
                ref = dangling[0]
                log.report(
                    Incident(
                        kind=IncidentKind.INVALID_REQUEST_ACCEPTED,
                        summary=f"insert with dangling reference to "
                        f"{ref.target_table}.{ref.target_key} accepted",
                        expected="rejection (referential integrity)",
                        observed="OK",
                        test_input=repr(entry),
                        table_id=entry.table_id,
                        table_name=table.name,
                        related_tables=(ref.target_table,),
                        source="p4-fuzzer",
                    )
                )
                self._apply(update)
            return
        if status.ok:
            self._apply(update)
            return
        if status.code is Code.RESOURCE_EXHAUSTED:
            if table_count < table.size:
                log.report(
                    Incident(
                        kind=IncidentKind.VALID_REQUEST_REJECTED,
                        summary=f"insert into {table.name} hit RESOURCE_EXHAUSTED below "
                        f"the guaranteed size ({table_count}/{table.size})",
                        expected=f"acceptance up to {table.size} entries",
                        observed=status.message,
                        test_input=repr(entry),
                        table_id=entry.table_id,
                        table_name=table.name,
                        source="p4-fuzzer",
                    )
                )
            return  # beyond the guarantee, rejection is admissible
        log.report(
            Incident(
                kind=IncidentKind.VALID_REQUEST_REJECTED,
                summary=f"valid insert into {table.name} rejected: "
                f"{status.code.name}",
                expected="OK",
                observed=f"{status.code.name}: {status.message}",
                test_input=repr(entry),
                table_id=entry.table_id,
                table_name=table.name,
                source="p4-fuzzer",
            )
        )

    def _judge_modify(self, update: Update, status: Status, log: IncidentLog) -> None:
        entry = update.entry
        key = entry.match_key()
        table = self.p4info.tables[entry.table_id]
        exists = key in self.expected
        dangling = self.refs.dangling_references(entry, self._available_values())
        if not exists:
            if status.ok:
                log.report(
                    Incident(
                        kind=IncidentKind.INVALID_REQUEST_ACCEPTED,
                        summary=f"modify of non-existent entry in {table.name} accepted",
                        expected="NOT_FOUND",
                        observed="OK",
                        table_id=entry.table_id,
                        table_name=table.name,
                        source="p4-fuzzer",
                    )
                )
                self._apply(update)
            elif status.code is not Code.NOT_FOUND:
                log.report(
                    Incident(
                        kind=IncidentKind.WRONG_ERROR_CODE,
                        summary=f"modify of non-existent entry in {table.name} rejected "
                        f"with {status.code.name}",
                        expected="NOT_FOUND",
                        observed=status.code.name,
                        table_id=entry.table_id,
                        table_name=table.name,
                        source="p4-fuzzer",
                    )
                )
            return
        if dangling:
            if status.ok:
                log.report(
                    Incident(
                        kind=IncidentKind.INVALID_REQUEST_ACCEPTED,
                        summary=f"modify with dangling reference in {table.name} accepted",
                        expected="rejection (referential integrity)",
                        observed="OK",
                        table_id=entry.table_id,
                        table_name=table.name,
                        related_tables=(dangling[0].target_table,),
                        source="p4-fuzzer",
                    )
                )
                self._apply(update)
            return
        if status.ok:
            self._apply(update)
            return
        log.report(
            Incident(
                kind=IncidentKind.VALID_REQUEST_REJECTED,
                summary=f"valid modify in {table.name} rejected: {status.code.name}",
                expected="OK",
                observed=f"{status.code.name}: {status.message}",
                test_input=repr(entry),
                table_id=entry.table_id,
                table_name=table.name,
                source="p4-fuzzer",
            )
        )

    def _judge_delete(self, update: Update, status: Status, log: IncidentLog) -> None:
        entry = update.entry
        key = entry.match_key()
        table = self.p4info.tables[entry.table_id]
        exists = key in self.expected
        if not exists:
            if status.ok:
                log.report(
                    Incident(
                        kind=IncidentKind.INVALID_REQUEST_ACCEPTED,
                        summary=f"delete of non-existent entry in {table.name} accepted",
                        expected="NOT_FOUND",
                        observed="OK",
                        table_id=entry.table_id,
                        table_name=table.name,
                        source="p4-fuzzer",
                    )
                )
            elif status.code not in (Code.NOT_FOUND, Code.ABORTED):
                log.report(
                    Incident(
                        kind=IncidentKind.WRONG_ERROR_CODE,
                        summary=f"delete of non-existent entry in {table.name} rejected "
                        f"with {status.code.name}",
                        expected="NOT_FOUND",
                        observed=status.code.name,
                        table_id=entry.table_id,
                        table_name=table.name,
                        source="p4-fuzzer",
                    )
                )
            return
        if self._delete_would_orphan(key):
            if status.ok:
                log.report(
                    Incident(
                        kind=IncidentKind.INVALID_REQUEST_ACCEPTED,
                        summary=f"delete orphaning references in {table.name} accepted",
                        expected="rejection (referential integrity)",
                        observed="OK",
                        table_id=entry.table_id,
                        table_name=table.name,
                        source="p4-fuzzer",
                    )
                )
                self._apply(update)
            return
        if status.ok:
            self._apply(update)
            return
        log.report(
            Incident(
                kind=IncidentKind.VALID_REQUEST_REJECTED,
                summary=f"valid delete in {table.name} rejected: {status.code.name}",
                expected="OK",
                observed=f"{status.code.name}: {status.message}",
                test_input=repr(entry),
                table_id=entry.table_id,
                table_name=table.name,
                source="p4-fuzzer",
            )
        )

    # ------------------------------------------------------------------
    # Read-back validation
    # ------------------------------------------------------------------
    def _judge_read_back(self, read_back: Sequence[TableEntry], log: IncidentLog) -> None:
        observed: Dict[Tuple, TableEntry] = {}
        for entry in read_back:
            observed[entry.match_key()] = entry
        missing = [k for k in self.expected if k not in observed]
        extra = [k for k in observed if k not in self.expected]
        for key in missing[:5]:
            table = self.p4info.tables.get(self._key_table(key))
            log.report(
                Incident(
                    kind=IncidentKind.READBACK_MISMATCH,
                    summary=f"entry missing from read-back of "
                    f"{table.name if table else key[0]}",
                    expected=repr(self.expected[key]),
                    observed="absent",
                    table_id=self._key_table(key),
                    table_name=table.name if table else "",
                    source="p4-fuzzer",
                )
            )
        if len(missing) > 5:
            log.report(
                Incident(
                    kind=IncidentKind.READBACK_MISMATCH,
                    summary=f"{len(missing) - 5} further entries missing from "
                    "read-back (suppressed)",
                    expected=f"{len(missing)} expected entries present",
                    observed=f"{len(missing)} entries absent; first 5 reported "
                    "individually",
                    source="p4-fuzzer",
                )
            )
        for key in extra[:5]:
            table = self.p4info.tables.get(self._key_table(key))
            log.report(
                Incident(
                    kind=IncidentKind.READBACK_MISMATCH,
                    summary=f"unexpected entry in read-back of "
                    f"{table.name if table else key[0]}",
                    expected="absent",
                    observed=repr(observed[key]),
                    table_id=self._key_table(key),
                    table_name=table.name if table else "",
                    source="p4-fuzzer",
                )
            )
        if len(extra) > 5:
            log.report(
                Incident(
                    kind=IncidentKind.READBACK_MISMATCH,
                    summary=f"{len(extra) - 5} further unexpected entries in "
                    "read-back (suppressed)",
                    expected="no unexpected entries",
                    observed=f"{len(extra)} unexpected entries; first 5 reported "
                    "individually",
                    source="p4-fuzzer",
                )
            )
        # Wire-level changes among common keys feed the incremental adopt
        # diff; the semantic comparison below decides whether to report.
        changed: List[Tuple] = []
        for key, entry in self.expected.items():
            other = observed.get(key)
            if other is None:
                continue
            if other is not entry and other != entry:
                changed.append(key)
            if not self._same_entry(entry, other):
                log.report(
                    Incident(
                        kind=IncidentKind.READBACK_MISMATCH,
                        summary=f"entry content differs in read-back "
                        f"(table 0x{entry.table_id:08x})",
                        expected=repr(entry),
                        observed=repr(other),
                        table_id=entry.table_id,
                        table_name=getattr(self.p4info.tables.get(entry.table_id), "name", ""),
                        source="p4-fuzzer",
                    )
                )
        # Adopt the observed state so bookkeeping stays coherent even after
        # a mismatch (the paper's "forget the prior state" step).
        self._adopt(observed, diff=(missing, extra, changed))

    # ------------------------------------------------------------------
    # Resynchronisation (§4.3 "adopt the observed state")
    # ------------------------------------------------------------------
    def resync(self, read_back: Sequence[TableEntry]) -> None:
        """Adopt the switch's read-back as ground truth, judging nothing.

        This is the recovery path after an *ambiguous* outcome — a retried
        write whose earlier attempt may or may not have landed, or a
        response whose cardinality made per-update judging impossible.
        The spec admits several end states there, so the only sound move
        is the paper's: read the state back and forget the projection.
        """
        self._adopt({entry.match_key(): entry for entry in read_back})

    def _adopt(
        self,
        observed: Dict[Tuple, TableEntry],
        diff: Optional[Tuple[List[Tuple], List[Tuple], List[Tuple]]] = None,
    ) -> None:
        if not self.incremental:
            self.expected = observed
            self._available = self.refs.collect_state(observed.values())
            return
        # When the observed state equals the projection (the common case —
        # no diff entries at all), adopting is just swapping the dict; the
        # index and counters already describe it.  Otherwise apply only the
        # deltas instead of rebuilding the referenceable state from scratch.
        if diff is None:
            missing = [k for k in self.expected if k not in observed]
            extra = [k for k in observed if k not in self.expected]
            changed = [
                k
                for k, entry in observed.items()
                if k in self.expected
                and self.expected[k] is not entry
                and self.expected[k] != entry
            ]
        else:
            missing, extra, changed = diff
        for key in missing:
            self._index.delete(key)
            self._bump(self._key_table(key), -1)
        for key in extra:
            self._index.insert(key, observed[key])
            self._bump(self._key_table(key), +1)
        for key in changed:
            self._index.replace(key, observed[key])
        self.expected = observed
        self._prune_decode_cache()

    def _same_entry(self, a: TableEntry, b: TableEntry) -> bool:
        if not self.incremental:
            try:
                da = decode_table_entry(self.p4info, a)
                db = decode_table_entry(self.p4info, b)
            except EntryDecodeError:
                return False
            return da == db
        da = self._decode_cached(a)
        db = self._decode_cached(b)
        return da is not _DECODE_FAILED and db is not _DECODE_FAILED and da == db

    def _decode_cached(self, entry: TableEntry) -> object:
        """Decode through a cache keyed by the (frozen, hashable) wire
        entry.  Failures are cached too: an undecodable pair must keep
        producing a mismatch verdict every batch, exactly as the uncached
        path does."""
        cached = self._decoded.get(entry)
        if cached is None:
            try:
                cached = decode_table_entry(self.p4info, entry)
            except EntryDecodeError:
                cached = _DECODE_FAILED
            self._decoded[entry] = cached
        return cached

    def _prune_decode_cache(self) -> None:
        # The cache is repopulated on demand; dropping it wholesale when it
        # has clearly outgrown the live state keeps memory bounded without
        # per-entry eviction bookkeeping.
        if len(self._decoded) > 2 * len(self.expected) + 1024:
            self._decoded.clear()

    # ------------------------------------------------------------------
    # State helpers
    # ------------------------------------------------------------------
    def _apply(self, update: Update) -> None:
        key = update.entry.match_key()
        if update.type is UpdateType.DELETE:
            removed = self.expected.pop(key, None)
            if removed is None:
                return
            if self.incremental:
                self._index.delete(key)
                self._bump(self._key_table(key), -1)
            else:
                exported = self.refs.exported_keyset(removed)
                if exported is not None:
                    self._available.remove(*exported)
        else:
            existed = key in self.expected
            if self.incremental:
                if existed:
                    self._index.replace(key, update.entry)
                else:
                    self._index.insert(key, update.entry)
                    self._bump(self._key_table(key), +1)
            elif not existed:
                exported = self.refs.exported_keyset(update.entry)
                if exported is not None:
                    self._available.add(*exported)
            self.expected[key] = update.entry

    def _bump(self, table_id: int, delta: int) -> None:
        new = self._counts.get(table_id, 0) + delta
        if new:
            self._counts[table_id] = new
        else:
            self._counts.pop(table_id, None)

    @staticmethod
    def _key_table(key: Tuple) -> int:
        return key[0]

    def _available_values(self):
        return self._index.available if self.incremental else self._available

    def _delete_would_orphan(self, key: Tuple) -> bool:
        if self.incremental:
            return self._index.would_orphan(key)
        remaining = self.refs.collect_state(
            entry for other_key, entry in self.expected.items() if other_key != key
        )
        return any(
            self.refs.dangling_references(entry, remaining)
            for other_key, entry in self.expected.items()
            if other_key != key
        )

    def installed_entries(self) -> List[TableEntry]:
        return list(self.expected.values())
