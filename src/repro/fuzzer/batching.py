"""Dependency-respecting batch assembly (§4.4).

A single Write RPC's updates may execute in any order, so a batch must
contain only independent updates: no update may reference a value exported
by another update in the same batch, touch the same entry identity, or
delete something a sibling references.  The batcher analyses @refers_to
edges (via :class:`ReferenceGraph`) and greedily packs updates into the
earliest compatible batch — the same mechanism the paper uses for control
plane testing, for installing data-plane test state, and in the controller.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.p4.constraints.refs import ReferenceGraph
from repro.p4.p4info import P4Info
from repro.p4rt.messages import Update


def _conflicts(refs: ReferenceGraph, a: Update, b: Update) -> bool:
    """Whether two updates may not share a batch."""
    if a.entry.match_key() == b.entry.match_key():
        return True  # same entry identity: order matters
    # a references a value exported by b (or vice versa): the insert must
    # land in an earlier batch than the referrer, the delete in a later one.
    if refs.depends_on(a.entry, b.entry) or refs.depends_on(b.entry, a.entry):
        return True
    return False


def make_batches(
    p4info: P4Info, updates: Sequence[Update], max_batch_size: int = 50
) -> List[List[Update]]:
    """Greedily pack updates into order-independent batches.

    Updates are kept in their generated order across batches (so an insert
    that a later update references lands in an earlier batch), while each
    batch is internally unordered-safe.
    """
    refs = ReferenceGraph(p4info)
    batches: List[List[Update]] = []
    for update in updates:
        placed = False
        # A batch is eligible only if the update conflicts with nothing in
        # it AND nothing in any *later* batch conflicts... since we append
        # in generation order, it suffices to scan from the last batch
        # backwards and stop at the first conflict.
        for index in range(len(batches) - 1, -1, -1):
            batch = batches[index]
            if any(_conflicts(refs, update, other) for other in batch):
                # Must go strictly after this batch.
                target = index + 1
                placed = True
                break
        else:
            target = 0
            placed = True
        while True:
            if target == len(batches):
                batches.append([update])
                break
            if len(batches[target]) < max_batch_size and not any(
                _conflicts(refs, update, other) for other in batches[target]
            ):
                batches[target].append(update)
                break
            target += 1
    return batches


def order_inserts(p4info: P4Info, updates: Sequence[Update]) -> List[Update]:
    """Topologically order INSERT updates so dependencies come first.

    Callers assembling a state from scratch (the harness install path, the
    controller) may list entries in any order; referenced entries must be
    installed before their referrers.  Reference cycles cannot arise from
    @refers_to in well-formed programs; if one does, the residue is
    appended in the original order.
    """
    refs = ReferenceGraph(p4info)
    remaining = list(updates)
    ordered: List[Update] = []
    available = refs.collect_state(())
    while remaining:
        progress = []
        stuck = []
        for update in remaining:
            if refs.dangling_references(update.entry, available):
                stuck.append(update)
            else:
                progress.append(update)
        if not progress:
            ordered.extend(stuck)  # cycle or genuinely dangling: keep order
            break
        for update in progress:
            ordered.append(update)
            exported = refs.exported_keyset(update.entry)
            if exported is not None:
                available.add(*exported)
        remaining = stuck
    return ordered


def verify_batch_independence(p4info: P4Info, batch: Sequence[Update]) -> bool:
    """Check a batch contains no dependent pair (used by tests)."""
    refs = ReferenceGraph(p4info)
    return not any(
        _conflicts(refs, a, b)
        for i, a in enumerate(batch)
        for b in batch[i + 1 :]
    )
