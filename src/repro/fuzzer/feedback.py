"""Greybox coverage feedback for the fuzzing loop (FP4's core idea).

The fuzzer's two halves finally talk to each other: ``repro.symbolic``
already knows exactly which tables, entries, and branch directions a table
state exercises, so after every judged batch the tracker re-derives the
model's symbolic trace for the oracle's installed state and scores it —
*without solver calls*.  Entry and miss trace keys are covered when their
guard is structurally reachable (not folded to FALSE); branch directions,
always structurally present, are covered when a compiled-term probe packet
(:mod:`repro.smt.compile`) witnesses the guard concretely.  Tables with an
``@entry_restriction`` additionally expose *boundary distance* regions: how
close (in key bits) the installed entries come to the constraint-aware
planner's sampled boundary models.

Coverage-increasing batches join a corpus keyed by the coverage delta they
unlocked; table and mutation selection is biased toward regions still
paying off — weighted by incremental coverage per unit of spend, decayed
as regions saturate.  Spend is measured in *deterministic* model-cost
units (updates attributed to the region), not wall-clock seconds: weights
feed the rng-driven selection, and a campaign must stay bit-for-bit
reproducible per seed across runs and fleet shards.  Actual scoring time
is still reported (``CoverageProgress.score_seconds``) for humans.

Pipelining stays sound because coverage accounting joins the deferred
in-order judging stage (:meth:`P4Fuzzer._judge_window`), never the
in-flight path: the tracker only ever sees the oracle's post-judging
state, in submission order, exactly as the sequential loop would.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.bmv2.entries import EntryDecodeError, InstalledEntry, decode_table_entry
from repro.p4.ast import P4Program
from repro.p4.p4info import P4Info, TableInfo
from repro.p4rt.messages import TableEntry, Update, UpdateType
from repro.smt import terms as T
from repro.smt.compile import compile_term
from repro.symbolic.coverage import entry_goal_name
from repro.symbolic.executor import SymbolicExecutor
from repro.symbolic.packets import PacketGenerator

# Probability that a guided wave slot re-seeds from the corpus instead of
# generating fresh (the greybox "mutate an interesting input" move).
CORPUS_SEED_PROBABILITY = 0.2
# Corpus size bound; oldest coverage-increasing batches are evicted first.
CORPUS_LIMIT = 64
# Region weights decay by this factor per gainless observation, floored so
# saturated regions keep a trickle of attention (they can desaturate when
# deletes open key space again).
REGION_DECAY = 0.7
REGION_FLOOR = 0.05
# Exploration bonus for tables with no covered entry yet.
EXPLORE_BONUS = 4.0


@dataclass
class CorpusEntry:
    """One coverage-increasing batch, keyed by the delta it unlocked."""

    updates: Tuple[Update, ...]
    unlocked: Tuple[str, ...]
    write_index: int


@dataclass
class CoverageProgress:
    """The feedback loop's campaign-level series (rendered by
    ``repro.switchv.report.render_coverage_progress``)."""

    # (cumulative updates observed, distinct trace keys covered) after each
    # scored batch — the coverage curve.
    samples: List[Tuple[int, int]] = field(default_factory=list)
    covered_keys: List[str] = field(default_factory=list)  # sorted
    corpus_size: int = 0
    batches_scored: int = 0
    batches_skipped: int = 0  # unchanged-state fast path
    score_seconds: float = 0.0
    # Distinct keys each table region unlocked (branch keys are global and
    # attributed to no table).
    table_gains: Dict[str, int] = field(default_factory=dict)

    @property
    def covered(self) -> int:
        return len(self.covered_keys)

    def by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for key in self.covered_keys:
            kind = key.split(":", 1)[0]
            counts[kind] = counts.get(kind, 0) + 1
        return counts


@dataclass
class _Region:
    """Per-table feedback accounting."""

    gain: int = 0  # distinct keys this region unlocked
    spend: int = 0  # updates attributed to it (deterministic cost units)
    since_gain: int = 0  # consecutive gainless observations with spend


class CoverageTracker:
    """Per-batch model coverage over the oracle's installed state."""

    def __init__(
        self,
        program: P4Program,
        p4info: P4Info,
        valid_ports: Sequence[int] = (1, 2, 3, 4, 5, 6, 7, 8),
        constraint_models: Optional[
            Callable[[], Dict[int, List[Dict[str, int]]]]
        ] = None,
    ) -> None:
        self.program = program
        self.p4info = p4info
        self.valid_ports = tuple(valid_ports)
        # The constraint-aware planner's cached boundary models (lazy: the
        # generator populates them on first use).
        self._constraint_models = constraint_models
        self.covered: Dict[str, None] = {}  # ordered set
        self.corpus: List[CorpusEntry] = []
        self._regions: Dict[str, _Region] = {}
        self._mutation_stats: Dict[str, _Region] = {}
        # Mutation attribution: id(update) -> (update, mutation name).  The
        # update reference keeps the id stable until the batch is observed.
        self._tags: Dict[int, Tuple[Update, str]] = {}
        self._decoded: Dict[TableEntry, Optional[InstalledEntry]] = {}
        self._state_digest: Optional[str] = None
        self._updates_seen = 0
        self._progress = CoverageProgress()

    # ------------------------------------------------------------------
    # Observation (called from the deferred, in-order judging stage)
    # ------------------------------------------------------------------
    def observe_batch(
        self,
        batch: Sequence[Update],
        entries: Sequence[TableEntry],
        write_index: int,
    ) -> List[str]:
        """Score one judged batch against the model; returns the keys it
        newly covered.  ``entries`` is the oracle's post-judging view."""
        start = time.perf_counter()
        self._updates_seen += len(batch)
        tables = self._batch_tables(batch)
        mutations = self._batch_mutations(batch)
        for name in tables:
            self._region(self._regions, name).spend += tables[name]
        for name in mutations:
            self._region(self._mutation_stats, name).spend += 1

        digest = self._digest_state(entries)
        if digest == self._state_digest:
            # The batch changed nothing (all rejected, or a no-op mix):
            # the trace is byte-identical, skip the symbolic re-execution.
            self._progress.batches_skipped += 1
            self._note_gains(tables, mutations, [])
            self._sample(start)
            return []
        self._state_digest = digest

        state = self._decode_state(entries)
        # Candidate keys repeat across the executor's per-profile executions;
        # marking covered as we collect dedupes them in one pass.
        new: List[str] = []
        for key in self._candidate_keys(state):
            if key not in self.covered:
                self.covered[key] = None
                new.append(key)
        if new:
            self.corpus.append(
                CorpusEntry(tuple(batch), tuple(new), write_index)
            )
            if len(self.corpus) > CORPUS_LIMIT:
                self.corpus.pop(0)
        self._progress.batches_scored += 1
        self._note_gains(tables, mutations, new)
        self._sample(start)
        return new

    def _sample(self, start: float) -> None:
        self._progress.score_seconds += time.perf_counter() - start
        self._progress.samples.append((self._updates_seen, len(self.covered)))

    def _note_gains(
        self,
        tables: Dict[str, int],
        mutations: Dict[str, int],
        new: Sequence[str],
    ) -> None:
        gained: Dict[str, int] = {}
        for key in new:
            table = self._key_table(key)
            if table is not None:
                gained[table] = gained.get(table, 0) + 1
        for name, count in gained.items():
            region = self._region(self._regions, name)
            region.gain += count
            region.since_gain = 0
            self._progress.table_gains[name] = (
                self._progress.table_gains.get(name, 0) + count
            )
        for name in tables:
            if name not in gained:
                self._region(self._regions, name).since_gain += 1
        for name in mutations:
            region = self._region(self._mutation_stats, name)
            if new:
                region.gain += len(new)
                region.since_gain = 0
            else:
                region.since_gain += 1

    # ------------------------------------------------------------------
    # Selection biasing (consumed by generator/mutations)
    # ------------------------------------------------------------------
    def table_weights(self, pool: Sequence[TableInfo]) -> List[float]:
        """Selection weights for the generator's table pick.

        Uncovered regions get an exploration bonus; regions that keep
        unlocking keys per unit spend stay hot; saturated ones decay."""
        weights = []
        for table in pool:
            region = self._regions.get(table.name, _Region())
            weight = (1.0 + region.gain) / (1.0 + region.spend)
            if f"table:{table.name}" not in self.covered:
                weight *= EXPLORE_BONUS
            weight *= max(REGION_DECAY**region.since_gain, REGION_FLOOR)
            weights.append(max(weight, 0.01))
        return weights

    def mutation_weights(self) -> Dict[str, float]:
        weights: Dict[str, float] = {}
        for name, region in self._mutation_stats.items():
            weight = (1.0 + region.gain) / (1.0 + region.spend)
            weight *= max(REGION_DECAY**region.since_gain, REGION_FLOOR)
            weights[name] = max(weight, 0.01)
        return weights

    def tag_update(self, update: Update, mutation: str) -> None:
        """Record which mutation produced an update (for gain attribution)."""
        self._tags[id(update)] = (update, mutation)

    def corpus_seed(self, rng) -> Optional[Update]:
        """Occasionally emit a *neighbour* of a coverage-increasing update.

        Verbatim replay of an installed insert only buys an ALREADY_EXISTS
        round-trip, so the greybox move is a one-bit flip in one match
        value: a fresh key in the same region of the same table, right
        where coverage last moved (and, for constrained tables, next to
        the boundary-distance bands the tracker scores).  Either way the
        oracle judges the result against its state tracking, so replay is
        always sound."""
        if not self.corpus or rng.random() >= CORPUS_SEED_PROBABILITY:
            return None
        entry = rng.choice(self.corpus)
        update = rng.choice(list(entry.updates))
        if update.type is not UpdateType.INSERT:
            return update
        return self._neighbour(rng, update)

    @staticmethod
    def _neighbour(rng, update: Update) -> Update:
        flippable = [i for i, m in enumerate(update.entry.matches) if m.value]
        if not flippable:
            return update
        index = rng.choice(flippable)
        match = update.entry.matches[index]
        data = bytearray(match.value)
        data[rng.randrange(len(data))] ^= 1 << rng.randrange(8)
        matches = list(update.entry.matches)
        matches[index] = replace(match, value=bytes(data))
        return replace(update, entry=replace(update.entry, matches=tuple(matches)))

    # ------------------------------------------------------------------
    # Result surface
    # ------------------------------------------------------------------
    def progress(self) -> CoverageProgress:
        self._progress.covered_keys = sorted(self.covered)
        self._progress.corpus_size = len(self.corpus)
        return self._progress

    # ------------------------------------------------------------------
    # Trace scoring (no solver calls)
    # ------------------------------------------------------------------
    def _candidate_keys(self, state: Dict[str, List[InstalledEntry]]) -> List[str]:
        keys: List[str] = [
            f"table:{table_name}"
            for table_name, installed in state.items()
            if installed
        ]
        executions = SymbolicExecutor(
            self.program, state, self.valid_ports
        ).execute()
        for execution in executions:
            probes = self._probes(execution)
            for trace_key, guard in execution.trace.items():
                if guard is T.FALSE:
                    continue
                kind = trace_key[0]
                if kind == "entry":
                    _kind, table, identity = trace_key
                    keys.append(entry_goal_name(table, identity))
                elif kind == "miss":
                    keys.append(f"miss:{trace_key[1]}")
                elif kind == "branch":
                    _kind, label, taken = trace_key
                    name = f"branch:{label}:{'t' if taken else 'f'}"
                    if name in self.covered:
                        continue
                    if self._witnessed(guard, probes):
                        keys.append(name)
        keys.extend(self._boundary_keys(state))
        return keys

    def _witnessed(self, guard: T.Term, probes: Sequence[Dict[str, int]]) -> bool:
        """Concrete probe evaluation via the compiled-term evaluator —
        branch guards are always structurally present, so coverage means a
        deterministic probe packet actually takes the direction."""
        if guard is T.TRUE:
            return True
        compiled = compile_term(guard)
        return any(compiled.evaluate(probe) for probe in probes)

    def _probes(self, execution) -> List[Dict[str, int]]:
        """Deterministic probe assignments over one profile's inputs:
        the realistic background packet (per valid port), all-zeros, and
        all-ones.  Fresh hash/selector variables evaluate as 0."""
        background: Dict[str, int] = {}
        ones: Dict[str, int] = {}
        port_var = None
        for path, term in execution.inputs.items():
            if term.is_const:
                continue
            width_mask = (1 << term.width) - 1
            background[term.name] = PacketGenerator._BACKGROUND.get(path, 0) & width_mask
            ones[term.name] = width_mask
            if path == "standard.ingress_port":
                port_var = term.name
        probes = []
        for port in self.valid_ports:
            probe = dict(background)
            if port_var is not None:
                probe[port_var] = port
            probes.append(probe)
        probes.append({})  # all-zeros (missing vars default to 0)
        probes.append(ones)
        return probes

    # ------------------------------------------------------------------
    # @entry_restriction boundary distance
    # ------------------------------------------------------------------
    def _boundary_keys(self, state: Dict[str, List[InstalledEntry]]) -> List[str]:
        """Distance-band regions: how close installed keys come to the
        planner's sampled constraint-boundary models, bucketed by bit
        count (bucket = distance.bit_length(); 0 = a model hit exactly)."""
        if self._constraint_models is None:
            return []
        keys: List[str] = []
        for table_id, models in self._constraint_models().items():
            table = self.p4info.tables.get(table_id)
            if table is None or not models:
                continue
            installed = state.get(table.name)
            if not installed:
                continue
            best: Optional[int] = None
            for entry in installed:
                for model in models:
                    distance = self._model_distance(table, entry, model)
                    if best is None or distance < best:
                        best = distance
            if best is not None:
                keys.append(f"boundary:{table.name}:{best.bit_length()}")
        return keys

    @staticmethod
    def _model_distance(
        table: TableInfo, entry: InstalledEntry, model: Dict[str, int]
    ) -> int:
        distance = 0
        for mf in table.match_fields:
            want = model.get(f"{table.name}.{mf.name}::value")
            if want is None:
                continue
            match = entry.match(mf.name)
            have = match.value if match is not None else 0
            distance += ((want ^ have) & ((1 << mf.bitwidth) - 1)).bit_count()
        return distance

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    @staticmethod
    def _region(store: Dict[str, _Region], name: str) -> _Region:
        region = store.get(name)
        if region is None:
            region = store[name] = _Region()
        return region

    def _key_table(self, key: str) -> Optional[str]:
        kind, _, rest = key.partition(":")
        if kind in ("table", "miss"):
            return rest
        if kind in ("entry", "boundary"):
            return rest.rsplit(":", 1)[0]
        return None  # branch keys are global

    def _batch_tables(self, batch: Sequence[Update]) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for update in batch:
            table = self.p4info.tables.get(update.entry.table_id)
            if table is not None:
                counts[table.name] = counts.get(table.name, 0) + 1
        return counts

    def _batch_mutations(self, batch: Sequence[Update]) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for update in batch:
            tagged = self._tags.pop(id(update), None)
            if tagged is not None:
                counts[tagged[1]] = counts.get(tagged[1], 0) + 1
        return counts

    def _digest_state(self, entries: Sequence[TableEntry]) -> str:
        h = hashlib.sha256()
        for rep in sorted(repr(e) for e in entries):
            h.update(rep.encode())
        return h.hexdigest()

    def _decode_state(
        self, entries: Sequence[TableEntry]
    ) -> Dict[str, List[InstalledEntry]]:
        state: Dict[str, List[InstalledEntry]] = {}
        for entry in entries:
            if entry in self._decoded:
                decoded = self._decoded[entry]
            else:
                try:
                    decoded = decode_table_entry(self.p4info, entry)
                except EntryDecodeError:
                    # The oracle accepted an entry the decoder can't place
                    # (e.g. under an injected catalogue fault); it simply
                    # doesn't contribute coverage.
                    decoded = None
                self._decoded[entry] = decoded
            if decoded is not None:
                state.setdefault(decoded.table_name, []).append(decoded)
        return state
