"""The p4-fuzzer campaign driver (Figure 5).

Generates a stream of valid updates, mutates a fraction into interestingly
invalid ones, packs everything into independent batches, sends the batches
to the switch, and feeds responses plus state read-backs to the oracle.
Statistics (update counts, throughput) back the Table 3 benchmark.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.fuzzer.batching import make_batches
from repro.fuzzer.feedback import CoverageProgress, CoverageTracker
from repro.fuzzer.generator import RequestGenerator
from repro.fuzzer.mutations import MUST_REJECT, apply_random_mutation
from repro.fuzzer.oracle import Oracle
from repro.fuzzer.pipeline import BatchOutcome, PipelineStats, WriteScheduler
from repro.p4.p4info import P4Info
from repro.p4rt.channel import ChannelError
from repro.p4rt.messages import ReadRequest, Update, WriteRequest
from repro.p4rt.service import P4RuntimeService
from repro.switchv.report import Incident, IncidentKind, IncidentLog


@dataclass
class FuzzerConfig:
    """Knobs for one campaign; defaults follow §6.3 (1000 writes × ~50)."""

    num_writes: int = 1000
    updates_per_write: int = 50
    mutation_probability: float = 0.3
    seed: int = 0xF0222
    valid_ports: Sequence[int] = (1, 2, 3, 4, 5, 6, 7, 8)
    # None = full catalogue; [] = no mutations (pure valid fuzzing);
    # a list = restrict to those mutations (ablation experiments).
    mutations: Optional[List[str]] = None
    constraint_aware: bool = False
    # Read the switch state back after every batch (the oracle's design);
    # lowering frequency trades confidence for speed.
    read_back_every: int = 1
    # §4.2-sound pipelining (repro.fuzzer.pipeline): keep up to this many
    # mutually independent batches in flight per window.  1 = the
    # sequential loop; >1 overlaps transport waits and coalesces
    # read-backs to one per window.
    pipeline_depth: int = 1
    # Overlap next-wave generation with the wave's last in-flight window.
    # None = automatic (on at depth > 1).  Generation then sees the oracle
    # state one window behind — sound (the window's batches are
    # independent of anything generated against the pre-window state would
    # conflict-check against), but the update stream differs from the
    # sequential loop's; disable for strict stream-equivalence runs.
    overlap_generation: Optional[bool] = None
    # Testing knob: route depth<=1 campaigns through the windowed
    # scheduler anyway, to assert the depth-1 pipeline reproduces the
    # sequential loop byte for byte.
    force_pipeline: bool = False
    # Accept a harness-provided SolverPool for the constraint-aware key
    # planner (warm per-table solvers across campaigns).  False forces
    # cold private solvers; generated request streams are identical either
    # way (model blocking rides on check() assumptions, and cached
    # constraint models are sampled deterministically from the seed).
    reuse_solvers: bool = True
    # Greybox coverage feedback (repro.fuzzer.feedback): score every judged
    # batch against the model's symbolic trace and bias table/mutation
    # selection toward uncovered regions.  Needs the P4 model —
    # P4Fuzzer(..., model=program); the harness and campaigns pass it.
    coverage_guided: bool = False
    # Track coverage without biasing selection (the blind arm of benchmark
    # comparisons).  None follows coverage_guided.
    track_coverage: Optional[bool] = None


@dataclass
class TransportSummary:
    """Transport health counters for one campaign, reported separately
    from model incidents (a flaky cable is not a switch bug)."""

    retries: int = 0
    ambiguous_batches: int = 0
    resyncs: int = 0
    flakes: int = 0  # RPCs abandoned after exhausting retries
    reconnects: int = 0
    deadline_exceeded: int = 0
    idempotent_rescues: int = 0

    @property
    def any_activity(self) -> bool:
        return any(
            (
                self.retries,
                self.ambiguous_batches,
                self.resyncs,
                self.flakes,
                self.reconnects,
                self.deadline_exceeded,
                self.idempotent_rescues,
            )
        )


@dataclass
class FuzzResult:
    """Campaign outcome and statistics."""

    incidents: IncidentLog = field(default_factory=IncidentLog)
    updates_sent: int = 0
    valid_updates: int = 0
    invalid_updates: int = 0
    writes_sent: int = 0
    elapsed_seconds: float = 0.0
    mutation_counts: Dict[str, int] = field(default_factory=dict)
    # Transport-layer health (retries, resyncs, flakes) — kept apart from
    # the oracle's model incidents.
    transport: TransportSummary = field(default_factory=TransportSummary)
    # The entries the oracle believes installed when the campaign ended,
    # and the subset that was MODIFY-ed at least once.  Feeding these to
    # p4-symbolic (the §7 extension) exercises control paths only reachable
    # through update churn.
    final_entries: List = field(default_factory=list)
    modified_entries: List = field(default_factory=list)
    # Modeled transport wait the campaign experienced (injected delays,
    # retry backoff) under its actual schedule: per-RPC sums for the
    # sequential loop, per-window makespans for the pipelined one.
    transport_wait_seconds: float = 0.0
    # Windowed-scheduler counters when the pipelined loop ran.
    pipeline: Optional[PipelineStats] = None
    # Coverage-feedback series when the campaign tracked coverage
    # (coverage_guided or track_coverage).
    coverage: Optional[CoverageProgress] = None

    @property
    def updates_per_second(self) -> float:
        if self.elapsed_seconds == 0:
            return 0.0
        return self.updates_sent / self.elapsed_seconds

    @property
    def modeled_seconds(self) -> float:
        """Wall-clock CPU time plus the modeled transport wait — what the
        campaign would have taken against a real switch at these
        latencies."""
        return self.elapsed_seconds + self.transport_wait_seconds

    @property
    def modeled_updates_per_second(self) -> float:
        if self.modeled_seconds == 0:
            return 0.0
        return self.updates_sent / self.modeled_seconds


class P4Fuzzer:
    """Drives one control-plane validation campaign against a switch."""

    def __init__(
        self,
        p4info: P4Info,
        switch: P4RuntimeService,
        config: Optional[FuzzerConfig] = None,
        solver_pool=None,
        model=None,
    ) -> None:
        self.p4info = p4info
        self.switch = switch
        self.config = config or FuzzerConfig()
        self.rng = random.Random(self.config.seed)
        # The harness hands its SolverPool down so the generator's
        # per-table constraint solvers stay warm across campaigns;
        # config.reuse_solvers=False opts a campaign out (cold solvers).
        self.solver_pool = solver_pool if self.config.reuse_solvers else None
        self.generator = RequestGenerator(
            p4info,
            self.rng,
            valid_ports=self.config.valid_ports,
            constraint_aware=self.config.constraint_aware,
            solver_pool=self.solver_pool,
        )
        self.oracle = Oracle(p4info)
        # Greybox feedback: the tracker needs the P4 model (P4Info alone
        # can't drive the symbolic executor).  Guided mode additionally
        # biases the generator's table pick and the mutation try-order.
        track = self.config.track_coverage
        if track is None:
            track = self.config.coverage_guided
        self.feedback: Optional[CoverageTracker] = None
        if track:
            if model is None:
                raise ValueError(
                    "coverage tracking needs the P4 model: "
                    "P4Fuzzer(..., model=program)"
                )
            self.feedback = CoverageTracker(
                model,
                p4info,
                valid_ports=self.config.valid_ports,
                constraint_models=self.generator.constraint_models,
            )
            if self.config.coverage_guided:
                self.generator.table_bias = self.feedback.table_weights
        self._modified_keys = set()
        # True when the oracle's expected state is stale: an ambiguous
        # write was abandoned and the recovery read-back also failed, so
        # the projection may or may not include the abandoned batch.
        # Judging anything against a stale projection is unsound; the
        # next batch adopts a fresh read-back before judging resumes.
        self._needs_resync = False

    # ------------------------------------------------------------------
    # Campaign
    # ------------------------------------------------------------------
    def run(self) -> FuzzResult:
        result = FuzzResult()
        start = time.perf_counter()

        # A malformed @entry_restriction means the oracle cannot check
        # constraints on that table; surface it rather than silently
        # weakening the campaign (it is a model bug in its own right).
        result.incidents.extend(self.oracle.constraint_incidents())

        status = self.switch.set_forwarding_pipeline_config(self.p4info)
        if not status.ok:
            result.incidents.report(
                Incident(
                    kind=IncidentKind.PIPELINE_CONFIG,
                    summary=f"pipeline config push rejected: {status.code.name}",
                    expected="OK",
                    observed=status.message,
                    source="p4-fuzzer",
                )
            )
            result.elapsed_seconds = time.perf_counter() - start
            return result

        if self.config.pipeline_depth > 1 or self.config.force_pipeline:
            self._run_pipelined(result)
        else:
            for write_index in range(self.config.num_writes):
                updates = self._generate_wave(result)
                if not updates:
                    continue
                batches = make_batches(self.p4info, updates, self.config.updates_per_write)
                for batch in batches:
                    self._send_batch(batch, write_index, result)
                result.writes_sent += len(batches)
        result.elapsed_seconds = time.perf_counter() - start
        if self.feedback is not None:
            result.coverage = self.feedback.progress()
        result.final_entries = self.oracle.installed_entries()
        result.modified_entries = [
            entry
            for entry in result.final_entries
            if entry.match_key() in self._modified_keys
        ]
        self._harvest_transport_stats(result)
        return result

    def _harvest_transport_stats(self, result: FuzzResult) -> None:
        """Fold the retry client's counters (when the switch handle is a
        RetryingP4RuntimeClient) into the campaign's transport summary."""
        stats = getattr(self.switch, "retry_stats", None)
        if stats is None:
            return
        result.transport.retries = stats.retries
        result.transport.reconnects = stats.reconnects
        result.transport.deadline_exceeded = stats.deadline_exceeded
        result.transport.idempotent_rescues = stats.idempotent_rescues

    def _generate_wave(self, result: FuzzResult) -> List[Update]:
        guided = self.feedback is not None and self.config.coverage_guided
        updates: List[Update] = []
        for _ in range(self.config.updates_per_write):
            update = None
            if guided:
                # Greybox corpus replay: occasionally re-emit an update
                # from a coverage-increasing batch (then mutate as usual).
                update = self.feedback.corpus_seed(self.rng)
            if update is None:
                update = self.generator.generate_update()
            if update is None:
                continue
            mutate = (
                self.config.mutations != []
                and self.rng.random() < self.config.mutation_probability
            )
            if mutate:
                mutated = apply_random_mutation(
                    self.rng,
                    self.p4info,
                    update,
                    allowed=self.config.mutations,
                    state=self.generator.state,
                    weights=self.feedback.mutation_weights() if guided else None,
                )
                if mutated is not None:
                    if self.feedback is not None:
                        self.feedback.tag_update(mutated.update, mutated.mutation)
                    result.mutation_counts[mutated.mutation] = (
                        result.mutation_counts.get(mutated.mutation, 0) + 1
                    )
                    if mutated.expectation == MUST_REJECT:
                        result.invalid_updates += 1
                    else:
                        result.valid_updates += 1
                    updates.append(mutated.update)
                    continue
            result.valid_updates += 1
            updates.append(update)
        return updates

    def _send_batch(self, batch: List[Update], write_index: int, result: FuzzResult) -> None:
        request = WriteRequest(updates=tuple(batch))
        try:
            response = self.switch.write(request)
        except ChannelError as exc:
            # The transport gave up (retries exhausted): a flake, not a
            # model incident.  The batch's outcome is unknown, so resync
            # the oracle from a read-back instead of projecting.
            result.transport_wait_seconds += self._last_write_wait()
            result.transport.flakes += 1
            result.incidents.report(
                Incident(
                    kind=IncidentKind.TRANSPORT_FLAKE,
                    summary=f"write abandoned by the transport: {type(exc).__name__}",
                    observed=str(exc),
                    source="p4-fuzzer",
                )
            )
            if not self._resync_oracle(result):
                # The abandoned write may have been applied and even the
                # recovery read-back failed: the oracle's view is stale
                # until a read-back lands.
                self._needs_resync = True
            return
        except Exception as exc:  # a crash is itself a finding
            result.incidents.report(
                Incident(
                    kind=IncidentKind.SWITCH_UNRESPONSIVE,
                    summary=f"switch raised {type(exc).__name__} during write",
                    observed=str(exc),
                    source="p4-fuzzer",
                )
            )
            return
        result.transport_wait_seconds += self._last_write_wait()
        result.updates_sent += len(batch)

        for update, status in zip(batch, response.statuses, strict=False):
            if status.ok and update.type.value == "MODIFY":
                self._modified_keys.add(update.entry.match_key())

        # An ambiguous outcome (some attempt of this write may or may not
        # have been applied before the one that answered) makes per-update
        # status judging unsound: a re-applied INSERT legitimately answers
        # ALREADY_EXISTS, a re-applied DELETE answers NOT_FOUND.  A stale
        # oracle (an earlier recovery read-back failed) is unsound the same
        # way: the expected state the statuses would be judged against may
        # not include an abandoned-but-applied batch.  Per the oracle's
        # §4.3 design, read the state back and adopt it instead of
        # reporting phantom incidents.
        info = getattr(self.switch, "last_write_info", None)
        if self._needs_resync or (info is not None and info.ambiguous):
            result.transport.ambiguous_batches += 1
            if self._resync_oracle(result):
                result.transport.resyncs += 1
                self._needs_resync = False
            else:
                self._needs_resync = True
            self.generator.state.replace_all(self.oracle.installed_entries())
            return

        # Without a fresh read-back (None), the oracle judges statuses only
        # and projects its expected state forward.
        read_back = None
        if self.config.read_back_every and write_index % self.config.read_back_every == 0:
            try:
                read_back = list(self.switch.read(ReadRequest(table_id=0)).entries)
                result.transport_wait_seconds += self._last_read_wait()
            except ChannelError as exc:
                result.transport_wait_seconds += self._last_read_wait()
                # A failed read-back downgrades this batch to status-only
                # judging (read_back stays None): the write's statuses are
                # real and the oracle must still project the batch forward,
                # or its expected state silently drifts and the *next*
                # read-back reports phantom incidents.
                result.transport.flakes += 1
                result.incidents.report(
                    Incident(
                        kind=IncidentKind.TRANSPORT_FLAKE,
                        summary=f"read abandoned by the transport: {type(exc).__name__}",
                        observed=str(exc),
                        source="p4-fuzzer",
                    )
                )
            except Exception as exc:
                result.incidents.report(
                    Incident(
                        kind=IncidentKind.SWITCH_UNRESPONSIVE,
                        summary=f"switch raised {type(exc).__name__} during read",
                        observed=str(exc),
                        source="p4-fuzzer",
                    )
                )

        log = self.oracle.judge_batch(batch, response, read_back)
        result.incidents.extend(log)
        # Keep the generator's view in sync with the oracle's adopted state.
        self.generator.state.replace_all(self.oracle.installed_entries())
        self._observe_coverage(batch, write_index)

    def _observe_coverage(self, batch: List[Update], write_index: int) -> None:
        """Score one judged batch against the model's coverage map."""
        if self.feedback is not None:
            self.feedback.observe_batch(
                batch, self.oracle.installed_entries(), write_index
            )

    def _resync_oracle(self, result: FuzzResult) -> bool:
        """Read the switch state back and adopt it (§4.3).  Returns False
        when even the read-back failed; the next successful read-back will
        repair the oracle's view."""
        try:
            read_back = list(self.switch.read(ReadRequest(table_id=0)).entries)
            result.transport_wait_seconds += self._last_read_wait()
        except ChannelError as exc:
            result.transport_wait_seconds += self._last_read_wait()
            result.transport.flakes += 1
            result.incidents.report(
                Incident(
                    kind=IncidentKind.TRANSPORT_FLAKE,
                    summary=f"resync read abandoned by the transport: {type(exc).__name__}",
                    observed=str(exc),
                    source="p4-fuzzer",
                )
            )
            return False
        except Exception as exc:
            result.incidents.report(
                Incident(
                    kind=IncidentKind.SWITCH_UNRESPONSIVE,
                    summary=f"switch raised {type(exc).__name__} during resync read",
                    observed=str(exc),
                    source="p4-fuzzer",
                )
            )
            return False
        self.oracle.resync(read_back)
        self.generator.state.replace_all(self.oracle.installed_entries())
        return True

    # ------------------------------------------------------------------
    # Transport-wait transparency
    # ------------------------------------------------------------------
    def _last_write_wait(self) -> float:
        """Modeled wait of the calling thread's last write RPC."""
        info = getattr(self.switch, "last_write_info", None)
        if info is not None:
            return getattr(info, "wait_s", 0.0)
        return getattr(self.switch, "last_rpc_wait_s", 0.0)

    def _last_read_wait(self) -> float:
        """Modeled wait of the calling thread's last read RPC."""
        wait = getattr(self.switch, "last_read_wait_s", None)
        if wait is not None:
            return wait
        return getattr(self.switch, "last_rpc_wait_s", 0.0)

    # ------------------------------------------------------------------
    # Pipelined campaign (§4.2-sound windowed scheduling)
    # ------------------------------------------------------------------
    def _run_pipelined(self, result: FuzzResult) -> None:
        """The windowed campaign loop.

        Judging-order invariant: outcomes are judged strictly in
        submission order, and a window of size one performs exactly the
        sequential loop's operations in exactly its order — write,
        conditional read, judge, adopt.  Conflicting batches are never in
        the same window, so at any window size the responses and
        read-backs a window can observe are independent of in-flight
        interleaving; pipelining changes *when* the oracle judges, never
        *what* it concludes.
        """
        depth = max(1, self.config.pipeline_depth)
        overlap = self.config.overlap_generation
        if overlap is None:
            overlap = depth > 1
        # Deterministic roll streams matter on simulated transports; only
        # a real-time stack (injected sleeper) trades them for wall-clock
        # overlap.
        strict = not getattr(self.switch, "real_time", False)
        scheduler = WriteScheduler(
            self.switch, self.p4info, depth, strict_order=strict
        )
        result.pipeline = scheduler.stats
        # The batch stream, tagged with its wave index (the read gate's
        # clock).  Windows draw from the front across wave boundaries —
        # a wave is typically a single batch (wave size == max batch
        # size), so cross-wave windows are where the depth comes from.
        queue: List[tuple] = []
        next_wave = 0
        def refill() -> None:
            # Generate waves until `depth` batches are queued.  Waves
            # generated in one burst all see the state as of the last
            # judged window — up to `depth` batches stale.  That changes
            # which updates get generated (e.g. a delete raced by a
            # queued delete), never how they are judged: the oracle
            # judges against its true expected state at application time,
            # so staleness cannot manufacture incidents.
            nonlocal next_wave
            while next_wave < self.config.num_writes and len(queue) < depth:
                next_wave += 1
                updates = self._generate_wave(result)
                if not updates:
                    continue
                batches = make_batches(
                    self.p4info, updates, self.config.updates_per_write
                )
                result.writes_sent += len(batches)
                wave_index = next_wave - 1
                queue.extend((wave_index, batch) for batch in batches)

        try:
            while True:
                refill()
                if not queue:
                    break
                # Fill the window from the queue with out-of-order pickup:
                # a batch joins the window when it is independent of
                # everything already in flight AND of every earlier queued
                # batch it would overtake (conflicting batches are never
                # reordered relative to each other, so dependent writes
                # still observe their predecessors' effects).  Skipped
                # batches keep their queue position for a later window.
                window = [queue.pop(0)]
                in_flight = [batch for _, batch in window]
                skipped: List[List[Update]] = []
                index = 0
                while len(window) < depth and index < len(queue):
                    candidate = queue[index][1]
                    if scheduler.conflicts(
                        in_flight, candidate
                    ) or scheduler.conflicts(skipped, candidate):
                        scheduler.stats.conflict_stalls += 1
                        skipped.append(candidate)
                        index += 1
                        continue
                    window.append(queue.pop(index))
                    in_flight.append(candidate)
                hook = refill if overlap else None
                outcomes = scheduler.send_window(in_flight, while_in_flight=hook)
                self._judge_window(
                    outcomes, max(wave for wave, _ in window), result, scheduler
                )
        finally:
            scheduler.close()
        result.transport_wait_seconds = scheduler.stats.pipelined_wait_s

    def _judge_window(
        self,
        outcomes: List[BatchOutcome],
        write_index: int,
        result: FuzzResult,
        scheduler: WriteScheduler,
    ) -> None:
        """Drain one window's outcomes in submission order.

        Mirrors _send_batch decision for decision; at window size one the
        incident stream, counters, and oracle operations are identical to
        the sequential loop's.
        """
        pending: List[BatchOutcome] = []
        reached = 0  # batches whose write answered (sequential would read back each)
        resync_flake = False  # a write flaked: adopt a read-back, uncounted
        resync_counted = False  # ambiguous/stale: adopt and count a resync
        mismatch = False  # response cardinality mismatch in the window
        for outcome in outcomes:
            error = outcome.error
            if error is not None:
                if isinstance(error, ChannelError):
                    result.transport.flakes += 1
                    result.incidents.report(
                        Incident(
                            kind=IncidentKind.TRANSPORT_FLAKE,
                            summary=f"write abandoned by the transport: {type(error).__name__}",
                            observed=str(error),
                            source="p4-fuzzer",
                        )
                    )
                    resync_flake = True
                else:
                    result.incidents.report(
                        Incident(
                            kind=IncidentKind.SWITCH_UNRESPONSIVE,
                            summary=f"switch raised {type(error).__name__} during write",
                            observed=str(error),
                            source="p4-fuzzer",
                        )
                    )
                continue
            batch, response = outcome.batch, outcome.response
            result.updates_sent += len(batch)
            reached += 1
            for update, status in zip(batch, response.statuses, strict=False):
                if status.ok and update.type.value == "MODIFY":
                    self._modified_keys.add(update.entry.match_key())
            info = outcome.info
            if self._needs_resync or (info is not None and info.ambiguous):
                result.transport.ambiguous_batches += 1
                resync_counted = True
                continue
            if len(response.statuses) != len(batch):
                mismatch = True
            pending.append(outcome)

        need_resync = resync_flake or resync_counted
        gate = (
            bool(self.config.read_back_every)
            and write_index % self.config.read_back_every == 0
        )
        read_back = None
        if need_resync or (gate and reached):
            read_back = self._window_read(
                result, scheduler, reached, resync=need_resync
            )

        # Judge in submission order.  The coalesced read-back stands in
        # for the per-batch read the sequential loop would have taken
        # after the *last* batch; earlier batches are judged status-only
        # (their entries are untouched by their independent siblings, so
        # the final read still checks them).  When the window needs an
        # adoption instead — a flaked or ambiguous sibling, or a
        # cardinality mismatch — every batch is judged status-only and
        # the read-back is adopted afterwards, exactly the sequential
        # recovery.
        attach_rb = read_back is not None and not need_resync and not mismatch
        for position, outcome in enumerate(pending):
            rb = read_back if attach_rb and position == len(pending) - 1 else None
            log = self.oracle.judge_batch(outcome.batch, outcome.response, rb)
            result.incidents.extend(log)
            # Coverage accounting rides the deferred in-order judging
            # stage — never the in-flight path — so the tracker sees the
            # oracle's post-judging states in submission order, exactly as
            # the sequential loop's per-batch observation would.
            self._observe_coverage(outcome.batch, write_index)
        if read_back is not None and (need_resync or mismatch):
            self.oracle.resync(read_back)
            if resync_counted:
                result.transport.resyncs += 1
                self._needs_resync = False
        elif need_resync and read_back is None:
            self._needs_resync = True
        self.generator.state.replace_all(self.oracle.installed_entries())

    def _window_read(
        self,
        result: FuzzResult,
        scheduler: WriteScheduler,
        reached: int,
        resync: bool,
    ) -> Optional[List]:
        """One coalesced state read for the window; None when it failed."""
        try:
            entries = list(self.switch.read(ReadRequest(table_id=0)).entries)
        except ChannelError as exc:
            scheduler.note_read(self._last_read_wait(), reached)
            result.transport.flakes += 1
            context = "resync read" if resync else "read"
            result.incidents.report(
                Incident(
                    kind=IncidentKind.TRANSPORT_FLAKE,
                    summary=f"{context} abandoned by the transport: {type(exc).__name__}",
                    observed=str(exc),
                    source="p4-fuzzer",
                )
            )
            return None
        except Exception as exc:
            context = "resync read" if resync else "read"
            result.incidents.report(
                Incident(
                    kind=IncidentKind.SWITCH_UNRESPONSIVE,
                    summary=f"switch raised {type(exc).__name__} during {context}",
                    observed=str(exc),
                    source="p4-fuzzer",
                )
            )
            return None
        scheduler.note_read(self._last_read_wait(), reached)
        return entries
