"""Windowed write pipelining for the fuzzing loop (§4.2-sound).

The sequential campaign loop sends one batch, reads the state back,
judges, and only then sends the next batch — paying the transport's full
round-trip latency (injected delays, retries, backoff) once per batch.
The batching discipline already guarantees more than that loop exploits:
batches built by :func:`repro.fuzzer.batching.make_batches` are
order-independent *internally*, and any two batches with no ``@refers_to``
dependency edges (and no shared entry identity) between them commute, so
they may be in flight concurrently without changing what any response or
read-back can say.

:class:`WriteScheduler` turns that guarantee into throughput:

* **Windows.**  Consecutive batches are grouped into windows of up to
  ``depth`` batches.  A batch that conflicts with any batch already in the
  window (same ``_conflicts`` predicate the batcher uses) closes the
  window early — dependent writes are never concurrently in flight.
* **In-flight writes.**  Every batch of a window is submitted to a small
  thread pool; the caller can overlap next-wave generation with the
  drain.  Under the default *strict order* mode a turnstile admits the
  writes into the transport one at a time in submission order, so the
  fault channel's seeded roll stream stays a pure function of the RPC
  order — pipelined campaigns are exactly as reproducible as sequential
  ones.  (Real overlap still happens in wall-clock mode: channels sleep
  their injected latency *outside* their roll lock.)
* **Coalesced read-backs.**  One state read serves the whole window where
  the sequential loop reads after every batch; the saved reads are the
  dominant win on a slow transport *and* on CPU (read-back judging is
  O(state)).
* **Makespan accounting.**  Each batch reports its modeled transport wait
  (channel delays + retry backoff).  A window's pipelined cost is the
  *maximum* over its in-flight writes — what a truly concurrent transport
  would charge — while the serial cost is their sum; both are recorded in
  :class:`PipelineStats` so throughput tables can show the overlap win
  deterministically, without sleeping.

The judging-order invariant lives in the fuzzer's window-drain code
(:meth:`repro.fuzzer.fuzzer.P4Fuzzer._judge_window`): outcomes are judged
in submission order, read-backs are adopted exactly where the sequential
loop would adopt them, and a window of size one reproduces the sequential
loop's operation order byte for byte.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.fuzzer.batching import _conflicts
from repro.p4.constraints.refs import ReferenceGraph
from repro.p4.p4info import P4Info
from repro.p4rt.messages import Update, WriteRequest, WriteResponse


@dataclass
class PipelineStats:
    """What the windowed scheduler did, and what the overlap was worth."""

    depth: int = 1
    windows: int = 0
    batches: int = 0
    # Largest number of batches concurrently in flight.
    max_in_flight: int = 0
    # Windows closed before reaching `depth` because the next batch
    # conflicted (shared entry identity or @refers_to edge) with one
    # already in flight.
    conflict_stalls: int = 0
    # State reads actually performed, and how many per-batch reads the
    # window coalescing saved relative to the sequential discipline.
    read_backs: int = 0
    read_backs_coalesced: int = 0
    # Transport waits: serial = sum of per-RPC waits (what the sequential
    # loop would have paid), pipelined = per-window max over in-flight
    # writes plus the coalesced read (what the overlapped schedule pays).
    serial_wait_s: float = 0.0
    pipelined_wait_s: float = 0.0
    # Wall-clock generation time spent while a window was in flight.
    overlapped_generation_s: float = 0.0

    @property
    def overlap_saved_s(self) -> float:
        """Transport wait eliminated by keeping the window in flight."""
        return max(0.0, self.serial_wait_s - self.pipelined_wait_s)


@dataclass
class BatchOutcome:
    """One batch's transport outcome, captured on the sending thread."""

    batch: List[Update]
    response: Optional[WriteResponse] = None
    error: Optional[Exception] = None
    # The retry client's per-write transparency (None for bare services).
    info: Optional[object] = None
    # Modeled transport wait this write experienced (delays + backoff).
    wait_s: float = 0.0


class _Turnstile:
    """Admits ticketed callers strictly in ticket order."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._next = 0

    def wait_for(self, ticket: int) -> None:
        with self._cond:
            while self._next != ticket:
                self._cond.wait()

    def advance(self) -> None:
        with self._cond:
            self._next += 1
            self._cond.notify_all()


class WriteScheduler:
    """Keeps up to ``depth`` independent batches in flight over a switch.

    ``strict_order=True`` (the default for simulated transports) serializes
    the actual transport calls in submission order through a turnstile:
    the fault channel consumes its seeded rolls in exactly the order the
    sequential loop would, so verdicts are reproducible run to run and
    comparable across depths.  Pass ``strict_order=False`` only for
    real-time transports (injected sleepers), where wall-clock overlap
    matters more than roll-stream stability — wrap bare stacks in
    :class:`repro.p4rt.service.SerializedP4RuntimeService` first.
    """

    def __init__(
        self,
        switch,
        p4info: P4Info,
        depth: int = 1,
        strict_order: bool = True,
    ) -> None:
        self.switch = switch
        self.depth = max(1, depth)
        self.stats = PipelineStats(depth=self.depth)
        self._refs = ReferenceGraph(p4info)
        self._strict = strict_order
        self._turnstile = _Turnstile()
        self._next_ticket = 0
        self._pool = ThreadPoolExecutor(
            max_workers=self.depth, thread_name_prefix="p4rt-pipeline"
        )

    # ------------------------------------------------------------------
    # Window planning
    # ------------------------------------------------------------------
    def conflicts(self, window: Sequence[List[Update]], batch: List[Update]) -> bool:
        """May `batch` fly concurrently with the batches in `window`?

        True when any in-flight update shares entry identity or a
        ``@refers_to`` edge with any update of the candidate batch — the
        same predicate make_batches uses within a batch.
        """
        return any(
            _conflicts(self._refs, a, b)
            for other in window
            for a in other
            for b in batch
        )

    def plan_windows(self, batches: Sequence[List[Update]]) -> List[List[List[Update]]]:
        """Split a wave's batches into in-flight windows.

        Batches keep their order; a window closes when it is full or when
        the next batch conflicts with one already in it (make_batches
        placed the dependent batch later precisely so it executes after —
        the window boundary preserves that ordering on the wire).
        """
        windows: List[List[List[Update]]] = []
        current: List[List[Update]] = []
        for batch in batches:
            if current:
                full = len(current) >= self.depth
                conflict = not full and self.conflicts(current, batch)
                if full or conflict:
                    if conflict:
                        self.stats.conflict_stalls += 1
                    windows.append(current)
                    current = []
            current.append(batch)
        if current:
            windows.append(current)
        return windows

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def _send_one(self, batch: List[Update], ticket: int) -> BatchOutcome:
        if self._strict:
            self._turnstile.wait_for(ticket)
        try:
            outcome = BatchOutcome(batch=batch)
            try:
                outcome.response = self.switch.write(
                    WriteRequest(updates=tuple(batch))
                )
            except Exception as exc:  # judged by the fuzzer, never dropped
                outcome.error = exc
            # Capture this thread's per-write transparency immediately: the
            # retry client keeps it thread-local, so a sibling in-flight
            # write can never clobber it.
            info = getattr(self.switch, "last_write_info", None)
            outcome.info = info
            if info is not None and (
                outcome.error is None or _is_channel_error(outcome.error)
            ):
                outcome.wait_s = getattr(info, "wait_s", 0.0)
            elif outcome.error is None or _is_channel_error(outcome.error):
                outcome.wait_s = getattr(self.switch, "last_rpc_wait_s", 0.0)
            return outcome
        finally:
            if self._strict:
                self._turnstile.advance()

    def send_window(
        self,
        window: Sequence[List[Update]],
        while_in_flight: Optional[Callable[[], None]] = None,
    ) -> List[BatchOutcome]:
        """Dispatch a window and drain it in submission order.

        ``while_in_flight`` runs on the calling thread after dispatch and
        before the drain — the hook the fuzzer uses to overlap next-wave
        generation with the in-flight writes.
        """
        futures = []
        for batch in window:
            ticket = self._next_ticket
            self._next_ticket += 1
            futures.append(self._pool.submit(self._send_one, batch, ticket))
        if while_in_flight is not None:
            overlap_start = time.perf_counter()
            while_in_flight()
            self.stats.overlapped_generation_s += time.perf_counter() - overlap_start
        outcomes = [future.result() for future in futures]
        self.stats.windows += 1
        self.stats.batches += len(outcomes)
        self.stats.max_in_flight = max(self.stats.max_in_flight, len(outcomes))
        waits = [outcome.wait_s for outcome in outcomes]
        self.stats.serial_wait_s += sum(waits)
        self.stats.pipelined_wait_s += max(waits, default=0.0)
        return outcomes

    def note_read(self, wait_s: float, coalesced_over: int) -> None:
        """Account one window read-back (reads are not overlapped)."""
        self.stats.read_backs += 1
        self.stats.read_backs_coalesced += max(0, coalesced_over - 1)
        self.stats.serial_wait_s += wait_s
        self.stats.pipelined_wait_s += wait_s

    def close(self) -> None:
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "WriteScheduler":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def _is_channel_error(exc: Exception) -> bool:
    from repro.p4rt.channel import ChannelError

    return isinstance(exc, ChannelError)
