"""The mutation catalogue (§4.2).

Naïve random requests are syntactically invalid with high probability and
only exercise the switch's first few checks.  Instead, each mutation takes
a *valid* update and breaks exactly one property, producing an
"interestingly invalid" request that reaches deep into the control stack.
The catalogue follows the paper's list: Invalid ID, Invalid Table Action,
Invalid Match Type, Duplicate Match Field, Missing Mandatory Match Field,
Invalid Action Selector Weight, Invalid Table Implementation, Invalid
Reference, invalid resources (ports), duplicates and non-existent deletes —
plus encoding mutations (non-canonical / overflowing values) that probe the
byte-handling layer.

Each mutation returns a new :class:`MutatedUpdate` carrying the expectation
the oracle should enforce, or ``None`` when inapplicable to the given seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional

from repro.p4.ast import MatchKind
from repro.p4.constraints.refs import ReferenceGraph
from repro.p4.p4info import P4Info
from repro.p4rt import codec
from repro.p4rt.messages import (
    ActionInvocation,
    ActionProfileAction,
    ActionProfileActionSet,
    TableEntry,
    Update,
    UpdateType,
)

# Expectations the oracle enforces for a mutated update.
MUST_REJECT = "must_reject"  # invalid: switch must reject
VALID = "valid"  # still valid: normal oracle rules apply


@dataclass(frozen=True)
class MutatedUpdate:
    update: Update
    mutation: str
    expectation: str


Mutator = Callable[[random.Random, P4Info, Update], Optional[MutatedUpdate]]
# Stateful mutators additionally see the generator's installed-state view
# (an object with an ``entries`` dict keyed by match_key — duck-typed to
# GeneratorState), or None when the caller has no state to offer.
StatefulMutator = Callable[
    [random.Random, P4Info, Update, Optional[object]], Optional[MutatedUpdate]
]

_MUTATORS: Dict[str, Mutator] = {}
_STATEFUL_MUTATORS: Dict[str, StatefulMutator] = {}


def _mutation(name: str):
    def register(fn: Mutator) -> Mutator:
        _MUTATORS[name] = fn
        return fn

    return register


def _stateful_mutation(name: str):
    def register(fn: StatefulMutator) -> StatefulMutator:
        _STATEFUL_MUTATORS[name] = fn
        return fn

    return register


def _fresh_id(rng: random.Random, taken) -> int:
    while True:
        candidate = rng.randint(1, 0x00FFFFFF) | (rng.randint(1, 0x7F) << 24)
        if candidate not in taken:
            return candidate


def _single_invocation(entry: TableEntry) -> Optional[ActionInvocation]:
    if isinstance(entry.action, ActionInvocation):
        return entry.action
    return None


# ----------------------------------------------------------------------
# ID and structure mutations
# ----------------------------------------------------------------------


@_mutation("invalid_table_id")
def invalid_table_id(rng, p4info, update):
    entry = replace(update.entry, table_id=_fresh_id(rng, set(p4info.tables)))
    return MutatedUpdate(Update(update.type, entry), "invalid_table_id", MUST_REJECT)


@_mutation("invalid_match_field_id")
def invalid_match_field_id(rng, p4info, update):
    if not update.entry.matches:
        return None
    table = p4info.tables.get(update.entry.table_id)
    if table is None:
        return None
    taken = {mf.id for mf in table.match_fields}
    index = rng.randrange(len(update.entry.matches))
    matches = list(update.entry.matches)
    matches[index] = replace(matches[index], field_id=max(taken) + rng.randint(1, 5))
    entry = replace(update.entry, matches=tuple(matches))
    return MutatedUpdate(Update(update.type, entry), "invalid_match_field_id", MUST_REJECT)


@_mutation("invalid_action_id")
def invalid_action_id(rng, p4info, update):
    inv = _single_invocation(update.entry)
    if inv is None:
        return None
    entry = replace(
        update.entry, action=replace(inv, action_id=_fresh_id(rng, set(p4info.actions)))
    )
    return MutatedUpdate(Update(update.type, entry), "invalid_action_id", MUST_REJECT)


@_mutation("invalid_table_action")
def invalid_table_action(rng, p4info, update):
    """Replace the action with one that exists but is out of scope here."""
    table = p4info.tables.get(update.entry.table_id)
    inv = _single_invocation(update.entry)
    if table is None or inv is None:
        return None
    foreign = [a for a in p4info.actions.values() if a.id not in table.action_ids]
    if not foreign:
        return None
    action = rng.choice(foreign)
    params = tuple(
        (p.id, codec.encode(rng.getrandbits(p.bitwidth), p.bitwidth)) for p in action.params
    )
    entry = replace(update.entry, action=ActionInvocation(action.id, params))
    return MutatedUpdate(Update(update.type, entry), "invalid_table_action", MUST_REJECT)


@_mutation("invalid_match_type")
def invalid_match_type(rng, p4info, update):
    """Mislabel a match clause's kind (e.g. claim ternary for an exact key)."""
    table = p4info.tables.get(update.entry.table_id)
    if table is None or not update.entry.matches:
        return None
    index = rng.randrange(len(update.entry.matches))
    clause = update.entry.matches[index]
    mf = table.match_field_by_id(clause.field_id)
    if mf is None:
        return None
    other_kinds = [k.value for k in MatchKind if k.value != clause.kind]
    mutated = replace(clause, kind=rng.choice(other_kinds))
    matches = list(update.entry.matches)
    matches[index] = mutated
    entry = replace(update.entry, matches=tuple(matches))
    return MutatedUpdate(Update(update.type, entry), "invalid_match_type", MUST_REJECT)


@_mutation("duplicate_match_field")
def duplicate_match_field(rng, p4info, update):
    if not update.entry.matches:
        return None
    clause = rng.choice(update.entry.matches)
    entry = replace(update.entry, matches=update.entry.matches + (clause,))
    return MutatedUpdate(Update(update.type, entry), "duplicate_match_field", MUST_REJECT)


@_mutation("missing_mandatory_match_field")
def missing_mandatory_match_field(rng, p4info, update):
    table = p4info.tables.get(update.entry.table_id)
    if table is None:
        return None
    exact_ids = {
        mf.id for mf in table.match_fields if mf.match_type is MatchKind.EXACT
    }
    present = [m for m in update.entry.matches if m.field_id in exact_ids]
    if not present:
        return None
    victim = rng.choice(present)
    matches = tuple(m for m in update.entry.matches if m is not victim)
    entry = replace(update.entry, matches=matches)
    return MutatedUpdate(
        Update(update.type, entry), "missing_mandatory_match_field", MUST_REJECT
    )


# ----------------------------------------------------------------------
# One-shot action selector mutations (§4.2)
# ----------------------------------------------------------------------


@_mutation("invalid_action_selector_weight")
def invalid_action_selector_weight(rng, p4info, update):
    action = update.entry.action
    if not isinstance(action, ActionProfileActionSet) or not action.actions:
        return None
    index = rng.randrange(len(action.actions))
    members = list(action.actions)
    members[index] = replace(members[index], weight=rng.choice([0, -1, -5]))
    entry = replace(update.entry, action=ActionProfileActionSet(tuple(members)))
    return MutatedUpdate(
        Update(update.type, entry), "invalid_action_selector_weight", MUST_REJECT
    )


@_mutation("invalid_table_implementation")
def invalid_table_implementation(rng, p4info, update):
    """Send an action set to a single-action table, or vice versa."""
    entry = update.entry
    table = p4info.tables.get(entry.table_id)
    if table is None or entry.action is None:
        return None
    if isinstance(entry.action, ActionInvocation):
        mutated = ActionProfileActionSet(
            (ActionProfileAction(action=entry.action, weight=1),)
        )
    else:
        if not entry.action.actions:
            return None
        mutated = entry.action.actions[0].action
    new_entry = replace(entry, action=mutated)
    return MutatedUpdate(
        Update(update.type, new_entry), "invalid_table_implementation", MUST_REJECT
    )


# ----------------------------------------------------------------------
# Reference and resource mutations
# ----------------------------------------------------------------------


@_mutation("invalid_reference")
def invalid_reference(rng, p4info, update):
    """Point a @refers_to field/param at a non-existent value (§4.4)."""
    refs = ReferenceGraph(p4info)
    entry = update.entry
    table = p4info.tables.get(entry.table_id)
    if table is None:
        return None
    # Try match-key references first.
    for index, clause in enumerate(entry.matches):
        mf = table.match_field_by_id(clause.field_id)
        if mf is None:
            continue
        if (table.name, mf.name) in refs.edges:
            bogus = (1 << mf.bitwidth) - 1 - rng.randint(0, 7)
            matches = list(entry.matches)
            matches[index] = replace(clause, value=codec.encode(bogus, mf.bitwidth))
            mutated = replace(entry, matches=tuple(matches))
            return MutatedUpdate(
                Update(update.type, mutated), "invalid_reference", MUST_REJECT
            )
    # Then action-parameter references.
    inv = _single_invocation(entry)
    if inv is not None:
        action = p4info.actions.get(inv.action_id)
        if action is not None:
            for pindex, (pid, _data) in enumerate(inv.params):
                pinfo = action.param_by_id(pid)
                if pinfo is not None and pinfo.refers_to:
                    bogus = (1 << pinfo.bitwidth) - 1 - rng.randint(0, 7)
                    params = list(inv.params)
                    params[pindex] = (pid, codec.encode(bogus, pinfo.bitwidth))
                    mutated = replace(entry, action=replace(inv, params=tuple(params)))
                    return MutatedUpdate(
                        Update(update.type, mutated), "invalid_reference", MUST_REJECT
                    )
    return None


@_mutation("invalid_port_resource")
def invalid_port_resource(rng, p4info, update):
    """A port-typed action argument outside the switch's port inventory."""
    inv = _single_invocation(update.entry)
    if inv is None:
        return None
    action = p4info.actions.get(inv.action_id)
    if action is None:
        return None
    for pindex, (pid, _data) in enumerate(inv.params):
        pinfo = action.param_by_id(pid)
        if pinfo is not None and pinfo.name == "port":
            bogus = 0x3FFF  # far outside any inventory
            params = list(inv.params)
            params[pindex] = (pid, codec.encode(bogus, pinfo.bitwidth))
            entry = replace(update.entry, action=replace(inv, params=tuple(params)))
            return MutatedUpdate(
                Update(update.type, entry), "invalid_port_resource", MUST_REJECT
            )
    return None


# ----------------------------------------------------------------------
# Encoding mutations
# ----------------------------------------------------------------------


@_mutation("non_canonical_value")
def non_canonical_value(rng, p4info, update):
    """Pad a value with redundant leading zero bytes."""
    if not update.entry.matches:
        return None
    index = rng.randrange(len(update.entry.matches))
    clause = update.entry.matches[index]
    matches = list(update.entry.matches)
    matches[index] = replace(clause, value=b"\x00" + clause.value)
    entry = replace(update.entry, matches=tuple(matches))
    return MutatedUpdate(Update(update.type, entry), "non_canonical_value", MUST_REJECT)


@_mutation("value_out_of_range")
def value_out_of_range(rng, p4info, update):
    """A value wider than the declared field width."""
    table = p4info.tables.get(update.entry.table_id)
    if table is None or not update.entry.matches:
        return None
    index = rng.randrange(len(update.entry.matches))
    clause = update.entry.matches[index]
    mf = table.match_field_by_id(clause.field_id)
    if mf is None:
        return None
    too_big = 1 << mf.bitwidth
    length = (too_big.bit_length() + 7) // 8
    matches = list(update.entry.matches)
    matches[index] = replace(clause, value=too_big.to_bytes(length, "big"))
    entry = replace(update.entry, matches=tuple(matches))
    return MutatedUpdate(Update(update.type, entry), "value_out_of_range", MUST_REJECT)


@_mutation("wrong_priority")
def wrong_priority(rng, p4info, update):
    """Omit a required priority, or supply one where forbidden."""
    table = p4info.tables.get(update.entry.table_id)
    if table is None:
        return None
    entry = (
        replace(update.entry, priority=0)
        if table.requires_priority
        else replace(update.entry, priority=rng.randint(1, 10))
    )
    return MutatedUpdate(Update(update.type, entry), "wrong_priority", MUST_REJECT)


# ----------------------------------------------------------------------
# Stateful mutations: duplicates and ghosts (valid-formed, state-dependent)
# ----------------------------------------------------------------------


@_stateful_mutation("duplicate_insert")
def duplicate_insert(rng, p4info, update, state):
    """Re-insert an *installed* entry: must fail with ALREADY_EXISTS.

    The duplicate is drawn from the generator's installed-state view, so
    the switch's duplicate check is exercised deliberately — not left to
    accidental key collisions in the fresh-insert stream.  Inapplicable
    when nothing is installed yet (or no state view was supplied).  The
    re-insert is well-formed; the oracle's state tracking supplies the
    ALREADY_EXISTS expectation, so this is tagged VALID here.
    """
    if update.type is not UpdateType.INSERT:
        return None
    if state is None or not state.entries:
        return None
    victim = rng.choice(list(state.entries.values()))
    return MutatedUpdate(
        Update(UpdateType.INSERT, victim), "duplicate_insert", VALID
    )


@_stateful_mutation("delete_nonexistent")
def delete_nonexistent(rng, p4info, update, state):
    """Delete an entry that was never installed: must fail NOT_FOUND.

    The fresh insert's key could collide with an installed entry (small
    exact key spaces make this common), in which case the delete would
    legitimately succeed; the installed-state view rules those out so the
    mutant really targets a never-installed key.
    """
    if update.type is not UpdateType.INSERT:
        return None
    if state is not None and update.entry.match_key() in state.entries:
        return None
    return MutatedUpdate(
        Update(UpdateType.DELETE, update.entry), "delete_nonexistent", VALID
    )


MUTATION_NAMES: List[str] = sorted({**_MUTATORS, **_STATEFUL_MUTATORS})


def _run_mutator(
    name: str, rng: random.Random, p4info: P4Info, update: Update, state
) -> Optional[MutatedUpdate]:
    stateful = _STATEFUL_MUTATORS.get(name)
    if stateful is not None:
        return stateful(rng, p4info, update, state)
    return _MUTATORS[name](rng, p4info, update)


def _weighted_order(
    rng: random.Random, names: List[str], weights: Dict[str, float]
) -> List[str]:
    """Sample the try-order without replacement, biased by weight.

    Unknown names weigh 1.0; weights are floored so no mutation starves
    entirely.  Deterministic given the rng state."""
    remaining = list(names)
    w = [max(weights.get(name, 1.0), 1e-6) for name in remaining]
    ordered: List[str] = []
    while remaining:
        pick = rng.choices(range(len(remaining)), weights=w, k=1)[0]
        ordered.append(remaining.pop(pick))
        w.pop(pick)
    return ordered


def apply_random_mutation(
    rng: random.Random,
    p4info: P4Info,
    update: Update,
    allowed: Optional[List[str]] = None,
    state=None,
    weights: Optional[Dict[str, float]] = None,
) -> Optional[MutatedUpdate]:
    """Apply one randomly chosen applicable mutation to a valid update.

    ``state`` is the generator's installed-state view for the stateful
    mutations; ``weights`` (name -> weight) biases the try-order — the
    coverage-guided feedback loop supplies both.  Without weights the
    order is a uniform shuffle, exactly the blind fuzzer's behaviour.
    """
    names = list(allowed) if allowed is not None else list(MUTATION_NAMES)
    if weights is None:
        rng.shuffle(names)
    else:
        names = _weighted_order(rng, names, weights)
    for name in names:
        mutated = _run_mutator(name, rng, p4info, update, state)
        if mutated is not None:
            return mutated
    return None


def apply_mutation(
    name: str, rng: random.Random, p4info: P4Info, update: Update, state=None
) -> Optional[MutatedUpdate]:
    return _run_mutator(name, rng, p4info, update, state)
