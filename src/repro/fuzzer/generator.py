"""Valid request generation (§4.1).

The generator analyses the P4Info catalogue — table types, match kinds and
widths, permitted actions, @refers_to edges — and produces control-plane
updates that "violate no obvious rules in the P4Runtime specification":
values fit their declared bit sizes, actions come from the table's
permitted set, selector tables get weighted one-shot action sets, and
referring fields pick values exported by entries the fuzzer believes are
installed.

Constraint compliance is *not* enforced by default, matching the paper
("we currently do not enforce constraint compliance, and thus frequently
generate invalid requests for tables with constraints"); the
constraint-aware mode sketched in §7 is available via
``constraint_aware=True`` and is exercised by the ablation benchmarks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.p4.ast import MatchKind
from repro.p4.constraints import parse_constraint
from repro.p4.constraints.lang import ConstraintSyntaxError
from repro.p4.constraints.refs import ReferenceGraph
from repro.p4.constraints.symbolic import SymbolicKeySet, encode_constraint
from repro.p4.p4info import P4Info, TableInfo
from repro.p4rt import codec
from repro.p4rt.messages import (
    ActionInvocation,
    ActionProfileAction,
    ActionProfileActionSet,
    FieldMatch,
    TableEntry,
    Update,
    UpdateType,
)
from repro.smt import Solver
from repro.smt import terms as T
from repro.smt.minmodel import minimal_assignment
from repro.smt.pool import SolverPool


# Heuristics for parameters that denote switch resources rather than
# arbitrary bit patterns.  The fuzzer's Invalid-Resource mutation perturbs
# exactly these.
PORT_PARAM_NAMES = ("port",)


@dataclass
class GeneratorState:
    """The fuzzer's view of what is installed (fed back from the oracle).

    ``version`` increments on every mutation so consumers can cache derived
    structures (the generator's referenceable-state index)."""

    entries: Dict[Tuple, TableEntry] = field(default_factory=dict)
    version: int = 0

    def install(self, entry: TableEntry) -> None:
        self.entries[entry.match_key()] = entry
        self.version += 1

    def remove(self, entry: TableEntry) -> None:
        self.entries.pop(entry.match_key(), None)
        self.version += 1

    def replace_all(self, entries: Sequence[TableEntry]) -> None:
        self.entries = {e.match_key(): e for e in entries}
        self.version += 1

    def in_table(self, table_id: int) -> List[TableEntry]:
        return [e for e in self.entries.values() if e.table_id == table_id]

    def __len__(self) -> int:
        return len(self.entries)


class RequestGenerator:
    """Generates syntactically valid updates for a P4Info catalogue."""

    def __init__(
        self,
        p4info: P4Info,
        rng: random.Random,
        valid_ports: Sequence[int] = (1, 2, 3, 4, 5, 6, 7, 8),
        constraint_aware: bool = False,
        solver_pool: Optional[SolverPool] = None,
    ) -> None:
        self.p4info = p4info
        self.rng = rng
        self.valid_ports = tuple(valid_ports)
        # Per-table constraint solvers come from the pool when one is
        # supplied (shared with the harness's packet-generation solvers),
        # falling back to a private cache otherwise.  Either way the solver
        # outlives a single sampling round: model blocking happens through
        # check() assumptions, never permanent assertions, so the encoding
        # stays clean and reusable across campaigns.
        self._pool = solver_pool
        # table.id -> (solver, constraint terms).  The constraints ride
        # along because canonical model extraction must see them as
        # assumptions (see repro.smt.minmodel's caveat).
        self._constraint_solvers: Dict[int, Tuple[Solver, Tuple[T.Term, ...]]] = {}
        self.refs = ReferenceGraph(p4info)
        self.state = GeneratorState()
        self._available_cache = None
        self._available_version = -1
        # Coverage-guided table selection: a callable mapping the candidate
        # pool to per-table weights (repro.fuzzer.feedback supplies it).
        # None keeps the uniform pick — and the blind rng stream — intact.
        self.table_bias: Optional[Callable[[Sequence[TableInfo]], Sequence[float]]] = None
        self.constraint_aware = constraint_aware
        self._constraints = {}
        for tid, table in p4info.tables.items():
            if table.entry_restriction:
                try:
                    self._constraints[tid] = parse_constraint(table.entry_restriction)
                except ConstraintSyntaxError:
                    pass
        self._constraint_models: Dict[int, List[Dict[str, int]]] = {}

    # ------------------------------------------------------------------
    # Update generation
    # ------------------------------------------------------------------
    def generate_update(self) -> Optional[Update]:
        """One valid update: mostly inserts, sometimes modify/delete."""
        roll = self.rng.random()
        if roll < 0.75 or not self.state.entries:
            return self.generate_insert()
        if roll < 0.87:
            return self.generate_modify()
        return self.generate_delete()

    def generate_insert(self, table_id: Optional[int] = None) -> Optional[Update]:
        table = self._pick_table(table_id)
        if table is None:
            return None
        entry = self.generate_entry(table)
        if entry is None:
            return None
        return Update(UpdateType.INSERT, entry)

    def generate_modify(self) -> Optional[Update]:
        candidates = [
            e
            for e in self.state.entries.values()
            if self.p4info.tables.get(e.table_id) is not None
        ]
        if not candidates:
            return None
        existing = self.rng.choice(candidates)
        table = self.p4info.tables[existing.table_id]
        action = self._generate_action(table)
        if action is None:
            return None
        return Update(
            UpdateType.MODIFY,
            TableEntry(
                table_id=existing.table_id,
                matches=existing.matches,
                action=action,
                priority=existing.priority,
            ),
        )

    def generate_delete(self) -> Optional[Update]:
        candidates = list(self.state.entries.values())
        if not candidates:
            return None
        # Prefer deleting entries nothing else references, so valid deletes
        # mostly succeed; deleting referenced entries is also valid (the
        # switch must reject it cleanly) and is kept at low probability.
        existing = self.rng.choice(candidates)
        return Update(UpdateType.DELETE, existing)

    # ------------------------------------------------------------------
    # Entry generation
    # ------------------------------------------------------------------
    def generate_entry(self, table: TableInfo) -> Optional[TableEntry]:
        matches = []
        if self.constraint_aware and table.id in self._constraints:
            key_plan = self._constraint_compliant_keys(table)
            if key_plan is None:
                return None
        else:
            key_plan = None
        for mf in table.match_fields:
            match = self._generate_match(table, mf, key_plan)
            if match is ...:  # unable to satisfy a reference
                return None
            if match is not None:
                matches.append(match)
        action = self._generate_action(table)
        if action is None:
            return None
        priority = self.rng.randint(1, 64) if table.requires_priority else 0
        return TableEntry(
            table_id=table.id,
            matches=tuple(matches),
            action=action,
            priority=priority,
        )

    def _pick_table(self, table_id: Optional[int]) -> Optional[TableInfo]:
        if table_id is not None:
            return self.p4info.tables.get(table_id)
        tables = list(self.p4info.tables.values())
        if not tables:
            return None
        # Weight towards tables whose references are satisfiable right now.
        satisfiable = [t for t in tables if self._references_satisfiable(t)]
        pool = satisfiable or tables
        if self.table_bias is not None:
            weights = list(self.table_bias(pool))
            return self.rng.choices(pool, weights=weights, k=1)[0]
        return self.rng.choice(pool)

    def constraint_models(self) -> Dict[int, List[Dict[str, int]]]:
        """The constraint-aware planner's cached per-table boundary models
        (populated lazily as tables are planned) — read-only view for the
        coverage feedback loop's boundary-distance regions."""
        return self._constraint_models

    def _available(self):
        if self._available_cache is None or self._available_version != self.state.version:
            self._available_cache = self.refs.collect_state(self.state.entries.values())
            self._available_version = self.state.version
        return self._available_cache

    def _references_satisfiable(self, table: TableInfo) -> bool:
        available = self._available()
        for mf in table.match_fields:
            target = self.refs.edges.get((table.name, mf.name))
            if target and not self._referenced_values(*target):
                return False
        for aid in table.action_ids:
            action = self.p4info.actions[aid]
            for target_table, pairs in self.refs.action_reference_groups(
                action.name
            ).items():
                demanded_keys = {key for _param, key in pairs}
                if not any(
                    demanded_keys <= {k for k, _v in keyset}
                    for keyset in available.keysets(target_table)
                ):
                    return False
        return True

    def _referenced_values(self, target_table: str, target_key: str) -> List[int]:
        values: List[int] = []
        for keyset in self._available().keysets(target_table):
            values.extend(value for key, value in keyset if key == target_key)
        return values

    def _random_value(self, bitwidth: int) -> int:
        # Bias towards small values and boundary patterns, which exercise
        # canonical encoding and reserved-value handling.
        roll = self.rng.random()
        if roll < 0.4:
            return self.rng.randint(0, min(15, (1 << bitwidth) - 1))
        if roll < 0.5:
            return (1 << bitwidth) - 1
        return self.rng.getrandbits(bitwidth)

    def _generate_match(self, table: TableInfo, mf, key_plan) -> Optional[FieldMatch]:
        target = self.refs.edges.get((table.name, mf.name))
        if key_plan is not None and mf.name in key_plan:
            planned = key_plan[mf.name]
            if planned is None:
                return None  # key omitted (wildcard)
            value, mask, prefix_len = planned
            return self._emit_match(mf, value, mask, prefix_len)
        if target is not None:
            values = self._referenced_values(*target)
            if not values:
                return ...  # sentinel: cannot satisfy the reference
            value = self.rng.choice(values)
            return FieldMatch(mf.id, "exact", codec.encode(value, mf.bitwidth))
        if mf.match_type is MatchKind.EXACT:
            return FieldMatch(
                mf.id, "exact", codec.encode(self._random_value(mf.bitwidth), mf.bitwidth)
            )
        if mf.match_type is MatchKind.LPM:
            if self.rng.random() < 0.15:
                return None  # wildcard: omit
            prefix_len = self.rng.randint(1, mf.bitwidth)
            mask = codec.mask_for_prefix(prefix_len, mf.bitwidth)
            value = self._random_value(mf.bitwidth) & mask
            return FieldMatch(
                mf.id, "lpm", codec.encode(value, mf.bitwidth), prefix_len=prefix_len
            )
        if mf.match_type is MatchKind.TERNARY:
            if self.rng.random() < 0.3:
                return None  # wildcard: omit
            mask = (
                (1 << mf.bitwidth) - 1
                if self.rng.random() < 0.5
                else self.rng.getrandbits(mf.bitwidth) or 1
            )
            value = self._random_value(mf.bitwidth) & mask
            return FieldMatch(
                mf.id,
                "ternary",
                codec.encode(value, mf.bitwidth),
                mask=codec.encode(mask, mf.bitwidth),
            )
        # OPTIONAL
        if self.rng.random() < 0.4:
            return None
        return FieldMatch(
            mf.id, "optional", codec.encode(self._random_value(mf.bitwidth), mf.bitwidth)
        )

    def _emit_match(self, mf, value: int, mask: int, prefix_len: int) -> Optional[FieldMatch]:
        if mf.match_type is MatchKind.EXACT:
            return FieldMatch(mf.id, "exact", codec.encode(value, mf.bitwidth))
        if mf.match_type is MatchKind.LPM:
            if prefix_len == 0:
                return None
            return FieldMatch(
                mf.id, "lpm", codec.encode(value, mf.bitwidth), prefix_len=prefix_len
            )
        if mf.match_type is MatchKind.TERNARY:
            if mask == 0:
                return None
            return FieldMatch(
                mf.id,
                "ternary",
                codec.encode(value, mf.bitwidth),
                mask=codec.encode(mask, mf.bitwidth),
            )
        if mask == 0:
            return None
        return FieldMatch(mf.id, "optional", codec.encode(value, mf.bitwidth))

    # ------------------------------------------------------------------
    # Actions
    # ------------------------------------------------------------------
    def _generate_action(self, table: TableInfo):
        if not table.action_ids:
            return None
        if table.implementation_id:
            members = []
            for _ in range(self.rng.randint(1, 4)):
                inv = self._generate_invocation(table)
                if inv is None:
                    return None
                members.append(
                    ActionProfileAction(action=inv, weight=self.rng.randint(1, 8))
                )
            return ActionProfileActionSet(actions=tuple(members))
        return self._generate_invocation(table)

    def _generate_invocation(self, table: TableInfo) -> Optional[ActionInvocation]:
        action = self.p4info.actions[self.rng.choice(list(table.action_ids))]
        assigned = self._plan_reference_params(action)
        if assigned is None:
            return None
        params: List[Tuple[int, bytes]] = []
        for p in action.params:
            if p.name in assigned:
                value = assigned[p.name]
            elif p.name in PORT_PARAM_NAMES:
                value = self.rng.choice(self.valid_ports)
            else:
                value = self._random_value(p.bitwidth)
            params.append((p.id, codec.encode(value, p.bitwidth)))
        return ActionInvocation(action_id=action.id, params=tuple(params))

    def _plan_reference_params(self, action) -> Optional[Dict[str, int]]:
        """Choose values for referring parameters, keyset-consistently.

        Composite references demand that all parameters referring to the
        same table jointly name one of its entries, so the planner picks a
        concrete installed keyset per group (most-constrained group first)
        and keeps later groups consistent with already-assigned parameters.
        Returns None when some group cannot be satisfied.
        """
        groups = self.refs.action_reference_groups(action.name)
        if not groups:
            return {}
        available = self._available()
        assigned: Dict[str, int] = {}
        ordered = sorted(groups.items(), key=lambda item: -len(item[1]))
        for target_table, pairs in ordered:
            candidates = []
            for keyset in available.keysets(target_table):
                values = dict(keyset)
                if not all(key in values for _param, key in pairs):
                    continue
                if any(
                    param in assigned and assigned[param] != values[key]
                    for param, key in pairs
                ):
                    continue
                candidates.append(values)
            if not candidates:
                return None
            chosen = self.rng.choice(candidates)
            for param, key in pairs:
                assigned[param] = chosen[key]
        return assigned

    # ------------------------------------------------------------------
    # Constraint-aware key planning (§7 extension, SMT-backed)
    # ------------------------------------------------------------------
    def _constraint_compliant_keys(
        self, table: TableInfo
    ) -> Optional[Dict[str, Optional[Tuple[int, int, int]]]]:
        """Sample a model of the table's constraint + well-formedness.

        Returns key name -> (value, mask, prefix_len), or None for an
        omitted key.  Models are cached and perturbed cheaply; a fresh SMT
        solve only happens when the cache is cold.
        """
        cached = self._constraint_models.get(table.id)
        if not cached and self._pool is not None:
            # Models sampled by an earlier campaign sharing this pool.
            # Reused verbatim so the request stream matches what a cold
            # generator would produce (the first computation always runs
            # against a cold solver, and sampling from the models is
            # seeded by the campaign's own rng).
            cached = self._pool.memo.get(
                ("fuzzer-models", self.p4info.program_name, table.name)
            )
            if cached:
                self._constraint_models[table.id] = cached
        if not cached:
            keys = SymbolicKeySet(table)
            entry = self._constraint_solvers.get(table.id)
            if entry is None:
                constraints = (
                    keys.wellformedness(),
                    encode_constraint(self._constraints[table.id], keys),
                )
                if self._pool is not None:
                    # Key variables are named per table, so the encoding is
                    # table-specific; hash-consing makes the constraint
                    # terms identical across campaigns and the pool asserts
                    # them exactly once.
                    solver = self._pool.solver(
                        ("fuzzer-keys", self.p4info.program_name, table.name),
                        constraints,
                    )
                else:
                    solver = Solver()
                    solver.add(*constraints)
                entry = (solver, constraints)
                self._constraint_solvers[table.id] = entry
            solver, constraints = entry
            variables = {}
            for mf in table.match_fields:
                for var in (
                    keys.value_vars[mf.name],
                    keys.mask_vars[mf.name],
                    keys.prefix_vars[mf.name],
                ):
                    variables[var.name] = var
            models: List[Dict[str, int]] = []
            # Collect a few diverse models by blocking previous ones.  The
            # blockers ride along as check() assumptions rather than
            # permanent assertions, so the cached solver still encodes
            # exactly wellformedness ∧ constraint afterwards and stays
            # reusable (across campaigns, and by anyone sharing the pool).
            # Each model is the *lexicographically minimal* one under the
            # current blockers — a pure function of the constraint terms,
            # so encoder/kernel choice and pool warmth cannot change the
            # request stream (the constraints are passed as assumptions
            # because minmodel's evaluator fast path only sees assumptions).
            blocks: List[T.Term] = []
            for _ in range(4):
                model = minimal_assignment(
                    solver, [*constraints, *blocks], variables
                )
                if model is None:
                    break
                models.append(model)
                # Block this exact assignment of the value variables.
                blockers = []
                for mf in table.match_fields:
                    var = keys.value_vars[mf.name]
                    blockers.append(var.ne(model.get(var.name, 0)))
                if blockers:
                    blocks.append(T.or_(*blockers))
                else:
                    break
            if not models:
                return None
            self._constraint_models[table.id] = models
            if self._pool is not None:
                self._pool.memo[
                    ("fuzzer-models", self.p4info.program_name, table.name)
                ] = models
            cached = models
        model = self.rng.choice(cached)
        plan: Dict[str, Optional[Tuple[int, int, int]]] = {}
        for mf in table.match_fields:
            base = f"{table.name}.{mf.name}"
            value = model.get(f"{base}::value", 0)
            mask = model.get(f"{base}::mask", 0)
            prefix_len = model.get(f"{base}::prefix_length", 0)
            plan[mf.name] = (
                None
                if mf.match_type is not MatchKind.EXACT and mask == 0
                else (value, mask, prefix_len)
            )
        return plan
