"""repro.fuzzer — p4-fuzzer, the control-plane API validator (§4).

Given a P4 model, generates sequences of valid and "interestingly invalid"
P4Runtime write requests, batches them so that no batch contains dependent
updates (§4.4), runs them against the switch, and judges every response —
and the post-batch state read-back — with an oracle encoding the P4Runtime
specification (§4.3).

* :mod:`repro.fuzzer.generator` — valid request generation from P4Info,
  @refers_to-aware.
* :mod:`repro.fuzzer.mutations` — the curated mutation catalogue (§4.2).
* :mod:`repro.fuzzer.oracle` — response/readback admissibility judging.
* :mod:`repro.fuzzer.batching` — dependency-respecting batch assembly.
* :mod:`repro.fuzzer.pipeline` — windowed in-flight write scheduling.
* :mod:`repro.fuzzer.feedback` — greybox coverage feedback (trace-key
  scoring, corpus, uncovered-region biasing).
* :mod:`repro.fuzzer.fuzzer` — the campaign driver.
"""

from repro.fuzzer.feedback import CoverageProgress, CoverageTracker
from repro.fuzzer.fuzzer import FuzzerConfig, FuzzResult, P4Fuzzer, TransportSummary
from repro.fuzzer.generator import RequestGenerator
from repro.fuzzer.mutations import MUTATION_NAMES
from repro.fuzzer.oracle import Oracle
from repro.fuzzer.pipeline import BatchOutcome, PipelineStats, WriteScheduler

__all__ = [
    "BatchOutcome",
    "CoverageProgress",
    "CoverageTracker",
    "FuzzResult",
    "FuzzerConfig",
    "MUTATION_NAMES",
    "Oracle",
    "P4Fuzzer",
    "PipelineStats",
    "RequestGenerator",
    "TransportSummary",
    "WriteScheduler",
]
