"""The orchestration agent: P4 entities → SAI-level operations.

Sits between the P4Runtime application layer and SyncD (Figure 4).  It owns
the semantic mapping from model tables to switch objects — VRFs, routes,
next-hop groups, ACL stages — and the update/delete choreography, which is
where several of the paper's bugs lived (WCMP group lifecycle, VRF response
path).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.bmv2.entries import DecodedAction, DecodedActionSet, InstalledEntry
from repro.p4.ast import P4Program
from repro.switch.faults import FaultRegistry
from repro.switch.sai import SaiResult, SaiStatus
from repro.switch.syncd import SyncD

# Model table name -> ACL stage name in the ASIC.
ACL_STAGE_BY_TABLE = {
    "acl_pre_ingress_tbl": "pre_ingress",
    "acl_ingress_tbl": "ingress",
    "acl_egress_tbl": "egress",
    "l3_admit_tbl": "l3_admit",
    "decap_tbl": "decap",
}

# Model ACL action name -> ASIC ACL action (and which param is the argument).
ACL_ACTION_MAP = {
    "drop": ("drop", None),
    "trap": ("trap", None),
    "acl_copy": ("copy", None),
    "acl_mirror": ("mirror", "mirror_session_id"),
    "set_vrf": ("set_vrf", "vrf_id"),
    "admit_to_l3": ("admit", None),
    "decap": ("decap", None),
}


class OrchAgentError(Exception):
    def __init__(self, status: SaiStatus, detail: str) -> None:
        super().__init__(detail)
        self.status = status
        self.detail = detail


def _fail(result: SaiResult) -> OrchAgentError:
    return OrchAgentError(result.status, result.detail)


class OrchAgent:
    """Translates decoded table entries into switch state."""

    def __init__(self, program: P4Program, syncd: SyncD, faults: FaultRegistry) -> None:
        self._program = program
        self._syncd = syncd
        self._faults = faults
        # ACL entry identity -> (stage, asic entry id) for deletes.
        self._acl_ids: Dict[Tuple, Tuple[str, int]] = {}
        self._tables = {t.name: t for t in program.tables()}

    # ------------------------------------------------------------------
    # Entry dispatch
    # ------------------------------------------------------------------
    def apply(self, op: str, entry: InstalledEntry) -> None:
        """Apply one update; raises :class:`OrchAgentError` on failure."""
        name = entry.table_name
        if name == "vrf_tbl":
            self._apply_vrf(op, entry)
        elif name in ("ipv4_tbl", "ipv6_tbl"):
            self._apply_route(op, entry, version=4 if name == "ipv4_tbl" else 6)
        elif name == "wcmp_group_tbl":
            self._apply_wcmp(op, entry)
        elif name == "nexthop_tbl":
            self._apply_nexthop(op, entry)
        elif name == "neighbor_tbl":
            self._apply_neighbor(op, entry)
        elif name == "router_interface_tbl":
            self._apply_rif(op, entry)
        elif name == "mirror_session_tbl":
            self._apply_mirror(op, entry)
        elif name == "tunnel_tbl":
            self._apply_tunnel(op, entry)
        elif name in ACL_STAGE_BY_TABLE or name == "pre_ingress_tbl":
            self._apply_acl(op, entry)
        else:
            raise OrchAgentError(SaiStatus.NOT_SUPPORTED, f"unmapped table {name}")

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _key(entry: InstalledEntry, name: str) -> int:
        m = entry.match(name)
        if m is None or not m.present:
            raise OrchAgentError(SaiStatus.FAILURE, f"missing key {name}")
        return m.value

    @staticmethod
    def _single_action(entry: InstalledEntry) -> DecodedAction:
        if not isinstance(entry.action, DecodedAction):
            raise OrchAgentError(SaiStatus.FAILURE, "expected a single action")
        return entry.action

    def _check(self, result: SaiResult) -> None:
        if not result.ok:
            raise _fail(result)

    # ------------------------------------------------------------------
    # VRF
    # ------------------------------------------------------------------
    def _apply_vrf(self, op: str, entry: InstalledEntry) -> None:
        vrf_id = self._key(entry, "vrf_id")
        if op == "insert":
            self._check(self._syncd.create_vrf(vrf_id))
        elif op == "delete":
            self._check(self._syncd.remove_vrf(vrf_id))
        # modify of a no-op action table entry is a no-op.

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    def _route_target(self, action: DecodedAction):
        from repro.switch.asic import RouteTarget

        params = action.param_map()
        if action.name == "drop":
            return RouteTarget(kind="drop")
        if action.name == "trap":
            return RouteTarget(kind="trap")
        if action.name == "set_nexthop_id":
            return RouteTarget(kind="nexthop", nexthop_id=params["nexthop_id"])
        if action.name == "set_wcmp_group_id":
            return RouteTarget(kind="wcmp", wcmp_group_id=params["wcmp_group_id"])
        if action.name == "set_nexthop_id_and_tunnel":
            return RouteTarget(
                kind="nexthop",
                nexthop_id=params["nexthop_id"],
                tunnel_id=params["tunnel_id"],
            )
        raise OrchAgentError(SaiStatus.NOT_SUPPORTED, f"route action {action.name}")

    def _apply_route(self, op: str, entry: InstalledEntry, version: int) -> None:
        vrf_id = self._key(entry, "vrf_id")
        key_name = "ipv4_dst" if version == 4 else "ipv6_dst"
        m = entry.match(key_name)
        prefix, plen = (m.value, m.prefix_len) if (m and m.present) else (0, 0)
        if op == "delete":
            self._check(self._syncd.remove_route(vrf_id, version, prefix, plen))
            return
        target = self._route_target(self._single_action(entry))
        if op == "insert":
            self._check(self._syncd.create_route(vrf_id, version, prefix, plen, target))
        else:
            self._check(self._syncd.set_route(vrf_id, version, prefix, plen, target))

    # ------------------------------------------------------------------
    # WCMP groups
    # ------------------------------------------------------------------
    def _group_members(self, entry: InstalledEntry) -> List[Tuple[int, int]]:
        if not isinstance(entry.action, DecodedActionSet):
            raise OrchAgentError(SaiStatus.FAILURE, "wcmp entry without action set")
        members: List[Tuple[int, int]] = []
        for action, weight in entry.action.members:
            if action.name != "set_nexthop_id":
                raise OrchAgentError(
                    SaiStatus.NOT_SUPPORTED, f"wcmp member action {action.name}"
                )
            members.append((action.param_map()["nexthop_id"], weight))
        return members

    def _apply_wcmp(self, op: str, entry: InstalledEntry) -> None:
        gid = self._key(entry, "wcmp_group_id")
        if op == "delete":
            self._check(self._syncd.remove_wcmp_group(gid))
            return
        members = self._group_members(entry)
        if self._faults.enabled("wcmp_same_action_rejected"):
            # Spec-violating over-restriction: two buckets with the same
            # nexthop are rejected even though P4Runtime allows them.
            nexthops = [nh for nh, _w in members]
            if len(set(nexthops)) != len(nexthops):
                raise OrchAgentError(
                    SaiStatus.FAILURE, "duplicate nexthop in WCMP group"
                )
        if op == "insert":
            if self._faults.enabled("wcmp_cleanup_on_partial_failure") and any(
                w >= 8 for _nh, w in members
            ):
                # The per-member creation loop trips over heavy-weight
                # members; the half-created group is abandoned in hardware
                # (its members leak from the shared pool) and the insert is
                # reported failed.
                self._syncd._asic.wcmp_members_used += sum(w for _nh, w in members) // 2
                raise OrchAgentError(
                    SaiStatus.FAILURE, "group member creation failed; cleanup incomplete"
                )
            result = self._syncd.create_wcmp_group(gid, members)
            if not result.ok:
                raise _fail(result)
        else:
            if self._faults.enabled("wcmp_update_removes_members"):
                # The update path diffs incorrectly: unchanged members are
                # removed, and the re-add of the "new" set silently fails —
                # the hardware group ends up empty (traffic blackholes).
                members = []
            self._check(self._syncd.set_wcmp_group(gid, members))

    # ------------------------------------------------------------------
    # Nexthop / neighbor / RIF
    # ------------------------------------------------------------------
    def _apply_nexthop(self, op: str, entry: InstalledEntry) -> None:
        nh_id = self._key(entry, "nexthop_id")
        if op == "delete":
            self._check(self._syncd.remove_nexthop(nh_id))
            return
        params = self._single_action(entry).param_map()
        rif = params["router_interface_id"]
        neighbor = params["neighbor_id"]
        if op == "insert":
            self._check(self._syncd.create_nexthop(nh_id, rif, neighbor))
        else:
            self._check(self._syncd.set_nexthop(nh_id, rif, neighbor))

    def _apply_neighbor(self, op: str, entry: InstalledEntry) -> None:
        rif = self._key(entry, "router_interface_id")
        neighbor = self._key(entry, "neighbor_id")
        if op == "delete":
            self._check(self._syncd.remove_neighbor(rif, neighbor))
            return
        params = self._single_action(entry).param_map()
        self._check(self._syncd.create_neighbor(rif, neighbor, params["dst_mac"]))

    def _apply_rif(self, op: str, entry: InstalledEntry) -> None:
        rif = self._key(entry, "router_interface_id")
        if op == "delete":
            self._check(self._syncd.remove_rif(rif))
            return
        params = self._single_action(entry).param_map()
        if op == "insert":
            self._check(self._syncd.create_rif(rif, params["port"], params["src_mac"]))
        else:
            self._check(self._syncd.set_rif(rif, params["port"], params["src_mac"]))

    # ------------------------------------------------------------------
    # Mirror sessions / tunnels
    # ------------------------------------------------------------------
    def _apply_mirror(self, op: str, entry: InstalledEntry) -> None:
        session = self._key(entry, "mirror_session_id")
        if op == "delete":
            self._check(self._syncd.remove_mirror_session(session))
            return
        params = self._single_action(entry).param_map()
        self._check(self._syncd.create_mirror_session(session, params["port"]))

    def _apply_tunnel(self, op: str, entry: InstalledEntry) -> None:
        tunnel = self._key(entry, "tunnel_id")
        if op == "delete":
            self._check(self._syncd.remove_tunnel(tunnel))
            return
        params = self._single_action(entry).param_map()
        if op == "modify":
            self._check(self._syncd.remove_tunnel(tunnel))
        self._check(
            self._syncd.create_tunnel(
                tunnel, params["encap_src_ip"], params["encap_dst_ip"]
            )
        )

    # ------------------------------------------------------------------
    # ACL stages
    # ------------------------------------------------------------------
    def _acl_stage_for(self, table_name: str) -> str:
        stage = ACL_STAGE_BY_TABLE.get(table_name)
        if stage is None and table_name == "pre_ingress_tbl":
            stage = "pre_ingress"
        if stage is None:
            raise OrchAgentError(SaiStatus.NOT_SUPPORTED, f"no ACL stage for {table_name}")
        if self._faults.enabled("acl_name_capitalization") and stage in ("ingress", "egress"):
            # The agent upper-cases the table name on its internal bus; the
            # consumer on the other side doesn't recognise it.
            raise OrchAgentError(
                SaiStatus.FAILURE, f"unknown ACL table '{table_name.upper()}'"
            )
        return stage

    def _apply_acl(self, op: str, entry: InstalledEntry) -> None:
        stage = self._acl_stage_for(entry.table_name)
        identity = entry.identity()
        if op == "delete":
            located = self._acl_ids.pop(identity, None)
            if located is None:
                raise OrchAgentError(SaiStatus.ITEM_NOT_FOUND, "unknown ACL entry")
            self._check(self._syncd.remove_acl_entry(located[0], located[1]))
            return
        action = self._single_action(entry)
        mapping = ACL_ACTION_MAP.get(action.name)
        if mapping is None:
            raise OrchAgentError(SaiStatus.NOT_SUPPORTED, f"ACL action {action.name}")
        asic_action, arg_param = mapping
        arg = action.param_map().get(arg_param, 0) if arg_param else 0
        matches: Dict[str, Tuple[int, int]] = {}
        for m in entry.matches:
            if not m.present:
                continue
            matches[m.key_name] = (m.value, m.mask)
        if op == "modify":
            located = self._acl_ids.pop(identity, None)
            if located is not None:
                self._check(self._syncd.remove_acl_entry(located[0], located[1]))
        result = self._syncd.create_acl_entry(
            stage, entry.priority, matches, asic_action, arg
        )
        self._check(result)
        self._acl_ids[identity] = (stage, result.oid)
