"""Fault injection: the Appendix-A bug catalogue as switchable behaviours.

Each :class:`Fault` names a concrete misbehaviour implemented somewhere in
the stack (or in the model/simulator), tagged with the component it lives
in, the tool the paper reports discovering it, its days-to-resolution, and
which trivial-suite test (§6.2) would catch it — everything the Table 1/2
and Figure 7 benchmarks need.

Layers consult the registry at the exact decision point the real bug
occupied; with no faults enabled the stack is (intended to be) correct, and
the SwitchV harness finding an incident on a fault-free stack is itself a
reportable bug — in the stack, the model, or SwitchV.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set

# Components, matching Table 1's PINS and Cerberus breakdowns.
P4RT_SERVER = "P4Runtime Server"
GNMI = "gNMI"
ORCH_AGENT = "Orchestration Agent"
SYNCD = "SyncD Binary"
SWITCH_LINUX = "Switch Linux"
HARDWARE = "Hardware"
P4_TOOLCHAIN = "P4 Toolchain"
P4_PROGRAM = "Input P4 Program"
SWITCH_SOFTWARE = "Switch software"  # Cerberus coarse category
BMV2 = "BMv2 P4 Simulator"

PINS_COMPONENTS = (
    P4RT_SERVER,
    GNMI,
    ORCH_AGENT,
    SYNCD,
    SWITCH_LINUX,
    HARDWARE,
    P4_TOOLCHAIN,
    P4_PROGRAM,
)
CERBERUS_COMPONENTS = (SWITCH_SOFTWARE, HARDWARE, P4_PROGRAM, BMV2)


@dataclass(frozen=True)
class Fault:
    """One injectable bug."""

    name: str
    component: str
    description: str
    # Which SwitchV component the paper credits with (or we expect to be)
    # finding it: "p4-fuzzer" | "p4-symbolic".
    discovered_by: str
    # Days to resolution (None = unresolved), for Figure 7.
    days_to_resolution: Optional[int] = None
    # First trivial-suite test (§6.2) that would find it, or None.
    trivial_test: Optional[str] = None
    # Whether the paper flags it as an integration issue.
    integration: bool = False
    # Which stack the bug belongs to: "pins" | "cerberus".
    stack: str = "pins"


class FaultRegistry:
    """The set of currently enabled faults, shared across stack layers."""

    def __init__(self, enabled: Iterable[str] = ()) -> None:
        self._enabled: Set[str] = set(enabled)

    def enable(self, name: str) -> None:
        if name not in FAULTS_BY_NAME:
            raise KeyError(f"unknown fault {name!r}")
        self._enabled.add(name)

    def disable(self, name: str) -> None:
        self._enabled.discard(name)

    def enabled(self, name: str) -> bool:
        return name in self._enabled

    def active(self) -> List[str]:
        return sorted(self._enabled)

    def __contains__(self, name: str) -> bool:
        return name in self._enabled


# ----------------------------------------------------------------------
# The catalogue (Appendix A, plus §6.1 narrative bugs).
# ----------------------------------------------------------------------

FAULT_CATALOG: List[Fault] = [
    # --- P4Runtime server ------------------------------------------------
    Fault(
        "delete_nonexistent_fails_batch",
        P4RT_SERVER,
        "Deleting a non-existing entry causes the entire batch to fail",
        "p4-fuzzer",
        days_to_resolution=14,
    ),
    Fault(
        "modify_keeps_old_params",
        P4RT_SERVER,
        "MODIFY requests leave old action parameters unchanged in table entries",
        "p4-fuzzer",
        days_to_resolution=4,
    ),
    Fault(
        "p4info_push_failure_swallowed",
        P4RT_SERVER,
        "P4Info push failures are not propagated up to the controller",
        "p4-symbolic",
        days_to_resolution=0,
        trivial_test="table_entry_programming",
        integration=True,
    ),
    Fault(
        "read_ternary_unsupported",
        P4RT_SERVER,
        "Reading back entries with ternary fields is not supported",
        "p4-symbolic",
        days_to_resolution=0,
        trivial_test="read_all_tables",
    ),
    Fault(
        "acl_name_capitalization",
        P4RT_SERVER,
        "ACL table names are not capitalized correctly, breaking ACL programming",
        "p4-symbolic",
        days_to_resolution=16,
        trivial_test="table_entry_programming",
        integration=True,
    ),
    Fault(
        "duplicate_entry_wrong_error",
        P4RT_SERVER,
        "Incorrect error message (code) for duplicate entries",
        "p4-symbolic",
        days_to_resolution=2,
    ),
    Fault(
        "packet_out_punted_back",
        P4RT_SERVER,
        "PacketOut packets incorrectly get punted back to the controller",
        "p4-symbolic",
        days_to_resolution=26,
        trivial_test="packet_out",
    ),
    Fault(
        "space_in_key_rejected",
        P4RT_SERVER,
        "Orchestration-agent API cannot represent the space character in keys; "
        "ACL entries containing a 0x20 byte are rejected",
        "p4-symbolic",
        days_to_resolution=34,
        trivial_test="table_entry_programming",
    ),
    # --- P4 toolchain -----------------------------------------------------
    Fault(
        "zero_byte_id_mangled",
        P4_TOOLCHAIN,
        "Zero bytes inside object IDs are mishandled, mis-routing requests",
        "p4-fuzzer",
        days_to_resolution=22,
        trivial_test="set_p4info",
    ),
    Fault(
        "bmv2_optional_zero_match",
        BMV2,
        "Simulator treats an absent optional match as 'must equal zero' "
        "instead of wildcard",
        "p4-fuzzer",
        days_to_resolution=7,
        stack="cerberus",
    ),
    Fault(
        "bmv2_lpm_shortest_prefix",
        BMV2,
        "Simulator's LPM comparator is inverted: the shortest matching "
        "prefix wins",
        "p4-fuzzer",
        days_to_resolution=11,
        stack="cerberus",
    ),
    # --- Orchestration agent ----------------------------------------------
    Fault(
        "wcmp_cleanup_on_partial_failure",
        ORCH_AGENT,
        "Does not clean up all WCMP group members when creation of one fails "
        "(capacity leak)",
        "p4-fuzzer",
        days_to_resolution=6,
    ),
    Fault(
        "wcmp_same_action_rejected",
        ORCH_AGENT,
        "Rejects WCMP groups with buckets sharing the same action, violating "
        "the P4RT specification",
        "p4-fuzzer",
        days_to_resolution=157,
        trivial_test="table_entry_programming",
        integration=True,
    ),
    Fault(
        "wcmp_update_removes_members",
        ORCH_AGENT,
        "Group-update logic removes unchanged group members",
        "p4-symbolic",
        days_to_resolution=3,
    ),
    Fault(
        "vrf_delete_fails",
        ORCH_AGENT,
        "VRF deletion fails due to incorrect ALPM flag usage; VRF response "
        "path is broken",
        "p4-fuzzer",
        days_to_resolution=15,
    ),
    # --- SyncD -------------------------------------------------------------
    Fault(
        "acl_invalid_cleanup_leak",
        SYNCD,
        "Invalid ACL entries are not cleaned up, causing RESOURCE_EXHAUSTED "
        "after 30 entries",
        "p4-fuzzer",
        days_to_resolution=120,
    ),
    Fault(
        "l3_submit_to_ingress_drop",
        SYNCD,
        "L3 forwarding not enabled for submit-to-ingress packets; they are "
        "dropped on the new chip",
        "p4-symbolic",
        days_to_resolution=19,
        integration=True,
    ),
    Fault(
        "dscp_remark_zero",
        SYNCD,
        "Switch re-marks DSCP to 0 in forwarded packets",
        "p4-symbolic",
        days_to_resolution=53,
        integration=True,
    ),
    # --- Switch Linux --------------------------------------------------------
    Fault(
        "port_sync_daemon_restart",
        SWITCH_LINUX,
        "A port sync daemon restarts unexpectedly, breaking all packet IO",
        "p4-symbolic",
        days_to_resolution=3,
        trivial_test="packet_in",
        integration=True,
    ),
    Fault(
        "daemon_vrf_conflict",
        SWITCH_LINUX,
        "A daemon creates conflicting VRF configurations with other services",
        "p4-symbolic",
        days_to_resolution=5,
        trivial_test="set_p4info",
        integration=True,
    ),
    Fault(
        "lldp_punt",
        SWITCH_LINUX,
        "A traditional LLDP daemon punts packets to the controller",
        "p4-symbolic",
        days_to_resolution=9,
        trivial_test="packet_in",
        integration=True,
    ),
    Fault(
        "ipv6_router_solicitation",
        SWITCH_LINUX,
        "Switch sends IPv6 router solicitation packets unexpectedly",
        "p4-symbolic",
        days_to_resolution=None,  # unresolved in the paper
        integration=True,
    ),
    Fault(
        "daemons_crash_on_link_down",
        SWITCH_LINUX,
        "Daemons crash when a network interface goes down, breaking packet IO",
        "p4-symbolic",
        days_to_resolution=164,
        integration=True,
    ),
    # --- gNMI ---------------------------------------------------------------
    Fault(
        "gnmi_port_disabled",
        GNMI,
        "Port configuration via gNMI leaves a data port administratively down",
        "p4-symbolic",
        days_to_resolution=12,
    ),
    Fault(
        "gnmi_mtu_truncation",
        GNMI,
        "MTU misconfiguration truncates large forwarded packets",
        "p4-symbolic",
        days_to_resolution=21,
    ),
    # --- Hardware -------------------------------------------------------------
    Fault(
        "ttl1_hw_trap_disagrees",
        HARDWARE,
        "New chip has a built-in trap that punts TTL 0/1 packets even when the "
        "model forwards them",
        "p4-fuzzer",
        days_to_resolution=28,
        integration=True,
    ),
    Fault(
        "port_speed_drop",
        HARDWARE,
        "Hardware drops packets on a port with a certain port speed due to "
        "electric interference",
        "p4-symbolic",
        days_to_resolution=41,
        stack="cerberus",
    ),
    # --- Input P4 program (bugs in the *model*) --------------------------------
    Fault(
        "model_missing_broadcast_drop",
        P4_PROGRAM,
        "P4 program does not reflect that the switch drops IPv4 packets with "
        "destination 255.255.255.255",
        "p4-symbolic",
        days_to_resolution=36,
    ),
    Fault(
        "model_wrong_icmp_field",
        P4_PROGRAM,
        "Program matches on the wrong ICMP field",
        "p4-symbolic",
        days_to_resolution=13,
        trivial_test="packet_in",
    ),
    Fault(
        "model_rewrite_before_acl",
        P4_PROGRAM,
        "Header fields get rewritten before the ACL is applied in the model, "
        "after it in the switch",
        "p4-symbolic",
        days_to_resolution=14,
    ),
    Fault(
        "model_rif_guarantee_too_high",
        P4_PROGRAM,
        "Resource guarantees for router_interface_table are unrealistically "
        "high for the new chip",
        "p4-fuzzer",
        days_to_resolution=47,
        integration=True,
    ),
    Fault(
        "cerberus_model_missing_broadcast_drop",
        P4_PROGRAM,
        "Cerberus P4 program does not reflect the chip's silent drop of "
        "IPv4 limited-broadcast packets",
        "p4-symbolic",
        days_to_resolution=21,
        stack="cerberus",
    ),
    # --- Cerberus switch software ----------------------------------------------
    Fault(
        "encap_dst_reversed",
        SWITCH_SOFTWARE,
        "Switch software reverses the destination IP address used for packet "
        "encapsulation (endianness)",
        "p4-symbolic",
        days_to_resolution=18,
        stack="cerberus",
    ),
    Fault(
        "decap_ignores_port",
        SWITCH_SOFTWARE,
        "Decap entries with an in_port qualifier decap packets from any port",
        "p4-symbolic",
        days_to_resolution=25,
        stack="cerberus",
    ),
    Fault(
        "tunnel_delete_leaves_state",
        SWITCH_SOFTWARE,
        "Deleting a tunnel leaves the encap rewrite active in hardware",
        "p4-fuzzer",
        days_to_resolution=9,
        stack="cerberus",
    ),
]

FAULTS_BY_NAME: Dict[str, Fault] = {f.name: f for f in FAULT_CATALOG}


def faults_for_stack(stack: str) -> List[Fault]:
    """Catalogue slice for one stack ('pins' or 'cerberus').

    The Cerberus stack also re-uses a handful of generic software faults
    under its coarse "Switch software" attribution (§6.1: limited
    visibility into the vendor's stack).
    """
    return [f for f in FAULT_CATALOG if f.stack == stack]
