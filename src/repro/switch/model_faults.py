"""Model-fault transforms: bugs that live in the *input P4 program*.

Table 1 attributes 15 PINS bugs and 3 Cerberus bugs to the input P4
program: the switch behaved correctly and the model was wrong (§6.1).  We
reproduce this class by *transforming the model handed to SwitchV* while
leaving the switch untouched: the harness validates the (buggy) model
against the (correct) switch and reports the divergence, after which a
human would root-cause it to the model — matching the paper's workflow.

Hardware-contract faults that manifest as "the model describes the old
chip" (the TTL 0/1 trap resurgence of §6.1) are also expressed as model
transforms, but keep their Hardware component attribution in the catalogue.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, Iterable

from repro.p4.ast import FieldRef, If, P4Program, Seq, Table, TableApply


def _filter_ifs(block: Seq, label: str) -> Seq:
    """Remove every If node with the given label, recursively."""
    nodes = []
    for node in block:
        if isinstance(node, If):
            if node.label == label:
                continue
            node = If(
                cond=node.cond,
                then_block=_filter_ifs(node.then_block, label),
                else_block=_filter_ifs(node.else_block, label),
                label=node.label,
            )
        nodes.append(node)
    return Seq(tuple(nodes))


def _map_tables(block: Seq, fn: Callable[[Table], Table]) -> Seq:
    nodes = []
    for node in block:
        if isinstance(node, TableApply):
            node = TableApply(fn(node.table))
        elif isinstance(node, If):
            node = If(
                cond=node.cond,
                then_block=_map_tables(node.then_block, fn),
                else_block=_map_tables(node.else_block, fn),
                label=node.label,
            )
        nodes.append(node)
    return Seq(tuple(nodes))


def _remove_block(program: P4Program, label: str) -> P4Program:
    return replace(
        program,
        ingress=_filter_ifs(program.ingress, label),
        egress=_filter_ifs(program.egress, label),
    )


def _wrong_icmp_field(program: P4Program) -> P4Program:
    """Model matches on icmp.code where the switch matches icmp.type."""

    def fix_table(table: Table) -> Table:
        if table.name != "acl_ingress_tbl":
            return table
        keys = tuple(
            replace(k, field=FieldRef("icmp.code")) if k.key_name == "icmp_type" else k
            for k in table.keys
        )
        return replace(table, keys=keys)

    return replace(
        program,
        ingress=_map_tables(program.ingress, fix_table),
        egress=_map_tables(program.egress, fix_table),
    )


def _rewrite_before_acl(program: P4Program) -> P4Program:
    """Model applies the ingress ACL before nexthop resolution (header
    rewrite), the switch applies it after — ACL entries matching rewritten
    fields (TTL, MACs) diverge.  The two nodes live inside the
    not-dropped gate, so the reorder recurses through If blocks."""

    def reorder(block: Seq) -> Seq:
        nodes = list(block)
        acl_index = next(
            (
                i
                for i, n in enumerate(nodes)
                if isinstance(n, TableApply) and n.table.name == "acl_ingress_tbl"
            ),
            None,
        )
        resolution_index = next(
            (
                i
                for i, n in enumerate(nodes)
                if isinstance(n, If) and n.label == "resolution_gate"
            ),
            None,
        )
        if (
            acl_index is not None
            and resolution_index is not None
            and acl_index > resolution_index
        ):
            acl_node = nodes.pop(acl_index)
            nodes.insert(resolution_index, acl_node)
        out = []
        for node in nodes:
            if isinstance(node, If):
                node = If(
                    cond=node.cond,
                    then_block=reorder(node.then_block),
                    else_block=reorder(node.else_block),
                    label=node.label,
                )
            out.append(node)
        return Seq(tuple(out))

    return replace(program, ingress=reorder(program.ingress))


# Fault name -> transform.
MODEL_TRANSFORMS: Dict[str, Callable[[P4Program], P4Program]] = {
    "ttl1_hw_trap_disagrees": lambda p: _remove_block(p, "ttl_trap"),
    "model_missing_broadcast_drop": lambda p: _remove_block(p, "broadcast_drop"),
    "cerberus_model_missing_broadcast_drop": lambda p: _remove_block(p, "broadcast_drop"),
    "model_wrong_icmp_field": _wrong_icmp_field,
    "model_rewrite_before_acl": _rewrite_before_acl,
    # model_rif_guarantee_too_high needs no model change: the asic's
    # capacity shrinks below the model's guarantee (see AsicSim.create_rif).
    "model_rif_guarantee_too_high": lambda p: p,
}


def apply_model_faults(program: P4Program, faults: Iterable[str]) -> P4Program:
    """The model SwitchV should be handed when these faults are active."""
    for name in faults:
        transform = MODEL_TRANSFORMS.get(name)
        if transform is not None:
            program = transform(program)
    return program


def is_model_fault(name: str) -> bool:
    return name in MODEL_TRANSFORMS
