"""A model-faithful reference switch.

Implements the P4Runtime service by interpreting the P4 program directly
(the reference decoder for validation, the BMv2 interpreter with a seeded
hash for forwarding).  Two uses:

* harness self-tests — SwitchV run against this switch with the same model
  must report zero incidents (the "no false positives" invariant);
* programs that do not fit the SAI shape (the toy program), where the
  layered PINS stack has no table mapping.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.bmv2.entries import EntryDecodeError, InstalledEntry, decode_table_entry
from repro.bmv2.interpreter import Interpreter, SeededHash
from repro.bmv2.packet import PacketError, deparse_packet, parse_packet
from repro.p4.ast import P4Program
from repro.p4.constraints import parse_constraint
from repro.p4.constraints.evaluator import evaluate_constraint
from repro.p4.constraints.refs import ReferenceGraph
from repro.p4.p4info import P4Info
from repro.p4rt.messages import (
    PacketIn,
    PacketOut,
    ReadRequest,
    ReadResponse,
    TableEntry,
    Update,
    UpdateType,
    WriteRequest,
    WriteResponse,
)
from repro.p4rt.service import P4RuntimeService
from repro.p4rt.status import (
    Status,
    already_exists,
    failed_precondition,
    invalid_argument,
    not_found,
    resource_exhausted,
)
from repro.switch.stack import ObservedForwarding


class ReferenceSwitch(P4RuntimeService):
    """A switch whose behaviour *is* the model's behaviour."""

    def __init__(self, program: P4Program, hash_seed: int = 7) -> None:
        self.program = program
        self._hash = SeededHash(seed=hash_seed)
        self._p4info: Optional[P4Info] = None
        self._refs: Optional[ReferenceGraph] = None
        self._constraints: Dict[int, object] = {}
        self._store: Dict[Tuple, Tuple[TableEntry, InstalledEntry]] = {}
        self._packet_ins: List[PacketIn] = []
        self._egress_log: List[Tuple[int, bytes]] = []

    # ------------------------------------------------------------------
    # P4RuntimeService
    # ------------------------------------------------------------------
    def set_forwarding_pipeline_config(self, p4info: P4Info) -> Status:
        self._p4info = p4info
        self._refs = ReferenceGraph(p4info)
        self._constraints = {
            tid: parse_constraint(t.entry_restriction)
            for tid, t in p4info.tables.items()
            if t.entry_restriction
        }
        return Status()

    def write(self, request: WriteRequest) -> WriteResponse:
        if self._p4info is None:
            return WriteResponse(
                statuses=tuple(
                    failed_precondition("no pipeline config") for _ in request.updates
                )
            )
        return WriteResponse(
            statuses=tuple(self._apply(update) for update in request.updates)
        )

    def _apply(self, update: Update) -> Status:
        try:
            decoded = decode_table_entry(self._p4info, update.entry)
        except EntryDecodeError as exc:
            return invalid_argument(str(exc))
        table = self._p4info.tables[update.entry.table_id]
        constraint = self._constraints.get(table.id)
        if (
            constraint is not None
            and update.type is not UpdateType.DELETE
            and not evaluate_constraint(constraint, decoded.key_values())
        ):
            return invalid_argument(f"violates @entry_restriction on {table.name}")
        key = decoded.identity()
        if update.type is UpdateType.INSERT:
            if key in self._store:
                return already_exists(table.name)
            if sum(1 for k in self._store if k[0] == table.name) >= table.size:
                return resource_exhausted(table.name)
            if self._dangling(update.entry):
                return invalid_argument("dangling reference")
            self._store[key] = (update.entry, decoded)
            return Status()
        if update.type is UpdateType.MODIFY:
            if key not in self._store:
                return not_found(table.name)
            if self._dangling(update.entry):
                return invalid_argument("dangling reference")
            self._store[key] = (update.entry, decoded)
            return Status()
        if key not in self._store:
            return not_found(table.name)
        if self._orphans(key):
            return failed_precondition("entry is still referenced")
        del self._store[key]
        return Status()

    def _available(self, excluding: Optional[Tuple] = None):
        return self._refs.collect_state(
            wire
            for key, (wire, _decoded) in self._store.items()
            if key != excluding
        )

    def _dangling(self, entry: TableEntry) -> bool:
        return bool(self._refs.dangling_references(entry, self._available()))

    def _orphans(self, key: Tuple) -> bool:
        remaining = self._available(excluding=key)
        return any(
            self._refs.dangling_references(wire, remaining)
            for other, (wire, _d) in self._store.items()
            if other != key
        )

    def read(self, request: ReadRequest) -> ReadResponse:
        entries = [
            wire
            for _key, (wire, _decoded) in self._store.items()
            if not request.table_id or wire.table_id == request.table_id
        ]
        return ReadResponse(entries=tuple(entries))

    def packet_out(self, packet: PacketOut) -> Status:
        if packet.submit_to_ingress:
            try:
                parsed = parse_packet(packet.payload, self.program.parser.pattern)
            except PacketError as exc:
                return invalid_argument(str(exc))
            observed = self.send_packet(deparse_packet(parsed), ingress_port=0)
            if observed.egress_port is not None:
                self._egress_log.append(
                    (observed.egress_port, deparse_packet(observed.packet))
                )
            return Status()
        self._egress_log.append((packet.egress_port, packet.payload))
        return Status()

    def drain_packet_ins(self) -> List[PacketIn]:
        out = self._packet_ins
        self._packet_ins = []
        return out

    def drain_egress(self) -> List[Tuple[int, bytes]]:
        out = self._egress_log
        self._egress_log = []
        return out

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def _state(self) -> Dict[str, List[InstalledEntry]]:
        state: Dict[str, List[InstalledEntry]] = {}
        for _wire, decoded in self._store.values():
            state.setdefault(decoded.table_name, []).append(decoded)
        return state

    def send_packet(self, payload: bytes, ingress_port: int) -> ObservedForwarding:
        parsed = parse_packet(payload, self.program.parser.pattern)
        interp = Interpreter(self.program, self._state(), self._hash)
        result = interp.run(parsed, ingress_port)
        if result.punted:
            self._packet_ins.append(
                PacketIn(payload=deparse_packet(result.packet), ingress_port=ingress_port)
            )
        return ObservedForwarding(
            egress_port=result.egress_port,
            punted=result.punted,
            packet=result.packet,
            mirror_copies=list(result.mirror_copies),
        )
