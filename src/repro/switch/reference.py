"""A model-faithful reference switch.

Implements the P4Runtime service by interpreting the P4 program directly
(the reference decoder for validation, the BMv2 interpreter with a seeded
hash for forwarding).  Two uses:

* harness self-tests — SwitchV run against this switch with the same model
  must report zero incidents (the "no false positives" invariant);
* programs that do not fit the SAI shape (the toy program), where the
  layered PINS stack has no table mapping.

State bookkeeping is incremental by default (``indexed=True``): per-table
entry counters, per-table :class:`~repro.bmv2.index.TableIndex` lookup
structures handed to every interpreter run, a
:class:`~repro.p4.constraints.refs.ReferenceIndex` answering the
dangling/orphan questions, and per-table read views — so per-update and
per-packet cost is independent of how many entries are installed.
``indexed=False`` keeps the original linear recomputation as the baseline
the differential tests and benchmarks compare against; responses, reads
and forwarding are identical either way.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.bmv2.entries import EntryDecodeError, InstalledEntry, decode_table_entry
from repro.bmv2.index import TableIndex
from repro.bmv2.interpreter import Interpreter, SeededHash
from repro.bmv2.packet import PacketError, deparse_packet, parse_packet
from repro.p4.ast import P4Program
from repro.p4.constraints import parse_constraint
from repro.p4.constraints.evaluator import evaluate_constraint
from repro.p4.constraints.refs import ReferenceGraph, ReferenceIndex
from repro.p4.p4info import P4Info
from repro.p4rt.messages import (
    PacketIn,
    PacketOut,
    ReadRequest,
    ReadResponse,
    TableEntry,
    Update,
    UpdateType,
    WriteRequest,
    WriteResponse,
)
from repro.p4rt.service import P4RuntimeService
from repro.p4rt.status import (
    Status,
    already_exists,
    failed_precondition,
    invalid_argument,
    not_found,
    resource_exhausted,
)
from repro.switch.stack import ObservedForwarding


class ReferenceSwitch(P4RuntimeService):
    """A switch whose behaviour *is* the model's behaviour."""

    # Class-level default so whole campaigns can be flipped to the linear
    # baseline without threading a parameter through every constructor.
    default_indexed = True

    def __init__(
        self,
        program: P4Program,
        hash_seed: int = 7,
        indexed: Optional[bool] = None,
    ) -> None:
        self.program = program
        self.indexed = self.default_indexed if indexed is None else indexed
        self._hash = SeededHash(seed=hash_seed)
        self._p4info: Optional[P4Info] = None
        self._refs: Optional[ReferenceGraph] = None
        self._constraints: Dict[int, object] = {}
        self._store: Dict[Tuple, Tuple[TableEntry, InstalledEntry]] = {}
        self._packet_ins: List[PacketIn] = []
        self._egress_log: List[Tuple[int, bytes]] = []
        # Incremental bookkeeping (mirrors _store; maintained when indexed).
        self._tables_by_name = {t.name: t for t in program.tables()}
        self._counts: Dict[str, int] = {}
        self._orders: Dict[Tuple, int] = {}
        self._next_order = 0
        self._indices: Dict[str, TableIndex] = {}
        self._refindex: Optional[ReferenceIndex] = None
        self._by_table_wire: Dict[int, Dict[Tuple, TableEntry]] = {}
        # Per-table decoded entries in install order (MODIFY keeps its
        # position, matching the global store's dict semantics) — the
        # interpreter's fallback for tables with no AST declaration.
        self._decoded_by_table: Dict[str, Dict[Tuple, InstalledEntry]] = {}

    # ------------------------------------------------------------------
    # P4RuntimeService
    # ------------------------------------------------------------------
    def set_forwarding_pipeline_config(self, p4info: P4Info) -> Status:
        self._p4info = p4info
        self._refs = ReferenceGraph(p4info)
        self._constraints = {
            tid: parse_constraint(t.entry_restriction)
            for tid, t in p4info.tables.items()
            if t.entry_restriction
        }
        # The reference index derives from the new p4info; the store (and
        # the p4info-independent lookup structures) survive a config push,
        # as they always have.
        self._refindex = ReferenceIndex(self._refs)
        for key, (wire, _decoded) in self._store.items():
            self._refindex.insert(key, wire)
        return Status()

    def write(self, request: WriteRequest) -> WriteResponse:
        if self._p4info is None:
            return WriteResponse(
                statuses=tuple(
                    failed_precondition("no pipeline config") for _ in request.updates
                )
            )
        return WriteResponse(
            statuses=tuple(self._apply(update) for update in request.updates)
        )

    def _apply(self, update: Update) -> Status:
        try:
            decoded = decode_table_entry(self._p4info, update.entry)
        except EntryDecodeError as exc:
            return invalid_argument(str(exc))
        table = self._p4info.tables[update.entry.table_id]
        constraint = self._constraints.get(table.id)
        if (
            constraint is not None
            and update.type is not UpdateType.DELETE
            and not evaluate_constraint(constraint, decoded.key_values())
        ):
            return invalid_argument(f"violates @entry_restriction on {table.name}")
        key = decoded.identity()
        if update.type is UpdateType.INSERT:
            if key in self._store:
                return already_exists(table.name)
            if self._count(table.name) >= table.size:
                return resource_exhausted(table.name)
            if self._dangling(update.entry):
                return invalid_argument("dangling reference")
            self._store[key] = (update.entry, decoded)
            if self.indexed:
                self._track_insert(key, update.entry, decoded)
            return Status()
        if update.type is UpdateType.MODIFY:
            if key not in self._store:
                return not_found(table.name)
            if self._dangling(update.entry):
                return invalid_argument("dangling reference")
            _old_wire, old_decoded = self._store[key]
            self._store[key] = (update.entry, decoded)
            if self.indexed:
                self._track_modify(key, old_decoded, update.entry, decoded)
            return Status()
        if key not in self._store:
            return not_found(table.name)
        if self._orphans(key):
            return failed_precondition("entry is still referenced")
        old_wire, old_decoded = self._store.pop(key)
        if self.indexed:
            self._track_delete(key, old_wire, old_decoded)
        return Status()

    # ------------------------------------------------------------------
    # Incremental bookkeeping
    # ------------------------------------------------------------------
    def _track_insert(self, key: Tuple, wire: TableEntry, decoded: InstalledEntry) -> None:
        name = decoded.table_name
        order = self._next_order
        self._next_order += 1
        self._orders[key] = order
        self._counts[name] = self._counts.get(name, 0) + 1
        index = self._index_for(name)
        if index is not None:
            index.add(order, decoded)
        self._decoded_by_table.setdefault(name, {})[key] = decoded
        if self._refindex is not None:
            self._refindex.insert(key, wire)
        self._by_table_wire.setdefault(wire.table_id, {})[key] = wire

    def _track_modify(
        self,
        key: Tuple,
        old_decoded: InstalledEntry,
        wire: TableEntry,
        decoded: InstalledEntry,
    ) -> None:
        # Same identity, new action: the entry keeps its installation order
        # (a MODIFY replaces in place; it does not move the entry), so
        # relative match order is preserved exactly.
        index = self._index_for(decoded.table_name)
        if index is not None:
            index.replace(old_decoded, self._orders[key], decoded)
        self._decoded_by_table[decoded.table_name][key] = decoded
        if self._refindex is not None:
            self._refindex.replace(key, wire)
        self._by_table_wire[wire.table_id][key] = wire

    def _track_delete(self, key: Tuple, wire: TableEntry, decoded: InstalledEntry) -> None:
        name = decoded.table_name
        index = self._index_for(name)
        if index is not None:
            index.remove(decoded)
        del self._decoded_by_table[name][key]
        self._orders.pop(key, None)
        count = self._counts.get(name, 0) - 1
        if count > 0:
            self._counts[name] = count
        else:
            self._counts.pop(name, None)
        if self._refindex is not None:
            self._refindex.delete(key)
        per_table = self._by_table_wire.get(wire.table_id)
        if per_table is not None:
            per_table.pop(key, None)

    def _index_for(self, table_name: str) -> Optional[TableIndex]:
        index = self._indices.get(table_name)
        if index is None:
            table = self._tables_by_name.get(table_name)
            if table is None:
                return None  # no AST declaration: interpreter scans the list
            index = self._indices[table_name] = TableIndex(table)
        return index

    def _count(self, table_name: str) -> int:
        if self.indexed:
            return self._counts.get(table_name, 0)
        return sum(1 for k in self._store if k[0] == table_name)

    def preload(self, entries: Sequence[TableEntry]) -> int:
        """Bulk-load valid entries, bypassing per-update admission checks.

        Benchmark/test seeding helper: installing N entries through
        :meth:`write` costs O(N^2) on the linear baseline, which would make
        comparing marginal per-update cost against a pre-seeded state
        impossible at production scale.  Entries must decode; duplicates
        overwrite (insert semantics are not enforced).
        """
        if self._p4info is None:
            raise RuntimeError("preload requires a forwarding pipeline config")
        loaded = 0
        for wire in entries:
            decoded = decode_table_entry(self._p4info, wire)
            key = decoded.identity()
            existed = self._store.get(key)
            self._store[key] = (wire, decoded)
            if self.indexed:
                if existed is not None:
                    self._track_modify(key, existed[1], wire, decoded)
                else:
                    self._track_insert(key, wire, decoded)
            loaded += 1
        return loaded

    # ------------------------------------------------------------------
    # Referential integrity
    # ------------------------------------------------------------------
    def _available(self, excluding: Optional[Tuple] = None):
        return self._refs.collect_state(
            wire
            for key, (wire, _decoded) in self._store.items()
            if key != excluding
        )

    def _dangling(self, entry: TableEntry) -> bool:
        if self.indexed and self._refindex is not None:
            return bool(self._refs.dangling_references(entry, self._refindex.available))
        return bool(self._refs.dangling_references(entry, self._available()))

    def _orphans(self, key: Tuple) -> bool:
        if self.indexed and self._refindex is not None:
            return self._refindex.would_orphan(key)
        remaining = self._available(excluding=key)
        return any(
            self._refs.dangling_references(wire, remaining)
            for other, (wire, _d) in self._store.items()
            if other != key
        )

    def read(self, request: ReadRequest) -> ReadResponse:
        if not request.table_id:
            return ReadResponse(
                entries=tuple(wire for wire, _decoded in self._store.values())
            )
        if self.indexed:
            per_table = self._by_table_wire.get(request.table_id, {})
            return ReadResponse(entries=tuple(per_table.values()))
        entries = [
            wire
            for _key, (wire, _decoded) in self._store.items()
            if wire.table_id == request.table_id
        ]
        return ReadResponse(entries=tuple(entries))

    def packet_out(self, packet: PacketOut) -> Status:
        if packet.submit_to_ingress:
            try:
                parsed = parse_packet(packet.payload, self.program.parser.pattern)
            except PacketError as exc:
                return invalid_argument(str(exc))
            observed = self.send_packet(deparse_packet(parsed), ingress_port=0)
            if observed.egress_port is not None:
                self._egress_log.append(
                    (observed.egress_port, deparse_packet(observed.packet))
                )
            return Status()
        self._egress_log.append((packet.egress_port, packet.payload))
        return Status()

    def drain_packet_ins(self) -> List[PacketIn]:
        out = self._packet_ins
        self._packet_ins = []
        return out

    def drain_egress(self) -> List[Tuple[int, bytes]]:
        out = self._egress_log
        self._egress_log = []
        return out

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def _state(self) -> Dict[str, List[InstalledEntry]]:
        state: Dict[str, List[InstalledEntry]] = {}
        for _wire, decoded in self._store.values():
            state.setdefault(decoded.table_name, []).append(decoded)
        return state

    def send_packet(self, payload: bytes, ingress_port: int) -> ObservedForwarding:
        parsed = parse_packet(payload, self.program.parser.pattern)
        if self.indexed:
            # Every declared table has a persistently maintained index; the
            # state mapping only covers tables the AST does not declare
            # (the interpreter falls back to scanning those).
            fallback = {
                name: list(entries.values())
                for name, entries in self._decoded_by_table.items()
                if name not in self._indices and entries
            }
            interp = Interpreter(
                self.program, fallback, self._hash, table_indices=self._indices
            )
        else:
            interp = Interpreter(self.program, self._state(), self._hash)
        result = interp.run(parsed, ingress_port)
        if result.punted:
            self._packet_ins.append(
                PacketIn(payload=deparse_packet(result.packet), ingress_port=ingress_port)
            )
        return ObservedForwarding(
            egress_port=result.egress_port,
            punted=result.punted,
            packet=result.packet,
            mirror_copies=list(result.mirror_copies),
        )
