"""gNMI-ish configuration layer: port administration.

SwitchV does not validate "management" aspects (§2 "Scope"), but gNMI bugs
still surfaced in Table 1 because misconfigured ports change the data-plane
behaviour the P4 model promises.  This layer configures the ASIC's port
admin state; its faults leave ports silently down.
"""

from __future__ import annotations

from typing import Iterable, Set

from repro.switch.asic import AsicSim
from repro.switch.faults import FaultRegistry


class GnmiConfig:
    """Port-level configuration applied at stack startup."""

    def __init__(self, asic: AsicSim, faults: FaultRegistry) -> None:
        self._asic = asic
        self._faults = faults

    def apply_port_config(self, ports: Iterable[int]) -> None:
        """Bring up the given data ports (the fleet's standard config)."""
        up: Set[int] = set(ports)
        if self._faults.enabled("gnmi_port_disabled"):
            # The config translation drops one port's enable leaf; the port
            # stays administratively down.
            up.discard(3)
        self._asic.ports_up = up

    def set_port_state(self, port: int, up: bool) -> None:
        if up:
            self._asic.ports_up.add(port)
        else:
            self._asic.ports_up.discard(port)
