"""The switch's P4Runtime application layer.

Receives controller requests, validates them against the pushed P4Info and
the P4-constraints annotations, keeps the entry store used by reads, and
drives the orchestration agent.  This is PINS's newest layer and — as
Table 1 shows — its buggiest: most of the catalogue's control-plane faults
are implemented at decision points in this file.

Validation here is written independently of the reference decoder in
:mod:`repro.bmv2.entries`; the fuzzer's oracle compares the two
behaviourally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.bmv2.entries import (
    DecodedAction,
    DecodedActionSet,
    DecodedMatch,
    InstalledEntry,
)
from repro.p4.ast import MatchKind
from repro.p4.constraints import parse_constraint
from repro.p4.constraints.evaluator import evaluate_constraint
from repro.p4.constraints.lang import ConstraintSyntaxError
from repro.p4.constraints.refs import ReferenceGraph, ReferenceIndex
from repro.p4.p4info import P4Info, TableInfo
from repro.p4rt import codec
from repro.p4rt.messages import (
    ActionInvocation,
    ActionProfileActionSet,
    FieldMatch,
    ReadRequest,
    ReadResponse,
    TableEntry,
    Update,
    UpdateType,
    WriteRequest,
    WriteResponse,
)
from repro.p4rt.status import (
    Code,
    Status,
    already_exists,
    failed_precondition,
    internal,
    invalid_argument,
    not_found,
    resource_exhausted,
)
from repro.switch.faults import FaultRegistry
from repro.switch.orchagent import OrchAgent, OrchAgentError
from repro.switch.sai import SaiStatus

_SAI_TO_GRPC = {
    SaiStatus.ITEM_ALREADY_EXISTS: Code.ALREADY_EXISTS,
    SaiStatus.ITEM_NOT_FOUND: Code.NOT_FOUND,
    SaiStatus.INSUFFICIENT_RESOURCES: Code.RESOURCE_EXHAUSTED,
    SaiStatus.NOT_SUPPORTED: Code.UNIMPLEMENTED,
    SaiStatus.FAILURE: Code.INTERNAL,
}


@dataclass
class _StoredEntry:
    wire: TableEntry
    decoded: InstalledEntry


class P4RuntimeServer:
    """The P4Runtime layer of the PINS stack.

    State bookkeeping is incremental by default (``indexed=True``):
    per-table entry counters, a reverse-reference index answering the
    delete-orphan question, and per-table read views — the paths that were
    linear in store size.  ``indexed=False`` keeps the original linear
    recomputation as the differential baseline; statuses and reads are
    identical either way.  The index mirrors the *store*, so seeded faults
    that desynchronise the store from hardware (``modify_keeps_old_params``)
    desynchronise the index with it — exactly like the linear scans they
    replace.
    """

    # Class-level default so whole campaigns can be flipped to the linear
    # baseline without threading a parameter through every constructor.
    default_indexed = True

    def __init__(
        self,
        orchagent: OrchAgent,
        faults: FaultRegistry,
        indexed: Optional[bool] = None,
    ) -> None:
        self._orchagent = orchagent
        self._faults = faults
        self.indexed = self.default_indexed if indexed is None else indexed
        self._p4info: Optional[P4Info] = None
        self._refs: Optional[ReferenceGraph] = None
        self._store: Dict[Tuple, _StoredEntry] = {}
        self._constraints: Dict[int, object] = {}
        self._available = None  # incremental referenceable state
        self._counts: Dict[str, int] = {}
        self._refindex: Optional[ReferenceIndex] = None
        self._by_table_wire: Dict[int, Dict[Tuple, TableEntry]] = {}

    # ------------------------------------------------------------------
    # Pipeline config
    # ------------------------------------------------------------------
    def set_pipeline_config(self, p4info: P4Info) -> Status:
        try:
            constraints = {}
            for tid, table in p4info.tables.items():
                if table.entry_restriction:
                    constraints[tid] = parse_constraint(table.entry_restriction)
        except ConstraintSyntaxError as exc:
            if self._faults.enabled("p4info_push_failure_swallowed"):
                return Status()  # failure silently swallowed
            return invalid_argument(f"bad entry restriction: {exc}")
        if self._faults.enabled("p4info_push_failure_swallowed"):
            # The push fails internally (the agent never receives the
            # config) but the error is not propagated to the controller.
            return Status()
        self._p4info = p4info
        self._refs = ReferenceGraph(p4info)
        self._constraints = constraints
        self._available = self._refs.collect_state(
            stored.wire for stored in self._store.values()
        )
        self._refindex = ReferenceIndex(self._refs)
        for key, stored in self._store.items():
            self._refindex.insert(key, stored.wire)
        return Status()

    @property
    def configured(self) -> bool:
        return self._p4info is not None

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def write(self, request: WriteRequest) -> WriteResponse:
        if self._p4info is None:
            return WriteResponse(
                statuses=tuple(
                    failed_precondition("no forwarding pipeline config")
                    for _ in request.updates
                )
            )
        statuses: List[Status] = []
        abort_rest = False
        for update in request.updates:
            if abort_rest:
                statuses.append(Status(Code.ABORTED, "batch aborted"))
                continue
            status = self._apply_update(update)
            statuses.append(status)
            if (
                not status.ok
                and status.code is Code.NOT_FOUND
                and update.type is UpdateType.DELETE
                and self._faults.enabled("delete_nonexistent_fails_batch")
            ):
                # The buggy server wraps the whole batch in one transaction:
                # one bad delete poisons every other update, including the
                # ones already applied (which it does not roll back in
                # hardware — only in its own store).
                abort_rest = True
        if abort_rest:
            statuses = [
                s if not s.ok else Status(Code.ABORTED, "batch aborted") for s in statuses
            ]
        return WriteResponse(statuses=tuple(statuses))

    def _apply_update(self, update: Update) -> Status:
        entry = update.entry
        table = self._lookup_table(entry.table_id)
        if table is None:
            return invalid_argument(f"unknown table id 0x{entry.table_id:08x}")
        try:
            decoded = self._validate_entry(
                table, entry, check_constraint=update.type is not UpdateType.DELETE
            )
        except _ValidationFailure as exc:
            return exc.status
        key = decoded.identity()
        if update.type is UpdateType.INSERT:
            return self._insert(table, entry, decoded, key)
        if update.type is UpdateType.MODIFY:
            return self._modify(table, entry, decoded, key)
        return self._delete(table, decoded, key)

    def _insert(self, table, entry, decoded, key) -> Status:
        if key in self._store:
            if self._faults.enabled("duplicate_entry_wrong_error"):
                return internal("could not program entry")  # wrong code
            return already_exists(f"entry already exists in {table.name}")
        if self.indexed:
            count = self._counts.get(table.name, 0)
        else:
            count = sum(1 for k in self._store if k[0] == table.name)
        if count >= table.size:
            # Rejecting beyond the guaranteed size is admissible.
            return resource_exhausted(f"table {table.name} is full ({table.size})")
        dangling = self._refs.dangling_references(
            entry, self._available_values()
        )
        if dangling:
            ref = dangling[0]
            return invalid_argument(
                f"dangling reference {ref.source} -> "
                f"{ref.target_table}.{ref.target_key} = {ref.value}"
            )
        status = self._dispatch("insert", decoded)
        if status.ok:
            self._store[key] = _StoredEntry(wire=entry, decoded=decoded)
            if self.indexed:
                self._counts[table.name] = self._counts.get(table.name, 0) + 1
                self._refindex.insert(key, entry)
                self._by_table_wire.setdefault(entry.table_id, {})[key] = entry
            else:
                self._track_insert(entry)
        return status

    def _modify(self, table, entry, decoded, key) -> Status:
        existing = self._store.get(key)
        if existing is None:
            return not_found(f"no such entry in {table.name}")
        dangling = self._refs.dangling_references(entry, self._available_values())
        if dangling:
            ref = dangling[0]
            return invalid_argument(
                f"dangling reference {ref.source} -> "
                f"{ref.target_table}.{ref.target_key} = {ref.value}"
            )
        status = self._dispatch("modify", decoded)
        if status.ok:
            if self._faults.enabled("modify_keeps_old_params"):
                # The new action parameters never reach the store or the
                # hardware; the write still reports success.  The index
                # mirrors the store, so it keeps the old entry too.
                pass
            else:
                self._store[key] = _StoredEntry(wire=entry, decoded=decoded)
                if self.indexed:
                    self._refindex.replace(key, entry)
                    self._by_table_wire.setdefault(entry.table_id, {})[key] = entry
        return status

    def _delete(self, table, decoded, key) -> Status:
        existing = self._store.get(key)
        if existing is None:
            return not_found(f"no such entry in {table.name}")
        # Referential integrity: refuse to orphan existing references.
        if self._refs.is_referenced_table(table.name):
            if self.indexed:
                if self._refindex.would_orphan(key):
                    return failed_precondition(
                        f"entry in {table.name} is still referenced"
                    )
            else:
                remaining = self._available_values(excluding=key)
                for other_key, stored in self._store.items():
                    if other_key == key:
                        continue
                    if self._refs.dangling_references(stored.wire, remaining):
                        return failed_precondition(
                            f"entry in {table.name} is still referenced"
                        )
        status = self._dispatch("delete", decoded)
        if status.ok:
            wire = self._store[key].wire
            del self._store[key]
            if self.indexed:
                count = self._counts.get(table.name, 0) - 1
                if count > 0:
                    self._counts[table.name] = count
                else:
                    self._counts.pop(table.name, None)
                self._refindex.delete(key)
                per_table = self._by_table_wire.get(wire.table_id)
                if per_table is not None:
                    per_table.pop(key, None)
            else:
                self._track_delete(wire)
        return status

    def _dispatch(self, op: str, decoded: InstalledEntry) -> Status:
        try:
            self._orchagent.apply(op, decoded)
        except OrchAgentError as exc:
            return Status(_SAI_TO_GRPC.get(exc.status, Code.INTERNAL), exc.detail)
        return Status()

    def _available_values(self, excluding: Optional[Tuple] = None):
        if excluding is None:
            if self.indexed:
                return self._refindex.available
            return self._available
        # Delete checks need the state without one entry; derive it cheaply.
        derived = self._available.copy()
        stored = self._store.get(excluding)
        if stored is not None:
            exported = self._refs.exported_keyset(stored.wire)
            if exported is not None:
                derived.remove(*exported)
        return derived

    def _track_insert(self, entry: TableEntry) -> None:
        exported = self._refs.exported_keyset(entry)
        if exported is not None:
            self._available.add(*exported)

    def _track_delete(self, entry: TableEntry) -> None:
        exported = self._refs.exported_keyset(entry)
        if exported is not None:
            self._available.remove(*exported)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def read(self, request: ReadRequest) -> ReadResponse:
        if request.table_id and self.indexed:
            # Serve single-table reads from the per-table view instead of
            # scanning the whole store (its order — insertion order with
            # MODIFY in place — matches the store's filtered order).
            wires = self._by_table_wire.get(request.table_id, {}).values()
        else:
            wires = (stored.wire for stored in self._store.values())
        drop_ternary = self._faults.enabled("read_ternary_unsupported")
        entries = []
        for wire in wires:
            if request.table_id and wire.table_id != request.table_id:
                continue
            if drop_ternary and any(m.kind == "ternary" for m in wire.matches):
                continue  # silently omitted from the read-back
            entries.append(wire)
        return ReadResponse(entries=tuple(entries))

    # ------------------------------------------------------------------
    # Validation (independent of the reference decoder)
    # ------------------------------------------------------------------
    def _lookup_table(self, table_id: int) -> Optional[TableInfo]:
        if self._faults.enabled("zero_byte_id_mangled"):
            # IDs round-trip through a string layer that cannot represent
            # interior zero bytes; IDs containing one collapse and no longer
            # resolve.
            raw = table_id.to_bytes(4, "big")
            if b"\x00" in raw.lstrip(b"\x00"):
                return None
        return self._p4info.tables.get(table_id)

    def _validate_entry(
        self, table: TableInfo, entry: TableEntry, check_constraint: bool = True
    ) -> InstalledEntry:
        matches = self._validate_matches(table, entry)
        self._validate_priority(table, entry)
        action = self._validate_action(table, entry)
        decoded = InstalledEntry(
            table_name=table.name,
            matches=tuple(sorted(matches, key=lambda m: m.key_name)),
            action=action,
            priority=entry.priority,
        )
        # @entry_restriction governs what may be *installed*; a DELETE only
        # identifies an entry (which, if constraint-violating, simply cannot
        # exist and falls out as NOT_FOUND).
        if check_constraint:
            self._validate_constraint(table, decoded)
        self._validate_quirks(table, entry)
        return decoded

    def _validate_matches(self, table: TableInfo, entry: TableEntry) -> List[DecodedMatch]:
        seen: Set[int] = set()
        out: List[DecodedMatch] = []
        for fm in entry.matches:
            if fm.field_id in seen:
                raise _ValidationFailure(
                    invalid_argument(f"duplicate match field {fm.field_id}")
                )
            seen.add(fm.field_id)
            mf = table.match_field_by_id(fm.field_id)
            if mf is None:
                raise _ValidationFailure(
                    invalid_argument(f"unknown match field {fm.field_id} in {table.name}")
                )
            if fm.kind != mf.match_type.value:
                raise _ValidationFailure(
                    invalid_argument(
                        f"match kind {fm.kind} does not match {mf.match_type.value}"
                    )
                )
            out.append(self._decode_match(table, mf, fm))
        for mf in table.match_fields:
            if mf.id in seen:
                continue
            if mf.match_type is MatchKind.EXACT:
                raise _ValidationFailure(
                    invalid_argument(f"missing mandatory field {mf.name}")
                )
            out.append(
                DecodedMatch(
                    key_name=mf.name, kind=mf.match_type, value=0, mask=0, prefix_len=0,
                    present=False,
                )
            )
        return out

    def _decode_value(self, data: bytes, bitwidth: int, what: str) -> int:
        if self._faults.enabled("zero_byte_id_mangled"):
            # Interior zero bytes get dropped by the string layer before
            # decoding, silently corrupting the value.
            data = bytes(b for b in data if b != 0) or b"\x00"
        if not codec.is_canonical(data):
            raise _ValidationFailure(
                invalid_argument(f"{what}: non-canonical value {data.hex()}")
            )
        value = int.from_bytes(data, "big")
        if value >= 1 << bitwidth:
            raise _ValidationFailure(
                invalid_argument(f"{what}: value exceeds {bitwidth} bits")
            )
        return value

    def _decode_match(self, table: TableInfo, mf, fm: FieldMatch) -> DecodedMatch:
        what = f"{table.name}.{mf.name}"
        value = self._decode_value(fm.value, mf.bitwidth, what)
        if mf.match_type is MatchKind.EXACT:
            return DecodedMatch(
                key_name=mf.name, kind=mf.match_type, value=value,
                mask=(1 << mf.bitwidth) - 1, prefix_len=mf.bitwidth,
            )
        if mf.match_type is MatchKind.LPM:
            if not 0 < fm.prefix_len <= mf.bitwidth:
                raise _ValidationFailure(
                    invalid_argument(f"{what}: bad prefix length {fm.prefix_len}")
                )
            mask = codec.mask_for_prefix(fm.prefix_len, mf.bitwidth)
            if value & ~mask:
                raise _ValidationFailure(
                    invalid_argument(f"{what}: value bits outside prefix")
                )
            return DecodedMatch(
                key_name=mf.name, kind=mf.match_type, value=value, mask=mask,
                prefix_len=fm.prefix_len,
            )
        if mf.match_type is MatchKind.TERNARY:
            mask = self._decode_value(fm.mask, mf.bitwidth, f"{what} mask")
            if mask == 0:
                raise _ValidationFailure(
                    invalid_argument(f"{what}: wildcard must be omitted, not zero-masked")
                )
            if value & ~mask:
                raise _ValidationFailure(
                    invalid_argument(f"{what}: value bits outside mask")
                )
            return DecodedMatch(key_name=mf.name, kind=mf.match_type, value=value, mask=mask)
        return DecodedMatch(
            key_name=mf.name, kind=mf.match_type, value=value,
            mask=(1 << mf.bitwidth) - 1,
        )

    def _validate_priority(self, table: TableInfo, entry: TableEntry) -> None:
        if table.requires_priority and entry.priority <= 0:
            raise _ValidationFailure(
                invalid_argument(f"table {table.name} requires a positive priority")
            )
        if not table.requires_priority and entry.priority != 0:
            raise _ValidationFailure(
                invalid_argument(f"table {table.name} does not take priorities")
            )

    def _validate_invocation(self, table: TableInfo, inv: ActionInvocation) -> DecodedAction:
        action = self._p4info.actions.get(inv.action_id)
        if action is None:
            raise _ValidationFailure(
                invalid_argument(f"unknown action 0x{inv.action_id:08x}")
            )
        if action.id not in table.action_ids:
            raise _ValidationFailure(
                invalid_argument(f"action {action.name} not valid for {table.name}")
            )
        params: List[Tuple[str, int]] = []
        seen: Set[int] = set()
        for pid, data in inv.params:
            pinfo = action.param_by_id(pid)
            if pinfo is None:
                raise _ValidationFailure(
                    invalid_argument(f"{action.name}: unknown param {pid}")
                )
            if pid in seen:
                raise _ValidationFailure(
                    invalid_argument(f"{action.name}: duplicate param {pid}")
                )
            seen.add(pid)
            params.append(
                (pinfo.name, self._decode_value(data, pinfo.bitwidth, f"{action.name}.{pinfo.name}"))
            )
        for pinfo in action.params:
            if pinfo.id not in seen:
                raise _ValidationFailure(
                    invalid_argument(f"{action.name}: missing param {pinfo.name}")
                )
        return DecodedAction(name=action.name, params=tuple(sorted(params)))

    def _validate_action(self, table: TableInfo, entry: TableEntry):
        if entry.action is None:
            raise _ValidationFailure(invalid_argument("entry has no action"))
        if table.implementation_id:
            if not isinstance(entry.action, ActionProfileActionSet):
                raise _ValidationFailure(
                    invalid_argument(f"{table.name} requires a one-shot action set")
                )
            if not entry.action.actions:
                raise _ValidationFailure(invalid_argument("empty action set"))
            profile = self._p4info.action_profiles.get(table.implementation_id)
            members = []
            total = 0
            for m in entry.action.actions:
                if m.weight <= 0:
                    raise _ValidationFailure(
                        invalid_argument(f"non-positive action weight {m.weight}")
                    )
                total += m.weight
                members.append((self._validate_invocation(table, m.action), m.weight))
            if profile is not None and total > profile.max_group_size:
                raise _ValidationFailure(
                    invalid_argument(
                        f"group weight {total} exceeds max size {profile.max_group_size}"
                    )
                )
            return DecodedActionSet(members=tuple(members))
        if isinstance(entry.action, ActionProfileActionSet):
            raise _ValidationFailure(
                invalid_argument(f"{table.name} takes a single action, not a set")
            )
        return self._validate_invocation(table, entry.action)

    def _validate_constraint(self, table: TableInfo, decoded: InstalledEntry) -> None:
        constraint = self._constraints.get(table.id)
        if constraint is None:
            return
        try:
            ok = evaluate_constraint(constraint, decoded.key_values())
        except Exception as exc:  # constraint referencing unknown keys
            raise _ValidationFailure(internal(f"constraint evaluation error: {exc}")) from exc
        if not ok:
            raise _ValidationFailure(
                invalid_argument(f"entry violates @entry_restriction on {table.name}")
            )

    def _validate_quirks(self, table: TableInfo, entry: TableEntry) -> None:
        if self._faults.enabled("space_in_key_rejected") and table.name.startswith("acl_"):
            for fm in entry.matches:
                if b" " in fm.value or b" " in fm.mask:
                    raise _ValidationFailure(
                        internal("key serialization failed: unsupported character")
                    )


class _ValidationFailure(Exception):
    def __init__(self, status: Status) -> None:
        super().__init__(status.message)
        self.status = status
