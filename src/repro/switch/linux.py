"""The switch's Linux host environment: daemons that interfere with SDN.

The PINS switch runs a full Linux with traditional networking daemons.
Several Appendix-A bugs were interactions between those daemons and the SDN
control path: an LLDP daemon punting packets to the controller, a daemon
pre-creating conflicting VRF configurations, unexpected IPv6 router
solicitations, and packet-io breaking when the port-sync daemon restarts.

This layer owns those behaviours; the stack consults it around packet-io
and at startup.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.bmv2.packet import deparse_packet, make_ipv6_packet
from repro.p4rt.messages import PacketIn
from repro.switch.asic import AsicError, AsicSim
from repro.switch.faults import FaultRegistry

# Conventional identifiers for daemon-generated traffic.
LLDP_ETHERTYPE = 0x88CC
IPV6_ICMP = 58


def _lldp_frame() -> bytes:
    """A minimal LLDP-ish frame (ethernet header + opaque TLV payload)."""
    dst = 0x0180C200000E
    src = 0x02AA00000001
    header = dst.to_bytes(6, "big") + src.to_bytes(6, "big") + LLDP_ETHERTYPE.to_bytes(2, "big")
    return header + b"\x02\x07\x04lldp!\x00\x00"


def _router_solicitation() -> bytes:
    """An IPv6 router-solicitation packet as emitted by the host stack."""
    packet = make_ipv6_packet(
        dst_addr=0xFF020000_00000000_00000000_00000002,
        src_addr=0xFE800000_00000000_00000000_00000001,
        next_header=IPV6_ICMP,
        payload=b"\x85\x00\x00\x00",
    )
    # next_header 58 has no registered parser pattern; the payload carries
    # the ICMPv6 body.
    return deparse_packet(packet)


class SwitchLinux:
    """Host daemons and their fault behaviours."""

    def __init__(self, asic: AsicSim, faults: FaultRegistry) -> None:
        self._asic = asic
        self._faults = faults
        self._lldp_emitted = 0
        self._rs_emitted = 0

    # ------------------------------------------------------------------
    # Startup effects
    # ------------------------------------------------------------------
    def boot(self) -> None:
        """Run boot-time daemon side effects."""
        if self._faults.enabled("daemon_vrf_conflict"):
            # A legacy daemon claims VRF 1 for itself; later controller
            # attempts to allocate it collide.
            try:
                self._asic.create_vrf(1)
            except AsicError:
                pass

    # ------------------------------------------------------------------
    # Packet-io interference
    # ------------------------------------------------------------------
    @property
    def packet_io_broken(self) -> bool:
        return self._faults.enabled("port_sync_daemon_restart") or self._faults.enabled(
            "daemons_crash_on_link_down"
        )

    def background_packet_ins(self) -> List[PacketIn]:
        """Daemon-generated punts surfaced on the packet-in channel."""
        out: List[PacketIn] = []
        if self._faults.enabled("lldp_punt") and self._lldp_emitted < 8:
            self._lldp_emitted += 1
            out.append(PacketIn(payload=_lldp_frame(), ingress_port=1))
        return out

    def background_egress(self) -> List[Tuple[int, bytes]]:
        """Daemon-generated packets sent out of data ports."""
        out: List[Tuple[int, bytes]] = []
        if self._faults.enabled("ipv6_router_solicitation") and self._rs_emitted < 8:
            self._rs_emitted += 1
            out.append((1, _router_solicitation()))
        return out
