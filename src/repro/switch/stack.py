"""The assembled PINS switch stack (Figure 4) as a P4Runtime service.

Wires together the ASIC, SAI adapter, SyncD, orchestration agent,
P4Runtime server, gNMI config, and Linux host layers, and exposes the
packet-io and data-plane interfaces the SwitchV harness drives.

The stack is constructed with the *true* P4 program governing its role
(which configures its ACL stages and table mapping, exactly like pushing
the program to a PINS switch).  The harness may independently be handed a
different — possibly wrong — model; finding the divergence is SwitchV's
job.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.bmv2.packet import Packet, PacketError, deparse_packet, parse_packet
from repro.p4.ast import P4Program
from repro.p4.p4info import P4Info
from repro.p4rt.messages import (
    PacketIn,
    PacketOut,
    ReadRequest,
    ReadResponse,
    WriteRequest,
    WriteResponse,
)
from repro.p4rt.service import P4RuntimeService
from repro.p4rt.status import Status, invalid_argument
from repro.switch.asic import AclKeySpec, AclStageConfig, AsicProfile, AsicSim
from repro.switch.faults import FaultRegistry
from repro.switch.gnmi import GnmiConfig
from repro.switch.linux import SwitchLinux
from repro.switch.orchagent import ACL_STAGE_BY_TABLE, OrchAgent
from repro.switch.p4rt_server import P4RuntimeServer
from repro.switch.sai import SaiAdapter
from repro.switch.syncd import SyncD


@dataclass
class ObservedForwarding:
    """What the harness observes for one injected test packet."""

    egress_port: Optional[int]
    punted: bool
    packet: Packet
    mirror_copies: List[Tuple[int, Packet]] = field(default_factory=list)
    # Unsolicited packets the switch emitted alongside (daemon traffic).
    extra_egress: List[Tuple[int, bytes]] = field(default_factory=list)

    def behavior_signature(self) -> Tuple:
        # Mirrors PacketResult.behavior_signature, including the
        # normalisation of unobservable (dropped, unpunted) packets.
        if self.egress_port is None and not self.punted and not self.mirror_copies:
            return (None, False, None, ())
        return (
            self.egress_port,
            self.punted,
            self.packet.signature(),
            tuple(sorted((p, pkt.signature()) for p, pkt in self.mirror_copies)),
        )


def build_asic_profile(program: P4Program, ports: Tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 8)) -> AsicProfile:
    """Derive chip capabilities from the program's role.

    A switch deployed in a role is provisioned to honour that role's
    guaranteed table sizes (§3: the guarantee means the hardware accepts
    any model-valid request), so each resource capacity is at least the
    corresponding table's declared size.
    """
    sizes = {t.name: t.size for t in program.tables()}
    has_tunnel = "tunnel_tbl" in sizes
    wcmp_size = sizes.get("wcmp_group_tbl", 128)
    max_group = 128
    wcmp_table = next((t for t in program.tables() if t.name == "wcmp_group_tbl"), None)
    if wcmp_table is not None and wcmp_table.implementation is not None:
        max_group = wcmp_table.implementation.max_group_size
    return AsicProfile(
        ports=ports,
        supports_tunnel=has_tunnel,
        vrf_capacity=sizes.get("vrf_tbl", 64),
        route_capacity=sizes.get("ipv4_tbl", 1024) + sizes.get("ipv6_tbl", 1024),
        nexthop_capacity=sizes.get("nexthop_tbl", 256),
        neighbor_capacity=sizes.get("neighbor_tbl", 256),
        rif_capacity=sizes.get("router_interface_tbl", 64),
        wcmp_group_capacity=wcmp_size,
        wcmp_member_capacity=wcmp_size * max_group,
        mirror_session_capacity=sizes.get("mirror_session_tbl", 4),
        tunnel_capacity=sizes.get("tunnel_tbl", 64),
    )


def _acl_stage_configs(program: P4Program) -> List[AclStageConfig]:
    configs = []
    for table in program.tables():
        stage = ACL_STAGE_BY_TABLE.get(table.name)
        if stage is None:
            continue
        keys = [
            AclKeySpec(
                name=k.key_name,
                field_path=k.field.path,
                bitwidth=program.field_width(k.field.path),
            )
            for k in table.keys
        ]
        configs.append(AclStageConfig(name=stage, keys=keys, capacity=table.size))
    return configs


class PinsSwitchStack(P4RuntimeService):
    """The complete switch under test."""

    def __init__(
        self,
        program: P4Program,
        faults: Optional[FaultRegistry] = None,
        profile: Optional[AsicProfile] = None,
    ) -> None:
        self.program = program
        self.faults = faults or FaultRegistry()
        self.profile = profile or build_asic_profile(program)
        self.asic = AsicSim(self.profile, self.faults)
        self.sai = SaiAdapter(self.asic)
        self.syncd = SyncD(self.sai, self.asic, self.faults)
        self.orchagent = OrchAgent(program, self.syncd, self.faults)
        self.server = P4RuntimeServer(self.orchagent, self.faults)
        self.gnmi = GnmiConfig(self.asic, self.faults)
        self.linux = SwitchLinux(self.asic, self.faults)

        # Boot sequence: ACL stages are configured from the role's program,
        # gNMI brings ports up, host daemons run their startup hooks.
        for config in _acl_stage_configs(program):
            self.asic.configure_acl_stage(config)
        self.gnmi.apply_port_config(self.profile.ports)
        self.linux.boot()

        self._packet_ins: List[PacketIn] = []
        self._egress_log: List[Tuple[int, bytes]] = []

    # ------------------------------------------------------------------
    # P4RuntimeService
    # ------------------------------------------------------------------
    def set_forwarding_pipeline_config(self, p4info: P4Info) -> Status:
        return self.server.set_pipeline_config(p4info)

    def write(self, request: WriteRequest) -> WriteResponse:
        return self.server.write(request)

    def read(self, request: ReadRequest) -> ReadResponse:
        return self.server.read(request)

    def packet_out(self, packet: PacketOut) -> Status:
        if self.linux.packet_io_broken:
            # The broken port-sync daemon tears down the packet-io channel;
            # the injection is silently lost.
            return Status()
        if self.faults.enabled("packet_out_punted_back"):
            self._packet_ins.append(
                PacketIn(payload=packet.payload, ingress_port=0)
            )
        if packet.submit_to_ingress:
            if self.faults.enabled("l3_submit_to_ingress_drop"):
                return Status()  # packet vanishes in the pipeline
            try:
                parsed = parse_packet(packet.payload, self.program.parser.pattern)
            except PacketError as exc:
                return invalid_argument(f"unparseable packet-out: {exc}")
            observed = self.inject(parsed, ingress_port=0)
            if observed.punted:
                self._enqueue_punt(observed, ingress_port=0)
            self._record_egress(observed)
            return Status()
        self._egress_log.append((packet.egress_port, packet.payload))
        return Status()

    def drain_packet_ins(self) -> List[PacketIn]:
        if self.linux.packet_io_broken:
            # Punted packets accumulate in a dead channel and are lost.
            self._packet_ins.clear()
            return []
        self._packet_ins.extend(self.linux.background_packet_ins())
        out = self._packet_ins
        self._packet_ins = []
        return out

    # ------------------------------------------------------------------
    # Data plane (harness-facing)
    # ------------------------------------------------------------------
    def inject(self, packet: Packet, ingress_port: int):
        return self.asic.forward(packet, ingress_port)

    def send_packet(self, payload: bytes, ingress_port: int) -> ObservedForwarding:
        """Inject a test packet and observe its fate (the tester's port view)."""
        parsed = parse_packet(payload, self.program.parser.pattern)
        result = self.asic.forward(parsed, ingress_port)
        observed = ObservedForwarding(
            egress_port=result.egress_port,
            punted=result.punted,
            packet=result.packet,
            mirror_copies=list(result.mirror_copies),
            extra_egress=self.linux.background_egress(),
        )
        if result.punted:
            self._enqueue_punt_result(result, ingress_port)
        return observed

    def _enqueue_punt_result(self, result, ingress_port: int) -> None:
        self._packet_ins.append(
            PacketIn(
                payload=deparse_packet(result.packet),
                ingress_port=ingress_port,
            )
        )

    def _enqueue_punt(self, observed: ObservedForwarding, ingress_port: int) -> None:
        self._packet_ins.append(
            PacketIn(payload=deparse_packet(observed.packet), ingress_port=ingress_port)
        )

    def _record_egress(self, observed: ObservedForwarding) -> None:
        if observed.egress_port is not None:
            self._egress_log.append(
                (observed.egress_port, deparse_packet(observed.packet))
            )

    def drain_egress(self) -> List[Tuple[int, bytes]]:
        """Packets the switch emitted via packet-out / submit-to-ingress."""
        out = self._egress_log
        self._egress_log = []
        return out
