"""SyncD: the database interface between the orchestration agent and SAI.

In SONiC, SyncD consumes the ASIC-DB and replays it into the vendor SAI
library.  We keep the same responsibility split: the orchestration agent
expresses intent in terms of SAI-ish operations; SyncD owns the actual SAI
calls, status translation, and a couple of chip-workaround code paths —
which is exactly where the paper's SyncD bugs lived.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.switch.asic import AsicSim, RouteTarget
from repro.switch.faults import FaultRegistry
from repro.switch.sai import SaiAdapter, SaiResult, SaiStatus


def _reverse_ipv4_bytes(value: int) -> int:
    """Byte-swap a 32-bit address (the Cerberus endianness bug mechanism)."""
    return int.from_bytes(value.to_bytes(4, "big"), "little")


class SyncD:
    """Applies orchestration-agent operations to the ASIC via SAI."""

    def __init__(self, sai: SaiAdapter, asic: AsicSim, faults: FaultRegistry) -> None:
        self._sai = sai
        self._asic = asic
        self._faults = faults

    # ------------------------------------------------------------------
    # Pass-throughs with fault hooks
    # ------------------------------------------------------------------
    def create_vrf(self, vrf_id: int) -> SaiResult:
        return self._sai.create_virtual_router(vrf_id)

    def remove_vrf(self, vrf_id: int) -> SaiResult:
        return self._sai.remove_virtual_router(vrf_id)

    def create_route(self, vrf, version, prefix, plen, target: RouteTarget) -> SaiResult:
        return self._sai.create_route(vrf, version, prefix, plen, target)

    def set_route(self, vrf, version, prefix, plen, target: RouteTarget) -> SaiResult:
        return self._sai.set_route(vrf, version, prefix, plen, target)

    def remove_route(self, vrf, version, prefix, plen) -> SaiResult:
        return self._sai.remove_route(vrf, version, prefix, plen)

    def create_nexthop(self, nh_id, rif_id, neighbor_id) -> SaiResult:
        return self._sai.create_next_hop(nh_id, rif_id, neighbor_id)

    def set_nexthop(self, nh_id, rif_id, neighbor_id) -> SaiResult:
        return self._sai.set_next_hop(nh_id, rif_id, neighbor_id)

    def remove_nexthop(self, nh_id) -> SaiResult:
        return self._sai.remove_next_hop(nh_id)

    def create_neighbor(self, rif_id, neighbor_id, dst_mac) -> SaiResult:
        return self._sai.create_neighbor(rif_id, neighbor_id, dst_mac)

    def remove_neighbor(self, rif_id, neighbor_id) -> SaiResult:
        return self._sai.remove_neighbor(rif_id, neighbor_id)

    def create_rif(self, rif_id, port, src_mac) -> SaiResult:
        return self._sai.create_router_interface(rif_id, port, src_mac)

    def set_rif(self, rif_id, port, src_mac) -> SaiResult:
        return self._sai.set_router_interface(rif_id, port, src_mac)

    def remove_rif(self, rif_id) -> SaiResult:
        return self._sai.remove_router_interface(rif_id)

    def create_wcmp_group(self, gid, members: Sequence[Tuple[int, int]]) -> SaiResult:
        return self._sai.create_next_hop_group(gid, members)

    def set_wcmp_group(self, gid, members: Sequence[Tuple[int, int]]) -> SaiResult:
        return self._sai.set_next_hop_group(gid, members)

    def remove_wcmp_group(self, gid) -> SaiResult:
        return self._sai.remove_next_hop_group(gid)

    def create_mirror_session(self, session_id, port) -> SaiResult:
        return self._sai.create_mirror_session(session_id, port)

    def remove_mirror_session(self, session_id) -> SaiResult:
        return self._sai.remove_mirror_session(session_id)

    def create_tunnel(self, tunnel_id, src_ip, dst_ip) -> SaiResult:
        if self._faults.enabled("encap_dst_reversed"):
            # The Cerberus endianness bug: the destination address is
            # byte-reversed on its way into the hardware.
            dst_ip = _reverse_ipv4_bytes(dst_ip)
        return self._sai.create_tunnel(tunnel_id, src_ip, dst_ip)

    def remove_tunnel(self, tunnel_id) -> SaiResult:
        return self._sai.remove_tunnel(tunnel_id)

    def create_acl_entry(
        self,
        stage: str,
        priority: int,
        matches: Dict[str, Tuple[int, int]],
        action: str,
        action_arg: int = 0,
    ) -> SaiResult:
        if self._faults.enabled("decap_ignores_port") and stage == "decap":
            # Port qualifier silently dropped when programming the TCAM.
            matches = {k: v for k, v in matches.items() if k != "in_port"}
        if self._faults.enabled("acl_invalid_cleanup_leak") and priority > 30:
            # The hardware only supports 30 priority levels here; the
            # rejected entry's TCAM slot is nevertheless consumed.
            self._asic.acl_leak_slot(stage)
            return SaiResult(
                status=SaiStatus.FAILURE, detail="acl priority outside hardware range"
            )
        result = self._sai.create_acl_entry(stage, priority, matches, action, action_arg)
        if not result.ok and self._faults.enabled("acl_invalid_cleanup_leak"):
            # The rejected entry's TCAM slot is never released.
            self._asic.acl_leak_slot(stage)
        return result

    def remove_acl_entry(self, stage: str, entry_id: int) -> SaiResult:
        return self._sai.remove_acl_entry(stage, entry_id)
