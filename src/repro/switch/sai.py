"""The Switch Abstraction Interface (SAI) layer.

A vendor-agnostic object API over the ASIC (Figure 4).  SyncD talks to this
layer; this layer talks to the chip.  Statuses mirror SAI's C-style status
codes so that translation bugs (wrong status mapping, swallowed failures)
have a realistic place to live.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.switch.asic import AclStageConfig, AsicError, AsicSim, RouteTarget


class SaiStatus(enum.Enum):
    SUCCESS = "SAI_STATUS_SUCCESS"
    ITEM_ALREADY_EXISTS = "SAI_STATUS_ITEM_ALREADY_EXISTS"
    ITEM_NOT_FOUND = "SAI_STATUS_ITEM_NOT_FOUND"
    INSUFFICIENT_RESOURCES = "SAI_STATUS_INSUFFICIENT_RESOURCES"
    NOT_SUPPORTED = "SAI_STATUS_NOT_SUPPORTED"
    FAILURE = "SAI_STATUS_FAILURE"


_ASIC_TO_SAI = {
    "exists": SaiStatus.ITEM_ALREADY_EXISTS,
    "not_found": SaiStatus.ITEM_NOT_FOUND,
    "no_resources": SaiStatus.INSUFFICIENT_RESOURCES,
    "unsupported": SaiStatus.NOT_SUPPORTED,
    "internal": SaiStatus.FAILURE,
}


@dataclass
class SaiResult:
    status: SaiStatus
    detail: str = ""
    oid: int = 0  # object id for creates

    @property
    def ok(self) -> bool:
        return self.status is SaiStatus.SUCCESS


class SaiAdapter:
    """SAI object model: routes, next hops, RIFs, neighbors, groups, ACLs."""

    def __init__(self, asic: AsicSim) -> None:
        self._asic = asic
        self._next_oid = 0x1000

    def _alloc_oid(self) -> int:
        self._next_oid += 1
        return self._next_oid

    def _call(self, fn, *args) -> SaiResult:
        try:
            result = fn(*args)
        except AsicError as exc:
            return SaiResult(
                status=_ASIC_TO_SAI.get(exc.reason, SaiStatus.FAILURE), detail=str(exc)
            )
        oid = result if isinstance(result, int) else self._alloc_oid()
        return SaiResult(status=SaiStatus.SUCCESS, oid=oid)

    # Virtual routers --------------------------------------------------
    def create_virtual_router(self, vrf_id: int) -> SaiResult:
        return self._call(self._asic.create_vrf, vrf_id)

    def remove_virtual_router(self, vrf_id: int) -> SaiResult:
        return self._call(self._asic.remove_vrf, vrf_id)

    # Routes -----------------------------------------------------------
    def create_route(
        self, vrf_id: int, ip_version: int, prefix: int, prefix_len: int, target: RouteTarget
    ) -> SaiResult:
        return self._call(self._asic.add_route, vrf_id, ip_version, prefix, prefix_len, target)

    def set_route(
        self, vrf_id: int, ip_version: int, prefix: int, prefix_len: int, target: RouteTarget
    ) -> SaiResult:
        return self._call(
            self._asic.modify_route, vrf_id, ip_version, prefix, prefix_len, target
        )

    def remove_route(
        self, vrf_id: int, ip_version: int, prefix: int, prefix_len: int
    ) -> SaiResult:
        return self._call(self._asic.del_route, vrf_id, ip_version, prefix, prefix_len)

    # Next hops / neighbors / RIFs --------------------------------------
    def create_next_hop(self, nh_id: int, rif_id: int, neighbor_id: int) -> SaiResult:
        return self._call(self._asic.create_nexthop, nh_id, rif_id, neighbor_id)

    def set_next_hop(self, nh_id: int, rif_id: int, neighbor_id: int) -> SaiResult:
        return self._call(self._asic.modify_nexthop, nh_id, rif_id, neighbor_id)

    def remove_next_hop(self, nh_id: int) -> SaiResult:
        return self._call(self._asic.remove_nexthop, nh_id)

    def create_neighbor(self, rif_id: int, neighbor_id: int, dst_mac: int) -> SaiResult:
        return self._call(self._asic.set_neighbor, rif_id, neighbor_id, dst_mac)

    def remove_neighbor(self, rif_id: int, neighbor_id: int) -> SaiResult:
        return self._call(self._asic.remove_neighbor, rif_id, neighbor_id)

    def create_router_interface(self, rif_id: int, port: int, src_mac: int) -> SaiResult:
        return self._call(self._asic.create_rif, rif_id, port, src_mac)

    def set_router_interface(self, rif_id: int, port: int, src_mac: int) -> SaiResult:
        return self._call(self._asic.modify_rif, rif_id, port, src_mac)

    def remove_router_interface(self, rif_id: int) -> SaiResult:
        return self._call(self._asic.remove_rif, rif_id)

    # WCMP groups --------------------------------------------------------
    def create_next_hop_group(self, gid: int, members: Sequence[Tuple[int, int]]) -> SaiResult:
        return self._call(self._asic.create_wcmp_group, gid, members)

    def set_next_hop_group(self, gid: int, members: Sequence[Tuple[int, int]]) -> SaiResult:
        return self._call(self._asic.replace_wcmp_group, gid, members)

    def remove_next_hop_group(self, gid: int) -> SaiResult:
        return self._call(self._asic.remove_wcmp_group, gid)

    # Mirror sessions ------------------------------------------------------
    def create_mirror_session(self, session_id: int, port: int) -> SaiResult:
        return self._call(self._asic.set_mirror_session, session_id, port)

    def remove_mirror_session(self, session_id: int) -> SaiResult:
        return self._call(self._asic.remove_mirror_session, session_id)

    # Tunnels ----------------------------------------------------------------
    def create_tunnel(self, tunnel_id: int, src_ip: int, dst_ip: int) -> SaiResult:
        return self._call(self._asic.create_tunnel, tunnel_id, src_ip, dst_ip)

    def remove_tunnel(self, tunnel_id: int) -> SaiResult:
        return self._call(self._asic.remove_tunnel, tunnel_id)

    # ACLs ----------------------------------------------------------------
    def configure_acl_stage(self, config: AclStageConfig) -> SaiResult:
        return self._call(self._asic.configure_acl_stage, config)

    def create_acl_entry(
        self,
        stage: str,
        priority: int,
        matches: Dict[str, Tuple[int, int]],
        action: str,
        action_arg: int = 0,
    ) -> SaiResult:
        return self._call(self._asic.acl_add, stage, priority, matches, action, action_arg)

    def remove_acl_entry(self, stage: str, entry_id: int) -> SaiResult:
        return self._call(self._asic.acl_remove, stage, entry_id)
