"""repro.switch — the switch under test (the PINS stack of Figure 4).

SwitchV is a *differential* validator: it needs a real switch whose
behaviour is implemented independently of the P4 model.  This package is
that switch: a layered software stack with the same layer boundaries as
PINS —

    P4Runtime server  →  Orchestration agent  →  SyncD  →  SAI  →  ASIC

plus the switch's Linux host environment (daemons that interact with
packet-io) and a gNMI-ish config layer.  The ASIC's forwarding pipeline is
hand-coded fixed-function logic (tries, TCAMs, hash-based WCMP) — it never
consults the P4 AST, exactly like real hardware.

Fault injection (:mod:`repro.switch.faults`) reintroduces the bug
catalogue of the paper's Appendix A into the layer where each bug lived,
which is what lets the benchmarks regenerate Table 1 (bugs by component),
Table 2 (trivial-suite detectability) and Figure 7 (resolution times).

For programs that do not fit the SAI shape (e.g. the toy program) and for
harness self-tests, :mod:`repro.switch.reference` provides a
model-faithful switch that interprets the P4 program directly.
"""

from repro.switch.faults import Fault, FaultRegistry
from repro.switch.reference import ReferenceSwitch
from repro.switch.stack import PinsSwitchStack

__all__ = ["Fault", "FaultRegistry", "PinsSwitchStack", "ReferenceSwitch"]
