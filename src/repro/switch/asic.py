"""The fixed-function ASIC simulation.

This is the bottom of the stack: hand-coded forwarding structures (route
tries per VRF, TCAM-style ACL stages, hash-based WCMP) behind a narrow
programming API.  Crucially it never consults the P4 AST — like real
silicon, its pipeline is rigid and merely *modeled* by the P4 program, so a
SwitchV incident always reflects a genuine semantic disagreement between
two independent implementations.

The pipeline, in order (capabilities gated by :class:`AsicProfile`):

    classify → TTL trap → broadcast drop → decap → L3 admit →
    pre-ingress ACL (VRF assignment) → LPM routing → WCMP/nexthop/RIF
    resolution (TTL decrement, MAC rewrite) → tunnel encap → ingress ACL →
    mirroring → egress ACL
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.bmv2.packet import Packet
from repro.switch.faults import FaultRegistry


class AsicError(Exception):
    """A programming operation the ASIC cannot honor."""

    def __init__(self, reason: str, detail: str = "") -> None:
        super().__init__(f"{reason}: {detail}" if detail else reason)
        self.reason = reason
        self.detail = detail


# ----------------------------------------------------------------------
# Profiles and configuration
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class AclKeySpec:
    """One TCAM key extractor: the packet field backing an ACL match key."""

    name: str
    field_path: str
    bitwidth: int


@dataclass
class AclStageConfig:
    """One ACL stage's configuration (pushed with the P4 program)."""

    name: str  # "pre_ingress" | "ingress" | "egress"
    keys: List[AclKeySpec]
    capacity: int = 128


@dataclass
class AsicProfile:
    """Chip capabilities: ports, table capacities, optional features."""

    ports: Tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 8)
    vrf_capacity: int = 64
    route_capacity: int = 8192
    nexthop_capacity: int = 512
    neighbor_capacity: int = 512
    rif_capacity: int = 64
    wcmp_group_capacity: int = 256
    wcmp_member_capacity: int = 2048
    mirror_session_capacity: int = 4
    tunnel_capacity: int = 64
    supports_tunnel: bool = False
    hash_seed: int = 0x5EED


# ----------------------------------------------------------------------
# Programmed state records
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RouteTarget:
    """What a route resolves to."""

    kind: str  # "drop" | "trap" | "nexthop" | "wcmp"
    nexthop_id: int = 0
    wcmp_group_id: int = 0
    tunnel_id: int = 0  # Cerberus: encap after resolution


@dataclass(frozen=True)
class AclHwEntry:
    """A TCAM entry: value/mask per key plus a priority and an action."""

    entry_id: int
    priority: int
    # key name -> (value, mask); absent keys are wildcards.
    matches: Tuple[Tuple[str, Tuple[int, int]], ...]
    action: str  # "drop" | "trap" | "copy" | "mirror" | "set_vrf"
    action_arg: int = 0

    def match_map(self) -> Dict[str, Tuple[int, int]]:
        return dict(self.matches)


@dataclass
class _AclStage:
    config: AclStageConfig
    entries: Dict[int, AclHwEntry] = field(default_factory=dict)
    # Capacity actually consumed; can exceed len(entries) under the
    # acl_invalid_cleanup_leak fault.
    consumed: int = 0


# ----------------------------------------------------------------------
# The ASIC
# ----------------------------------------------------------------------


@dataclass
class AsicResult:
    """Outcome of pushing one packet through the pipeline."""

    packet: Packet
    egress_port: Optional[int]
    punted: bool
    mirror_copies: List[Tuple[int, Packet]] = field(default_factory=list)

    @property
    def dropped(self) -> bool:
        return self.egress_port is None


class AsicSim:
    """The programmable state plus the rigid forwarding pipeline."""

    def __init__(self, profile: AsicProfile, faults: Optional[FaultRegistry] = None) -> None:
        self.profile = profile
        self.faults = faults or FaultRegistry()
        self.vrfs: Set[int] = set()
        # (vrf, ip_version) -> {(prefix_value, prefix_len): RouteTarget}
        self.routes: Dict[Tuple[int, int], Dict[Tuple[int, int], RouteTarget]] = {}
        self.nexthops: Dict[int, Tuple[int, int]] = {}  # nh -> (rif, neighbor)
        self.neighbors: Dict[Tuple[int, int], int] = {}  # (rif, nb) -> dst mac
        self.rifs: Dict[int, Tuple[int, int]] = {}  # rif -> (port, src mac)
        self.wcmp_groups: Dict[int, List[Tuple[int, int]]] = {}  # gid -> [(nh, w)]
        self.wcmp_members_used = 0
        self.mirror_sessions: Dict[int, int] = {}  # session -> port
        self.tunnels: Dict[int, Tuple[int, int]] = {}  # tid -> (src ip, dst ip)
        self.acl_stages: Dict[str, _AclStage] = {}
        # Ports administratively up (gNMI-controlled).
        self.ports_up: Set[int] = set(profile.ports)
        self._acl_entry_seq = 0

    # ------------------------------------------------------------------
    # Configuration (SetForwardingPipelineConfig time)
    # ------------------------------------------------------------------
    def configure_acl_stage(self, config: AclStageConfig) -> None:
        self.acl_stages[config.name] = _AclStage(config=config)

    # ------------------------------------------------------------------
    # Resource programming (SAI-facing)
    # ------------------------------------------------------------------
    def create_vrf(self, vrf_id: int) -> None:
        if vrf_id in self.vrfs:
            raise AsicError("exists", f"vrf {vrf_id}")
        if len(self.vrfs) >= self.profile.vrf_capacity:
            raise AsicError("no_resources", "vrf capacity")
        self.vrfs.add(vrf_id)

    def remove_vrf(self, vrf_id: int) -> None:
        if self.faults.enabled("vrf_delete_fails"):
            raise AsicError("internal", "ALPM flag prevents VRF removal")
        if vrf_id not in self.vrfs:
            raise AsicError("not_found", f"vrf {vrf_id}")
        self.vrfs.discard(vrf_id)

    def add_route(
        self, vrf_id: int, ip_version: int, prefix: int, prefix_len: int, target: RouteTarget
    ) -> None:
        table = self.routes.setdefault((vrf_id, ip_version), {})
        key = (prefix, prefix_len)
        if key in table:
            raise AsicError("exists", f"route {prefix:#x}/{prefix_len}")
        total = sum(len(t) for t in self.routes.values())
        if total >= self.profile.route_capacity:
            raise AsicError("no_resources", "route capacity")
        table[key] = target

    def modify_route(
        self, vrf_id: int, ip_version: int, prefix: int, prefix_len: int, target: RouteTarget
    ) -> None:
        table = self.routes.setdefault((vrf_id, ip_version), {})
        key = (prefix, prefix_len)
        if key not in table:
            raise AsicError("not_found", f"route {prefix:#x}/{prefix_len}")
        table[key] = target

    def del_route(self, vrf_id: int, ip_version: int, prefix: int, prefix_len: int) -> None:
        table = self.routes.setdefault((vrf_id, ip_version), {})
        key = (prefix, prefix_len)
        if key not in table:
            raise AsicError("not_found", f"route {prefix:#x}/{prefix_len}")
        del table[key]

    def create_nexthop(self, nh_id: int, rif_id: int, neighbor_id: int) -> None:
        if nh_id in self.nexthops:
            raise AsicError("exists", f"nexthop {nh_id}")
        if len(self.nexthops) >= self.profile.nexthop_capacity:
            raise AsicError("no_resources", "nexthop capacity")
        self.nexthops[nh_id] = (rif_id, neighbor_id)

    def modify_nexthop(self, nh_id: int, rif_id: int, neighbor_id: int) -> None:
        if nh_id not in self.nexthops:
            raise AsicError("not_found", f"nexthop {nh_id}")
        self.nexthops[nh_id] = (rif_id, neighbor_id)

    def remove_nexthop(self, nh_id: int) -> None:
        if nh_id not in self.nexthops:
            raise AsicError("not_found", f"nexthop {nh_id}")
        del self.nexthops[nh_id]

    def set_neighbor(self, rif_id: int, neighbor_id: int, dst_mac: int) -> None:
        if len(self.neighbors) >= self.profile.neighbor_capacity and (
            (rif_id, neighbor_id) not in self.neighbors
        ):
            raise AsicError("no_resources", "neighbor capacity")
        self.neighbors[(rif_id, neighbor_id)] = dst_mac

    def remove_neighbor(self, rif_id: int, neighbor_id: int) -> None:
        if (rif_id, neighbor_id) not in self.neighbors:
            raise AsicError("not_found", f"neighbor ({rif_id},{neighbor_id})")
        del self.neighbors[(rif_id, neighbor_id)]

    def create_rif(self, rif_id: int, port: int, src_mac: int) -> None:
        if rif_id in self.rifs:
            raise AsicError("exists", f"rif {rif_id}")
        capacity = self.profile.rif_capacity
        if self.faults.enabled("model_rif_guarantee_too_high"):
            # The "new chip": far fewer router interfaces than the model
            # guarantees.
            capacity = 4
        if len(self.rifs) >= capacity:
            raise AsicError("no_resources", "rif capacity")
        self.rifs[rif_id] = (port, src_mac)

    def modify_rif(self, rif_id: int, port: int, src_mac: int) -> None:
        if rif_id not in self.rifs:
            raise AsicError("not_found", f"rif {rif_id}")
        self.rifs[rif_id] = (port, src_mac)

    def remove_rif(self, rif_id: int) -> None:
        if rif_id not in self.rifs:
            raise AsicError("not_found", f"rif {rif_id}")
        del self.rifs[rif_id]

    def create_wcmp_group(self, gid: int, members: Sequence[Tuple[int, int]]) -> None:
        if gid in self.wcmp_groups:
            raise AsicError("exists", f"wcmp group {gid}")
        if len(self.wcmp_groups) >= self.profile.wcmp_group_capacity:
            raise AsicError("no_resources", "wcmp group capacity")
        weight_total = sum(w for _nh, w in members)
        if self.wcmp_members_used + weight_total > self.profile.wcmp_member_capacity:
            raise AsicError("no_resources", "wcmp member capacity")
        self.wcmp_groups[gid] = list(members)
        self.wcmp_members_used += weight_total

    def replace_wcmp_group(self, gid: int, members: Sequence[Tuple[int, int]]) -> None:
        if gid not in self.wcmp_groups:
            raise AsicError("not_found", f"wcmp group {gid}")
        old_total = sum(w for _nh, w in self.wcmp_groups[gid])
        new_total = sum(w for _nh, w in members)
        if self.wcmp_members_used - old_total + new_total > self.profile.wcmp_member_capacity:
            raise AsicError("no_resources", "wcmp member capacity")
        self.wcmp_groups[gid] = list(members)
        self.wcmp_members_used += new_total - old_total

    def remove_wcmp_group(self, gid: int) -> None:
        if gid not in self.wcmp_groups:
            raise AsicError("not_found", f"wcmp group {gid}")
        self.wcmp_members_used -= sum(w for _nh, w in self.wcmp_groups[gid])
        del self.wcmp_groups[gid]

    def set_mirror_session(self, session_id: int, port: int) -> None:
        if session_id not in self.mirror_sessions and (
            len(self.mirror_sessions) >= self.profile.mirror_session_capacity
        ):
            raise AsicError("no_resources", "mirror session capacity")
        self.mirror_sessions[session_id] = port

    def remove_mirror_session(self, session_id: int) -> None:
        if session_id not in self.mirror_sessions:
            raise AsicError("not_found", f"mirror session {session_id}")
        del self.mirror_sessions[session_id]

    def create_tunnel(self, tunnel_id: int, src_ip: int, dst_ip: int) -> None:
        if not self.profile.supports_tunnel:
            raise AsicError("unsupported", "chip has no tunnel engine")
        if tunnel_id in self.tunnels:
            raise AsicError("exists", f"tunnel {tunnel_id}")
        if len(self.tunnels) >= self.profile.tunnel_capacity:
            raise AsicError("no_resources", "tunnel capacity")
        self.tunnels[tunnel_id] = (src_ip, dst_ip)

    def remove_tunnel(self, tunnel_id: int) -> None:
        if tunnel_id not in self.tunnels:
            raise AsicError("not_found", f"tunnel {tunnel_id}")
        if self.faults.enabled("tunnel_delete_leaves_state"):
            # The encap rewrite stays live in hardware; only bookkeeping is
            # updated, so new creates still fail with "exists".
            return
        del self.tunnels[tunnel_id]

    # ------------------------------------------------------------------
    # ACL programming
    # ------------------------------------------------------------------
    def acl_add(
        self,
        stage_name: str,
        priority: int,
        matches: Dict[str, Tuple[int, int]],
        action: str,
        action_arg: int = 0,
    ) -> int:
        stage = self.acl_stages.get(stage_name)
        if stage is None:
            raise AsicError("unsupported", f"no ACL stage {stage_name}")
        for key in matches:
            if not any(spec.name == key for spec in stage.config.keys):
                raise AsicError("unsupported", f"stage {stage_name} has no key {key}")
        if stage.consumed >= stage.config.capacity:
            raise AsicError("no_resources", f"acl stage {stage_name} capacity")
        self._acl_entry_seq += 1
        entry_id = self._acl_entry_seq
        stage.entries[entry_id] = AclHwEntry(
            entry_id=entry_id,
            priority=priority,
            matches=tuple(sorted(matches.items())),
            action=action,
            action_arg=action_arg,
        )
        stage.consumed += 1
        return entry_id

    def acl_remove(self, stage_name: str, entry_id: int) -> None:
        stage = self.acl_stages.get(stage_name)
        if stage is None or entry_id not in stage.entries:
            raise AsicError("not_found", f"acl entry {entry_id}")
        del stage.entries[entry_id]
        if not self.faults.enabled("acl_invalid_cleanup_leak"):
            stage.consumed -= 1

    def acl_leak_slot(self, stage_name: str) -> None:
        """Model a rejected programming attempt that still consumed a slot
        (the acl_invalid_cleanup_leak fault's mechanism)."""
        stage = self.acl_stages.get(stage_name)
        if stage is not None:
            stage.consumed += 1

    # ------------------------------------------------------------------
    # Forwarding pipeline
    # ------------------------------------------------------------------
    def forward(self, packet: Packet, in_port: int) -> AsicResult:
        pkt = packet.copy()
        punted = False
        dropped = False
        mirror_session = 0
        vrf_id = 0
        egress_port: Optional[int] = None

        if in_port not in self.ports_up and in_port in self.profile.ports:
            return AsicResult(packet=pkt, egress_port=None, punted=False)

        is_ipv4 = pkt.is_valid("ipv4")
        is_ipv6 = pkt.is_valid("ipv6")

        # Fixed-function TTL trap (present on the modeled chip generation).
        ttl = pkt.get("ipv4.ttl") if is_ipv4 else pkt.get("ipv6.hop_limit")
        if (is_ipv4 or is_ipv6) and ttl <= 1:
            return AsicResult(packet=pkt, egress_port=None, punted=True)

        # The chip silently drops limited-broadcast IPv4 packets.
        if is_ipv4 and pkt.get("ipv4.dst_addr") == 0xFFFFFFFF:
            return AsicResult(packet=pkt, egress_port=None, punted=False)

        # Decapsulation (Cerberus chips only).  Encapsulation depth is
        # carried in the identification field (the repo's abstraction of
        # header push/pop; see DESIGN.md).
        if self.profile.supports_tunnel and is_ipv4:
            decap_stage = self.acl_stages.get("decap")
            if decap_stage is not None:
                hit = self._acl_lookup(decap_stage, pkt, in_port, egress_port=0)
                if hit is not None and hit.action == "decap":
                    pkt.set(
                        "ipv4.identification",
                        (pkt.get("ipv4.identification") - 1) & 0xFFFF,
                    )

        # L3 admit: MAC-based routing admission.
        l3_admit = False
        admit_stage = self.acl_stages.get("l3_admit")
        if admit_stage is not None:
            hit = self._acl_lookup(admit_stage, pkt, in_port, egress_port=0)
            l3_admit = hit is not None and hit.action == "admit"

        # Pre-ingress ACL: VRF assignment.
        pre_stage = self.acl_stages.get("pre_ingress")
        if pre_stage is not None:
            hit = self._acl_lookup(pre_stage, pkt, in_port, egress_port=0)
            if hit is not None and hit.action == "set_vrf":
                vrf_id = hit.action_arg

        # Routing.
        route_hit: Optional[RouteTarget] = None
        if l3_admit and (is_ipv4 or is_ipv6):
            version = 4 if is_ipv4 else 6
            dst = pkt.get("ipv4.dst_addr") if is_ipv4 else pkt.get("ipv6.dst_addr")
            width = 32 if is_ipv4 else 128
            route_hit = self._lookup_route(vrf_id, version, dst, width)
            if route_hit is None or route_hit.kind == "drop":
                dropped = True
            elif route_hit.kind == "trap":
                punted = True
                dropped = True
            else:
                nh_id = route_hit.nexthop_id
                if route_hit.kind == "wcmp":
                    nh_id = self._select_wcmp_member(route_hit.wcmp_group_id, pkt)
                    if nh_id is None:
                        dropped = True
                if nh_id is not None and not dropped:
                    resolved = self._resolve_nexthop(nh_id, pkt)
                    if resolved is None:
                        dropped = True
                    else:
                        egress_port = resolved
                        # TTL decrement on successful routing.
                        if is_ipv4:
                            pkt.set("ipv4.ttl", (pkt.get("ipv4.ttl") - 1) & 0xFF)
                        elif is_ipv6:
                            pkt.set("ipv6.hop_limit", (pkt.get("ipv6.hop_limit") - 1) & 0xFF)
                # Tunnel encapsulation after resolution.
                if route_hit.tunnel_id and not dropped:
                    encap = self.tunnels.get(route_hit.tunnel_id)
                    if encap is None:
                        dropped = True
                    else:
                        src_ip, dst_ip = encap
                        pkt.set("ipv4.src_addr", src_ip)
                        pkt.set("ipv4.dst_addr", dst_ip)
                        pkt.set(
                            "ipv4.identification",
                            (pkt.get("ipv4.identification") + 1) & 0xFFFF,
                        )

        # Ingress ACL.
        ingress_stage = self.acl_stages.get("ingress")
        if ingress_stage is not None:
            hit = self._acl_lookup(ingress_stage, pkt, in_port, egress_port or 0)
            if hit is not None:
                if hit.action == "drop":
                    dropped = True
                elif hit.action == "trap":
                    punted = True
                    dropped = True
                elif hit.action == "copy":
                    punted = True
                elif hit.action == "mirror":
                    mirror_session = hit.action_arg

        # DSCP remark fault (manifest of a SyncD QoS misprogramming).
        if self.faults.enabled("dscp_remark_zero") and is_ipv4 and not dropped:
            pkt.set("ipv4.dscp", 0)

        # MTU truncation fault (gNMI misconfiguration).
        if self.faults.enabled("gnmi_mtu_truncation") and len(pkt.payload) > 64:
            pkt.payload = pkt.payload[:64]

        # Mirroring.
        mirrors: List[Tuple[int, Packet]] = []
        if mirror_session:
            port = self.mirror_sessions.get(mirror_session)
            if port is not None:
                mirrors.append((port, pkt.copy()))

        # Egress ACL.
        if not dropped and egress_port is not None:
            egress_stage = self.acl_stages.get("egress")
            if egress_stage is not None:
                hit = self._acl_lookup(egress_stage, pkt, in_port, egress_port)
                if hit is not None and hit.action == "drop":
                    dropped = True

        # Hardware port faults.
        if egress_port is not None and not dropped:
            if self.faults.enabled("port_speed_drop") and egress_port == 5:
                dropped = True
            if egress_port not in self.ports_up and egress_port in self.profile.ports:
                dropped = True

        return AsicResult(
            packet=pkt,
            egress_port=None if dropped else egress_port,
            punted=punted,
            mirror_copies=mirrors,
        )

    # ------------------------------------------------------------------
    # Pipeline internals
    # ------------------------------------------------------------------
    def _field_value(self, pkt: Packet, path: str, in_port: int, egress_port: int) -> int:
        if path == "standard.ingress_port":
            return in_port
        if path == "standard.egress_port":
            return egress_port
        if path == "meta.is_ipv4":
            return 1 if pkt.is_valid("ipv4") else 0
        if path == "meta.is_ipv6":
            return 1 if pkt.is_valid("ipv6") else 0
        prefix = path.split(".", 1)[0]
        if prefix in (
            "ethernet",
            "ipv4",
            "ipv6",
            "icmp",
            "tcp",
            "udp",
        ) and not pkt.is_valid(prefix):
            return 0
        return pkt.get(path, 0)

    def _acl_lookup(
        self, stage: _AclStage, pkt: Packet, in_port: int, egress_port: int
    ) -> Optional[AclHwEntry]:
        specs = {spec.name: spec for spec in stage.config.keys}
        best: Optional[AclHwEntry] = None
        for entry in stage.entries.values():
            matched = True
            for key, (value, mask) in entry.match_map().items():
                spec = specs.get(key)
                if spec is None:
                    matched = False
                    break
                field_value = self._field_value(pkt, spec.field_path, in_port, egress_port)
                if (field_value & mask) != (value & mask):
                    matched = False
                    break
            if matched and (
                best is None
                or (entry.priority, -entry.entry_id)
                > (best.priority, -best.entry_id)
            ):
                best = entry
        return best

    def _lookup_route(
        self, vrf_id: int, version: int, dst: int, width: int
    ) -> Optional[RouteTarget]:
        table = self.routes.get((vrf_id, version))
        if not table:
            return None
        best: Optional[Tuple[int, RouteTarget]] = None
        for (prefix, plen), target in table.items():
            if plen == 0:
                matches = True
            else:
                mask = ((1 << plen) - 1) << (width - plen)
                matches = (dst & mask) == (prefix & mask)
            if matches and (best is None or plen > best[0]):
                best = (plen, target)
        return best[1] if best else None

    def _select_wcmp_member(self, gid: int, pkt: Packet) -> Optional[int]:
        members = self.wcmp_groups.get(gid)
        if not members:
            return None
        expanded: List[int] = []
        for nh, weight in members:
            expanded.extend([nh] * weight)
        material = bytearray(self.profile.hash_seed.to_bytes(4, "big"))
        for path in ("ipv4.src_addr", "ipv4.dst_addr", "ipv4.protocol", "ipv6.src_addr", "ipv6.dst_addr"):
            value = pkt.get(path, 0)
            material += value.to_bytes((value.bit_length() + 7) // 8 or 1, "big")
        index = zlib.crc32(bytes(material)) % len(expanded)
        return expanded[index]

    def _resolve_nexthop(self, nh_id: int, pkt: Packet) -> Optional[int]:
        entry = self.nexthops.get(nh_id)
        if entry is None:
            return None
        rif_id, neighbor_id = entry
        rif = self.rifs.get(rif_id)
        if rif is None:
            return None
        port, src_mac = rif
        dst_mac = self.neighbors.get((rif_id, neighbor_id))
        if dst_mac is None:
            return None
        pkt.set("ethernet.src_addr", src_mac)
        pkt.set("ethernet.dst_addr", dst_mac)
        return port
