"""Compiled concrete evaluation of term DAGs.

:func:`repro.smt.terms.evaluate` interprets a term by recursive descent:
every node pays a string-keyed op dispatch, a per-call memo-dict probe, and
a Python frame.  The hot concrete-evaluation paths — goal subsumption
(every goal condition against every prior witness), model evaluation, and
the semantic passes' reachability prefilters — evaluate the *same* large
condition thousands of times under different assignments, so the per-node
interpretation overhead dominates.

This module flattens a term DAG once into postorder bytecode: parallel flat
arrays of integer opcodes and argument *slot indices*, one slot per unique
subterm, executed by a single tight loop.  Constants are folded into the
initial slot template at compile time and variables load through a prelude
table, so the dispatch loop only ever sees interior operators.  Width
masks, sign bits, and extract offsets are precomputed into the instruction
payloads.

Compilation happens once per term and is cached process-wide.  Terms are
hash-consed (same structure ⇒ same object — see ``terms._TERM_CACHE``), so
keying the cache on term identity is exactly "compiled once per
``term_digest``" without paying a SHA-256 walk per lookup.

The tree-walking ``terms.evaluate`` is kept unchanged as the independent
reference semantics; ``tests/test_smt_compile.py`` holds a randomized
equivalence guard between the two.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Mapping, Tuple

from repro.smt import terms as T

# Integer opcodes for the dispatch loop, ordered roughly by frequency in
# packet-generation goal conditions (match-guard negation chains are
# NOT/AND/EQ/ITE-heavy) so the elif chain short-circuits early.
_NOT = 0
_AND = 1
_EQ = 2
_ITE = 3
_OR = 4
_BVAND = 5
_EXTRACT = 6
_ZEXT = 7
_ULT = 8
_ULE = 9
_CONCAT = 10
_BVADD = 11
_BVOR = 12
_XOR = 13  # boolean xor and bvxor share the dispatch (slots hold 0/1 ints)
_BVSUB = 14
_BVSHL = 15
_BVLSHR = 16
_BVNOT = 17
_BVNEG = 18
_BVMUL = 19
_SEXT = 20
_SLT = 21
_SLE = 22

_OPCODES = {
    T.OP_NOT: _NOT,
    T.OP_AND: _AND,
    T.OP_EQ: _EQ,
    T.OP_ITE: _ITE,
    T.OP_OR: _OR,
    T.OP_BVAND: _BVAND,
    T.OP_EXTRACT: _EXTRACT,
    T.OP_ZEXT: _ZEXT,
    T.OP_ULT: _ULT,
    T.OP_ULE: _ULE,
    T.OP_CONCAT: _CONCAT,
    T.OP_BVADD: _BVADD,
    T.OP_BVOR: _BVOR,
    T.OP_XOR: _XOR,
    T.OP_BVXOR: _XOR,
    T.OP_BVSUB: _BVSUB,
    T.OP_BVSHL: _BVSHL,
    T.OP_BVLSHR: _BVLSHR,
    T.OP_BVNOT: _BVNOT,
    T.OP_BVNEG: _BVNEG,
    T.OP_BVMUL: _BVMUL,
    T.OP_SEXT: _SEXT,
    T.OP_SLT: _SLT,
    T.OP_SLE: _SLE,
}


class CompiledTerm:
    """A term DAG flattened into postorder bytecode.

    Layout: ``_template`` is the initial slot array (constants prefilled,
    everything else 0); ``_var_loads`` is the variable prelude — tuples of
    ``(slot, name, mask)`` where ``mask`` is the width mask for bitvector
    variables and ``-1`` for booleans (truthiness load); the parallel
    ``_ops``/``_dest``/``_a1``/``_a2``/``_aux`` tuples hold one instruction
    per interior node in postorder, so every operand slot is written before
    it is read.
    """

    __slots__ = (
        "_template",
        "_var_loads",
        "_ops",
        "_dest",
        "_a1",
        "_a2",
        "_aux",
        "_root",
        "variables",
        "var_masks",
    )

    def __init__(self, term: T.Term) -> None:
        slot_of: Dict[T.Term, int] = {}
        template = []
        var_loads = []
        ops = []
        dest = []
        arg1 = []
        arg2 = []
        aux = []
        var_masks: Dict[str, int] = {}

        visited = set()
        stack = [(term, False)]
        while stack:
            t, ready = stack.pop()
            if not ready:
                if t in visited:
                    continue
                visited.add(t)
                stack.append((t, True))
                stack.extend(
                    (a, False) for a in reversed(t.args) if a not in visited
                )
                continue
            slot = len(template)
            template.append(0)
            slot_of[t] = slot
            op = t.op
            if op == T.OP_CONST:
                template[slot] = t.payload
                continue
            if op == T.OP_VAR:
                mask = ((1 << t.width) - 1) if t.is_bv else -1
                var_loads.append((slot, t.payload, mask))
                var_masks[t.payload] = mask if mask >= 0 else 1
                continue
            opcode = _OPCODES.get(op)
            if opcode is None:  # pragma: no cover - defensive
                raise NotImplementedError(f"compile: unknown op {op}")
            slots = [slot_of[a] for a in t.args]
            a1 = slots[0] if slots else -1
            a2 = slots[1] if len(slots) > 1 else -1
            payload = None
            if opcode in (_AND, _OR):
                payload = tuple(slots)
            elif opcode == _ITE:
                payload = slots[2]
            elif opcode == _CONCAT:
                payload = tuple((s, a.width) for s, a in zip(slots, t.args))
            elif opcode == _EXTRACT:
                hi, lo = t.payload
                payload = (lo, (1 << (hi - lo + 1)) - 1)
            elif opcode == _SEXT:
                child_width = t.args[0].width
                payload = (1 << (child_width - 1), ((1 << t.payload) - 1) << child_width)
            elif opcode == _BVSHL:
                payload = (t.payload, (1 << t.width) - 1)
            elif opcode == _BVLSHR:
                payload = t.payload
            elif opcode in (_BVNOT, _BVNEG, _BVADD, _BVSUB, _BVMUL):
                payload = (1 << t.width) - 1
            elif opcode in (_SLT, _SLE):
                w = t.args[0].width
                payload = (1 << (w - 1), 1 << w)
            ops.append(opcode)
            dest.append(slot)
            arg1.append(a1)
            arg2.append(a2)
            aux.append(payload)

        self._template = template
        self._var_loads = tuple(var_loads)
        self._ops = tuple(ops)
        self._dest = tuple(dest)
        self._a1 = tuple(arg1)
        self._a2 = tuple(arg2)
        self._aux = tuple(aux)
        self._root = slot_of[term]
        self.variables: FrozenSet[str] = frozenset(var_masks)
        self.var_masks = var_masks

    def evaluate(self, assignment: Mapping[str, int]) -> int:
        """Evaluate under ``assignment`` (name -> int; missing vars are 0).

        Agrees with :func:`repro.smt.terms.evaluate` on every term:
        booleans evaluate to 0/1, bitvectors to width-masked ints.
        """
        slots = self._template[:]
        get = assignment.get
        for slot, name, mask in self._var_loads:
            v = get(name, 0)
            slots[slot] = (v & mask) if mask >= 0 else (1 if v else 0)
        ops = self._ops
        a1 = self._a1
        a2 = self._a2
        aux = self._aux
        dest = self._dest
        for i in range(len(ops)):
            op = ops[i]
            if op == _NOT:
                r = 1 - slots[a1[i]]
            elif op == _AND:
                r = 1
                for s in aux[i]:
                    if not slots[s]:
                        r = 0
                        break
            elif op == _EQ:
                r = 1 if slots[a1[i]] == slots[a2[i]] else 0
            elif op == _ITE:
                r = slots[a2[i]] if slots[a1[i]] else slots[aux[i]]
            elif op == _OR:
                r = 0
                for s in aux[i]:
                    if slots[s]:
                        r = 1
                        break
            elif op == _BVAND:
                r = slots[a1[i]] & slots[a2[i]]
            elif op == _EXTRACT:
                lo, mask = aux[i]
                r = (slots[a1[i]] >> lo) & mask
            elif op == _ZEXT:
                r = slots[a1[i]]
            elif op == _ULT:
                r = 1 if slots[a1[i]] < slots[a2[i]] else 0
            elif op == _ULE:
                r = 1 if slots[a1[i]] <= slots[a2[i]] else 0
            elif op == _CONCAT:
                r = 0
                for s, w in aux[i]:
                    r = (r << w) | slots[s]
            elif op == _BVADD:
                r = (slots[a1[i]] + slots[a2[i]]) & aux[i]
            elif op == _BVOR:
                r = slots[a1[i]] | slots[a2[i]]
            elif op == _XOR:
                r = slots[a1[i]] ^ slots[a2[i]]
            elif op == _BVSUB:
                r = (slots[a1[i]] - slots[a2[i]]) & aux[i]
            elif op == _BVSHL:
                shift, mask = aux[i]
                r = (slots[a1[i]] << shift) & mask
            elif op == _BVLSHR:
                r = slots[a1[i]] >> aux[i]
            elif op == _BVNOT:
                r = ~slots[a1[i]] & aux[i]
            elif op == _BVNEG:
                r = -slots[a1[i]] & aux[i]
            elif op == _BVMUL:
                r = (slots[a1[i]] * slots[a2[i]]) & aux[i]
            elif op == _SEXT:
                sign, ext = aux[i]
                v = slots[a1[i]]
                r = (v | ext) if v & sign else v
            elif op == _SLT:
                sign, modulus = aux[i]
                a = slots[a1[i]]
                b = slots[a2[i]]
                if a & sign:
                    a -= modulus
                if b & sign:
                    b -= modulus
                r = 1 if a < b else 0
            else:  # _SLE
                sign, modulus = aux[i]
                a = slots[a1[i]]
                b = slots[a2[i]]
                if a & sign:
                    a -= modulus
                if b & sign:
                    b -= modulus
                r = 1 if a <= b else 0
            slots[dest[i]] = r
        return slots[self._root]

    @property
    def size(self) -> int:
        """Number of slots (unique DAG nodes)."""
        return len(self._template)


# Process-wide compile cache.  Hash-consing makes term identity equivalent
# to structural identity, so this is "one compile per term_digest" without
# computing digests.  Entries live as long as the term cache itself.
_COMPILE_CACHE: Dict[T.Term, CompiledTerm] = {}


def compile_term(term: T.Term) -> CompiledTerm:
    """The compiled form of ``term``, compiled at most once per process."""
    compiled = _COMPILE_CACHE.get(term)
    if compiled is None:
        compiled = CompiledTerm(term)
        _COMPILE_CACHE[term] = compiled
    return compiled


def evaluate_compiled(term: T.Term, assignment: Mapping[str, int]) -> int:
    """Drop-in replacement for :func:`terms.evaluate` via the compile cache."""
    return compile_term(term).evaluate(assignment)


def cache_info() -> Tuple[int, int]:
    """(number of compiled terms, total slots across them) — for tests."""
    return len(_COMPILE_CACHE), sum(c.size for c in _COMPILE_CACHE.values())
