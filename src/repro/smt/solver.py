"""User-facing SMT solver for quantifier-free bitvector formulas.

The :class:`Solver` mirrors the slice of the Z3 Python API that p4-symbolic
needs: assert boolean terms, check satisfiability (optionally under
assumptions), and extract models.  Internally the formula is bit-blasted
once; each :meth:`check` call with assumptions reuses the encoding and the
SAT solver's learned clauses, which is what makes iterating over hundreds of
per-entry coverage goals tractable.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, List, Mapping, Optional

from repro.smt import terms as T
from repro.smt.bitblast import BitBlaster, StructuralBitBlaster
from repro.smt.compile import evaluate_compiled
from repro.smt.legacy_sat import LegacySatSolver
from repro.smt.sat import SatSolver
from repro.smt.simplify import simplify

_ENCODERS = {"structural": StructuralBitBlaster, "tseitin": BitBlaster}
_KERNELS = {"modern": SatSolver, "legacy": LegacySatSolver}


class Result(enum.Enum):
    SAT = "sat"
    UNSAT = "unsat"


class Model(Mapping[str, int]):
    """A satisfying assignment: variable name -> integer value.

    Bool variables map to 0/1.  Variables never mentioned in the formula are
    absent; :func:`repro.smt.terms.evaluate` treats missing names as 0.
    """

    def __init__(self, values: Dict[str, int]) -> None:
        self._values = dict(values)

    def __getitem__(self, name: str) -> int:
        return self._values[name]

    def __iter__(self):
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def evaluate(self, term: T.Term) -> int:
        """Evaluate an arbitrary term under this model.

        Uses the compiled evaluator (:mod:`repro.smt.compile`); repeated
        evaluation of the same term across models pays compilation once.
        """
        return evaluate_compiled(term, self._values)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self._values.items()))
        return f"Model({inner})"


class Solver:
    """An incremental QF_BV solver.

    Usage::

        s = Solver()
        x = bv_var("x", 8)
        s.add(x.ult(10))
        assert s.check() is Result.SAT
        assert s.model()["x"] < 10
    """

    def __init__(
        self,
        simplify_terms: bool = True,
        encoder: str = "structural",
        kernel: str = "modern",
    ) -> None:
        """``encoder`` picks the bit-blaster (``"structural"`` — polarity-aware
        with gate sharing and constant folding — or the retained ``"tseitin"``
        baseline); ``kernel`` picks the SAT core (``"modern"`` with blocking
        literals/binary lists/LBD retention, or ``"legacy"``).  Both baselines
        exist for differential testing; defaults are the fast paths."""
        if encoder not in _ENCODERS:
            raise ValueError(f"unknown encoder {encoder!r}; choose from {sorted(_ENCODERS)}")
        if kernel not in _KERNELS:
            raise ValueError(f"unknown kernel {kernel!r}; choose from {sorted(_KERNELS)}")
        self.encoder = encoder
        self.kernel = kernel
        self._sat = _KERNELS[kernel]()
        self._blaster = _ENCODERS[encoder](self._sat)
        self._simplify = simplify_terms
        self._assertions: List[T.Term] = []
        self._last_result: Optional[Result] = None
        self._var_sorts: Dict[str, T.Sort] = {}

    # ------------------------------------------------------------------
    # Assertions
    # ------------------------------------------------------------------
    def add(self, *constraints: T.Term) -> None:
        """Assert one or more boolean terms."""
        for c in constraints:
            if not c.is_bool:
                raise TypeError(f"assertions must be boolean, got {c.sort!r}")
            if self._simplify:
                c = simplify(c)
            self._assertions.append(c)
            self._var_sorts.update(T.free_variables(c))
            self._blaster.assert_term(c)
            self._last_result = None

    @property
    def assertions(self) -> List[T.Term]:
        return list(self._assertions)

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def check(self, *assumptions: T.Term) -> Result:
        """Check satisfiability of the assertions, under optional assumptions.

        Assumption terms are encoded (and cached) but not permanently
        asserted, so successive checks with different assumptions reuse the
        same encoding.
        """
        assumption_lits = []
        for a in assumptions:
            if not a.is_bool:
                raise TypeError(f"assumptions must be boolean, got {a.sort!r}")
            if self._simplify:
                a = simplify(a)
            if a is T.FALSE:
                self._last_result = Result.UNSAT
                return self._last_result
            if a is T.TRUE:
                continue
            self._var_sorts.update(T.free_variables(a))
            assumption_lits.append(self._blaster.literal_for(a))
        sat = self._sat.solve(assumption_lits)
        self._last_result = Result.SAT if sat else Result.UNSAT
        return self._last_result

    def model(self, names: Optional[Iterable[str]] = None) -> Model:
        """The model from the last successful :meth:`check`.

        ``names`` restricts extraction to those variables (unknown names are
        skipped, matching the "absent from the formula ⇒ absent from the
        model" contract).  Long-lived pooled solvers accumulate variables
        across many table states, so extracting only the variables a caller
        actually reads keeps model cost proportional to the query, not to
        the solver's lifetime.
        """
        if self._last_result is not Result.SAT:
            raise RuntimeError("model() requires a preceding SAT check()")
        values: Dict[str, int] = {}
        wanted = (
            self._var_sorts
            if names is None
            else [n for n in names if n in self._var_sorts]
        )
        for name in wanted:
            bits = self._blaster.variable_bits(name)
            if bits is None:
                # Variable was simplified away entirely; any value works.
                values[name] = 0
                continue
            value = 0
            for i, lit in enumerate(bits):
                bit = self._sat.model_value(lit >> 1)
                if lit & 1:
                    bit = not bit
                if bit:
                    value |= 1 << i
            values[name] = value
        return Model(values)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def stats(self) -> Dict[str, int]:
        return {
            "conflicts": self._sat.conflicts,
            "decisions": self._sat.decisions,
            "propagations": self._sat.propagations,
            "restarts": self._sat.restarts,
            "sat_vars": self._sat.num_vars,
            "cnf_clauses": getattr(self._sat, "clauses_received", 0),
            "gates_shared": getattr(self._blaster, "gates_shared", 0),
            "db_reductions": getattr(self._sat, "db_reductions", 0),
            "minimized_literals": getattr(self._sat, "minimized_literals", 0),
        }
