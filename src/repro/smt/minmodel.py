"""Lexicographically minimal models, independent of solver history.

Canonical witness extraction is the property that makes deep solver
rewrites safe in this repo: a verdict's artifact is a pure function of
the formula, never of pool warmth, encoder choice, or kernel heuristics.
This module holds the minimization core so both the analysis layer
(:mod:`repro.analysis.witness`) and the fuzzer's constraint-model
sampling share one implementation.

``minimal_assignment`` pins variables in sorted-name order, minimizing
each given the pins before it; ``_minimal_value`` is the greedy
MSB-first prefer-zero descent used per variable.  Everything flows
through ``Solver.check(*assumptions)``, so pooled warm solvers are safe.

Caveat for callers: the concrete fast path compiles only the
*assumptions*, so any constraint that lives in the solver's permanent
assertions but matters for minimality must also be passed as an
assumption — otherwise a variable it constrains can be wrongly accepted
at zero by the evaluator.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.smt import terms as T
from repro.smt.compile import compile_term
from repro.smt.solver import Result, Solver


def _minimal_value(
    solver: Solver, assumptions: Sequence[T.Term], pins: List[T.Term], term: T.Term
) -> int:
    """The smallest value of ``term`` consistent with the assumptions and
    the pins fixed so far.

    Greedy MSB-first prefer-zero descent, computed segment-wise: try the
    whole remaining run of zero bits in one check; on failure
    binary-search the longest satisfiable zero prefix (prefix
    satisfiability is monotone), after which the next bit is forced to 1.
    With a zero background the greedy walk *is* unsigned minimization, so
    the result is the unique minimum — independent of solver history.

    Precondition: the caller established that value 0 is unsatisfiable
    and that the assumption set itself is satisfiable.
    """
    width = term.width
    value = 0
    bit_pins: List[T.Term] = []

    def zero_pins(msb: int, count: int) -> List[T.Term]:
        return [
            T.extract(term, b, b).eq(T.bv_const(0, 1))
            for b in range(msb, msb - count, -1)
        ]

    def sat_with(extra: List[T.Term]) -> bool:
        return (
            solver.check(*assumptions, *pins, *bit_pins, *extra) is Result.SAT
        )

    bit = width - 1
    first = True
    while bit >= 0:
        remaining = bit + 1
        if not first and sat_with(zero_pins(bit, remaining)):
            # The whole suffix can be zero; the value so far is minimal.
            break
        first = False
        lo, hi = 0, remaining  # lo known-SAT run length, hi known-UNSAT
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if sat_with(zero_pins(bit, mid)):
                lo = mid
            else:
                hi = mid
        if lo:
            bit_pins.extend(zero_pins(bit, lo))
            bit -= lo
        # The next bit cannot be zero: every model has it set.
        bit_pins.append(T.extract(term, bit, bit).eq(T.bv_const(1, 1)))
        value |= 1 << bit
        bit -= 1
    return value


def minimal_assignment(
    solver: Solver,
    assumptions: Sequence[T.Term],
    variables: Dict[str, T.Term],
) -> Optional[Dict[str, int]]:
    """The lexicographically minimal model of ``assumptions`` over
    ``variables`` (name -> bitvector term), pinning variables in sorted
    name order and minimizing each given the pins before it.

    Returns ``None`` when the assumption set is unsatisfiable.  All
    queries flow through ``Solver.check(*assumptions)``, so pooled warm
    solvers are safe and the result is history-independent.
    """
    if solver.check(*assumptions) is not Result.SAT:
        return None
    formula = T.and_(*assumptions) if assumptions else T.TRUE
    compiled = compile_term(formula)
    # One valid completion seeds the concrete fast path: if the current
    # model already has a variable at zero (or at the candidate minimum),
    # no solver query is needed to accept it.
    model = dict(solver.model(compiled.variables))
    out: Dict[str, int] = {}
    pins: List[T.Term] = []
    for name in sorted(variables):
        term = variables[name]
        if name not in compiled.variables:
            out[name] = 0  # unconstrained: minimum is trivially zero
            continue
        is_bool = isinstance(term.sort, T.BoolSort)
        zero_pin = T.not_(term) if is_bool else term.eq(T.bv_const(0, term.width))
        chosen: Optional[int] = None
        # {**model, **out} is a known model of assumptions ∧ pins (out
        # overrides keep it aligned with every pin accepted so far), so a
        # true evaluation here is a proof — no solver query needed.
        if compiled.evaluate({**model, **out, name: 0}):
            chosen = 0
        elif solver.check(*assumptions, *pins, zero_pin) is Result.SAT:
            chosen = 0
            model = dict(solver.model(compiled.variables))
        if chosen is None:
            # For booleans, zero (false) is unsat, so true is forced.
            chosen = (
                1 if is_bool else _minimal_value(solver, assumptions, pins, term)
            )
            pin = term if is_bool else term.eq(T.bv_const(chosen, term.width))
            solver.check(*assumptions, *pins, pin)
            model = dict(solver.model(compiled.variables))
        out[name] = chosen
        pins.append(
            zero_pin
            if chosen == 0
            else (term if is_bool else term.eq(T.bv_const(chosen, term.width)))
        )
    return out
