"""Cross-state solver pooling for incremental packet generation.

The harness validates a *sequence* of table states (fuzzing batches, churn
replays, single-entry edits).  Constructing a fresh :class:`Solver` per
state re-bit-blasts the entire program encoding even though the profile
constraints — parser pins, port validity, exclusions — are identical across
states, and the goal conditions mostly share structure with the previous
state's (hash-consing gives the *same term objects* for unchanged
subformulas).

A :class:`SolverPool` keeps one long-lived solver per key (per
(program, profile) for generation, per table for the fuzzer's constraint
models).  Only the state-independent constraint groups are ever asserted
permanently; per-state goal conditions flow in through
``Solver.check(assumptions)``, whose Tseitin root literals act as the
activation literals — flipping which condition is "on" is a new assumption
set against the same encoding, reusing the blaster's per-term caches and
the SAT solver's learned clauses (``SatSolver.solve(assumptions)``).
Editing one entry therefore re-encodes only the conditions that
structurally mention it; everything else hits the cache.

Soundness: fresh-variable names (``name#counter``) collide across states,
but those are shared *free* variables and only one state's condition is
assumed per check, so a pooled solver can never mix constraints from two
states.  The accumulated encoding grows monotonically; stale definitional
clauses are satisfiable on their own and cost only memory.

Pools fork cleanly: parallel shard workers inherit a warm pool through
fork's copy-on-write memory and keep solving against the parent's learned
clauses.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Set, Tuple

from repro.smt import terms as T
from repro.smt.solver import Solver

PoolKey = Tuple[str, ...]

# Sentinel distinguishing "never solved" from "solved, unsatisfiable".
MISS = object()


class SolverPool:
    """Keyed, long-lived incremental solvers with assert-once constraints."""

    def __init__(self, encoder: str = "structural", kernel: str = "modern") -> None:
        # Encoder/kernel config applies to every solver the pool builds;
        # legacy values turn the whole pool into a differential baseline.
        self.encoder = encoder
        self.kernel = kernel
        self._solvers: Dict[PoolKey, Solver] = {}
        # Terms already permanently asserted per solver.  Identity-keyed:
        # hash-consing makes "same structure" mean "same object", so an
        # unchanged constraint group re-offered for a new table state is
        # recognised without a structural walk.
        self._asserted: Dict[PoolKey, Set[T.Term]] = {}
        # Solved-formula memo: (program, formula-term) -> canonical witness
        # (or None for UNSAT).  A formula's verdict and its canonical
        # witness are pure functions of the formula itself — never of
        # solver history — so across table states every goal whose solved
        # formula is unchanged (the same hash-consed term) is answered here
        # without touching a solver.  Only the formulas a table edit
        # actually changed reach the warm solver, which in turn re-encodes
        # only their changed subterms.
        self._formula_results: Dict[Tuple[str, T.Term], Optional[Dict[str, int]]] = {}
        # General-purpose side memo for derived artifacts whose first
        # (cold) computation is deterministic — e.g. the fuzzer's sampled
        # constraint models.  Reusing the cold result verbatim keeps
        # behaviour independent of pool warmth: a warm solver might
        # legitimately return *different* models, and anything downstream
        # of those choices (request streams) must not depend on who warmed
        # the pool first.
        self.memo: Dict[Tuple, object] = {}
        self.hits = 0
        self.misses = 0

    def solver(
        self,
        key: PoolKey,
        constraints: Sequence[T.Term] = (),
        simplify_terms: bool = True,
    ) -> Solver:
        """The pooled solver for ``key``, with ``constraints`` asserted once.

        The first request for a key builds the solver; later requests — the
        next fuzzing batch, the next table state — return the warm instance
        and assert only constraint terms it has not seen before.
        """
        solver = self._solvers.get(key)
        if solver is None:
            solver = Solver(
                simplify_terms=simplify_terms,
                encoder=self.encoder,
                kernel=self.kernel,
            )
            self._solvers[key] = solver
            self._asserted[key] = set()
            self.misses += 1
        else:
            self.hits += 1
        asserted = self._asserted[key]
        for constraint in constraints:
            if constraint not in asserted:
                asserted.add(constraint)
                solver.add(constraint)
        return solver

    # ------------------------------------------------------------------
    # Solved-formula memo
    # ------------------------------------------------------------------
    def lookup_formula(self, key: Tuple[str, T.Term]):
        """The memoised outcome for a solved formula.

        Returns the canonical witness dict, ``None`` for a memoised UNSAT,
        or the :data:`MISS` sentinel when the formula was never solved.
        """
        return self._formula_results.get(key, MISS)

    def store_formula(
        self, key: Tuple[str, T.Term], witness: Optional[Dict[str, int]]
    ) -> None:
        self._formula_results[key] = witness

    def __len__(self) -> int:
        return len(self._solvers)

    def __contains__(self, key: PoolKey) -> bool:
        return key in self._solvers

    def discard(self, key: PoolKey) -> None:
        """Drop one solver (e.g. after an encoding reaches a size budget)."""
        self._solvers.pop(key, None)
        self._asserted.pop(key, None)

    def clear(self) -> None:
        self._solvers.clear()
        self._asserted.clear()
        self._formula_results.clear()
        self.memo.clear()

    @property
    def stats(self) -> Dict[str, int]:
        """Aggregate SAT effort across every pooled solver."""
        out = {"solvers": len(self._solvers), "hits": self.hits, "misses": self.misses,
               "conflicts": 0, "decisions": 0, "propagations": 0,
               "sat_vars": 0, "cnf_clauses": 0, "gates_shared": 0}
        for solver in self._solvers.values():
            s = solver.stats
            out["conflicts"] += s["conflicts"]
            out["decisions"] += s["decisions"]
            out["propagations"] += s["propagations"]
            out["sat_vars"] += s["sat_vars"]
            out["cnf_clauses"] += s["cnf_clauses"]
            out["gates_shared"] += s["gates_shared"]
        return out
