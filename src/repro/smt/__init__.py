"""repro.smt — a from-scratch SMT solver for quantifier-free bitvectors.

This package replaces Z3 in the SwitchV reproduction.  p4-symbolic (§5 of the
paper) only requires the decidable theory of fixed-width bitvectors with
equality, so we implement exactly that:

* :mod:`repro.smt.terms` — an immutable, hash-consed term language (booleans
  and bitvectors) together with a concrete evaluator used for model
  validation and property tests.
* :mod:`repro.smt.simplify` — constant folding and local rewriting.
* :mod:`repro.smt.bitblast` — two CNF encoders: the default
  ``StructuralBitBlaster`` (constant folding at the literal layer,
  gate-level structural hashing, polarity-aware Plaisted–Greenbaum
  clause emission) and the retained Tseitin ``BitBlaster`` baseline.
* :mod:`repro.smt.sat` — the default CDCL SAT kernel (two-watched literals
  with blocking literals, dedicated binary-clause implication lists, VSIDS,
  first-UIP learning with on-the-fly minimization, LBD-based clause
  retention, Luby restarts) supporting solving under assumptions, which
  p4-symbolic uses to pose many coverage queries against a single
  bit-blasted program encoding.
* :mod:`repro.smt.legacy_sat` — the pre-modernization kernel, kept as a
  differential baseline behind ``Solver(kernel="legacy")``.
* :mod:`repro.smt.solver` — the user-facing ``Solver`` with model extraction
  and the ``encoder``/``kernel`` selection flags.
* :mod:`repro.smt.compile` — postorder bytecode compilation of term DAGs for
  fast repeated concrete evaluation (subsumption, model checks, lint
  prefilters).
* :mod:`repro.smt.minmodel` — lexicographically minimal (canonical) model
  extraction, shared by witness minimization and fuzzer model sampling.
* :mod:`repro.smt.pool` — keyed long-lived solvers reused across table
  states, the cross-state incremental-solving backbone of the harness.
"""

import sys as _sys

# Terms over large table states nest deeply (one guarded ite per entry, so a
# 1300-entry table produces ~1300-deep chains); the recursive bit-blaster and
# evaluator need more stack than CPython's default 1000 frames.
_sys.setrecursionlimit(max(_sys.getrecursionlimit(), 200_000))

from repro.smt.terms import (
    BV,
    BoolSort,
    BVSort,
    FALSE,
    TRUE,
    Term,
    bool_var,
    bv_const,
    bv_var,
    evaluate,
)
from repro.smt.compile import CompiledTerm, compile_term, evaluate_compiled
from repro.smt.pool import SolverPool
from repro.smt.solver import Model, Result, Solver

__all__ = [
    "BV",
    "BVSort",
    "BoolSort",
    "CompiledTerm",
    "FALSE",
    "Model",
    "Result",
    "Solver",
    "SolverPool",
    "TRUE",
    "Term",
    "bool_var",
    "bv_const",
    "bv_var",
    "compile_term",
    "evaluate",
    "evaluate_compiled",
]
