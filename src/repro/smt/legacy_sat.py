"""The pre-modernization CDCL kernel, retained as a differential baseline.

This is the solver :mod:`repro.smt.sat` shipped before blocking literals,
binary implication lists, learned-clause minimization, and LBD retention
landed: plain two-watched-literal propagation (watch lists hold bare
clause indices), activity-only database reduction with a fixed trigger,
and every clause — binary or long — in the clause database.

It is selectable through ``Solver(kernel="legacy")`` /
``SolverPool(kernel="legacy")`` and exists so the verdict-identity tests
and the clause-economy benchmark (``benchmarks/test_cnf_kernel.py``) can
compare the modern kernel against the exact shipped behavior, the same
retained-baseline pattern as the linear state paths of
``tests/test_scale_differential.py``.  Do not grow features here.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Sequence

from repro.smt.sat import FALSE, TRUE, UNASSIGNED, _luby, neg_lit, pos_lit, var_of


class LegacySatSolver:
    """CDCL SAT solver over integer-encoded literals (pre-PR-10 kernel)."""

    def __init__(self) -> None:
        self._num_vars = 0
        # Clause storage: list of literal lists. Learned clauses are appended
        # after the problem clauses; the first `_num_problem_clauses` are
        # never deleted.
        self._clauses: List[List[int]] = []
        self._num_problem_clauses = 0
        self._clause_activity: List[float] = []
        self._watches: List[List[int]] = [[], []]  # lit -> clause indices
        self._assign: List[int] = [UNASSIGNED]  # var -> TRUE/FALSE/UNASSIGNED
        self._level: List[int] = [0]
        self._reason: List[int] = [-1]  # var -> clause index or -1
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._prop_head = 0
        self._activity: List[float] = [0.0]
        self._var_inc = 1.0
        self._var_decay = 0.95
        self._cla_inc = 1.0
        self._cla_decay = 0.999
        # VSIDS order: a max-heap (negated activities) with lazy deletion.
        self._order_heap: List[tuple] = []
        self._in_heap: List[bool] = [False]
        self._polarity: List[bool] = [False]  # phase saving
        self._ok = True
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self.restarts = 0
        self.clauses_received = 0
        # When solving under assumptions that turn out to be unsatisfiable,
        # this holds the subset of failing assumption literals.
        self.failed_assumptions: List[int] = []

    # ------------------------------------------------------------------
    # Problem construction
    # ------------------------------------------------------------------
    def new_var(self) -> int:
        """Allocate a fresh variable; returns its index (1-based)."""
        self._num_vars += 1
        self._assign.append(UNASSIGNED)
        self._level.append(0)
        self._reason.append(-1)
        self._activity.append(0.0)
        self._polarity.append(False)
        self._watches.append([])
        self._watches.append([])
        self._in_heap.append(True)
        heapq.heappush(self._order_heap, (0.0, self._num_vars))
        return self._num_vars

    @property
    def num_vars(self) -> int:
        return self._num_vars

    def add_clause(self, lits: Sequence[int]) -> bool:
        """Add a problem clause. Returns False if the formula became UNSAT.

        Must be called at decision level 0 (i.e. before/between solves).
        """
        if not self._ok:
            return False
        self.clauses_received += 1
        if self._trail_lim:
            self._cancel_until(0)
        # Simplify: drop duplicate and false literals, detect tautologies.
        seen: Dict[int, bool] = {}
        out: List[int] = []
        for lit in lits:
            if lit in seen:
                continue
            if (lit ^ 1) in seen:
                return True  # tautology
            val = self._lit_value(lit)
            if val == TRUE and self._level[var_of(lit)] == 0:
                return True  # already satisfied at the root
            if val == FALSE and self._level[var_of(lit)] == 0:
                continue  # permanently false literal
            seen[lit] = True
            out.append(lit)
        if not out:
            self._ok = False
            return False
        if len(out) == 1:
            if not self._enqueue(out[0], -1):
                self._ok = False
                return False
            conflict = self._propagate()
            if conflict is not None:
                self._ok = False
                return False
            return True
        idx = len(self._clauses)
        self._clauses.append(out)
        self._clause_activity.append(0.0)
        self._watches[out[0]].append(idx)
        self._watches[out[1]].append(idx)
        self._num_problem_clauses += 1
        return True

    # ------------------------------------------------------------------
    # Assignment plumbing
    # ------------------------------------------------------------------
    def _lit_value(self, lit: int) -> int:
        val = self._assign[var_of(lit)]
        if val == UNASSIGNED:
            return UNASSIGNED
        return val ^ (lit & 1)

    def _enqueue(self, lit: int, reason: int) -> bool:
        val = self._lit_value(lit)
        if val == FALSE:
            return False
        if val == TRUE:
            return True
        var = var_of(lit)
        self._assign[var] = TRUE if not (lit & 1) else FALSE
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._trail.append(lit)
        return True

    def _propagate(self) -> Optional[int]:
        """Unit propagation. Returns a conflicting clause index, or None."""
        assign = self._assign
        watches = self._watches
        clauses = self._clauses
        trail = self._trail
        level = self._level
        reason = self._reason
        trail_lim_len = len(self._trail_lim)
        while self._prop_head < len(trail):
            lit = trail[self._prop_head]
            self._prop_head += 1
            self.propagations += 1
            falsified = lit ^ 1
            watch_list = watches[falsified]
            i = 0
            while i < len(watch_list):
                cidx = watch_list[i]
                clause = clauses[cidx]
                # Normalise: watched literals are clause[0] and clause[1].
                if clause[0] == falsified:
                    clause[0], clause[1] = clause[1], clause[0]
                # clause[1] == falsified now.
                first = clause[0]
                fval = assign[first >> 1]
                if fval != UNASSIGNED and (fval ^ (first & 1)) == TRUE:
                    i += 1
                    continue
                # Search for a new literal to watch.
                moved = False
                for k in range(2, len(clause)):
                    other = clause[k]
                    oval = assign[other >> 1]
                    if oval == UNASSIGNED or (oval ^ (other & 1)) != FALSE:
                        clause[1] = other
                        clause[k] = falsified
                        watches[other].append(cidx)
                        watch_list[i] = watch_list[-1]
                        watch_list.pop()
                        moved = True
                        break
                if moved:
                    continue
                # Clause is unit or conflicting.
                if fval != UNASSIGNED:  # and first is FALSE here
                    self._prop_head = len(trail)
                    return cidx
                # Inlined _enqueue of an unassigned literal.
                var = first >> 1
                assign[var] = TRUE if not (first & 1) else FALSE
                level[var] = trail_lim_len
                reason[var] = cidx
                trail.append(first)
                i += 1
        return None

    # ------------------------------------------------------------------
    # Conflict analysis (first UIP)
    # ------------------------------------------------------------------
    def _analyze(self, conflict: int) -> tuple[List[int], int]:
        learned: List[int] = [0]  # placeholder for asserting literal
        seen = [False] * (self._num_vars + 1)
        counter = 0
        lit = -1
        cidx = conflict
        index = len(self._trail) - 1
        cur_level = len(self._trail_lim)

        while True:
            clause = self._clauses[cidx]
            self._bump_clause(cidx)
            resolved_var = var_of(lit) if lit != -1 else 0
            for q in clause:
                v = var_of(q)
                if v == resolved_var:
                    continue
                if not seen[v] and self._level[v] > 0:
                    seen[v] = True
                    self._bump_var(v)
                    if self._level[v] >= cur_level:
                        counter += 1
                    else:
                        learned.append(q)
            # Pick the next literal on the trail to resolve on.
            while not seen[var_of(self._trail[index])]:
                index -= 1
            lit = self._trail[index]
            v = var_of(lit)
            seen[v] = False
            counter -= 1
            index -= 1
            if counter == 0:
                break
            cidx = self._reason[v]
        learned[0] = lit ^ 1

        backjump = 0
        if len(learned) > 1:
            max_i = 1
            for i in range(2, len(learned)):
                if self._level[var_of(learned[i])] > self._level[var_of(learned[max_i])]:
                    max_i = i
            learned[1], learned[max_i] = learned[max_i], learned[1]
            backjump = self._level[var_of(learned[1])]
        return learned, backjump

    def _bump_var(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            for v in range(1, self._num_vars + 1):
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100
            # All heap entries are now stale; rebuild.
            self._order_heap = [
                (-self._activity[v], v)
                for v in range(1, self._num_vars + 1)
                if self._assign[v] == UNASSIGNED
            ]
            heapq.heapify(self._order_heap)
            for v in range(1, self._num_vars + 1):
                self._in_heap[v] = self._assign[v] == UNASSIGNED
            return
        if not self._in_heap[var]:
            self._in_heap[var] = True
            heapq.heappush(self._order_heap, (-self._activity[var], var))

    def _bump_clause(self, cidx: int) -> None:
        self._clause_activity[cidx] += self._cla_inc
        if self._clause_activity[cidx] > 1e20:
            for i in range(len(self._clause_activity)):
                self._clause_activity[i] *= 1e-20
            self._cla_inc *= 1e-20

    def _decay_activities(self) -> None:
        self._var_inc /= self._var_decay
        self._cla_inc /= self._cla_decay

    # ------------------------------------------------------------------
    # Backtracking
    # ------------------------------------------------------------------
    def _cancel_until(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        bound = self._trail_lim[level]
        for i in range(len(self._trail) - 1, bound - 1, -1):
            lit = self._trail[i]
            var = var_of(lit)
            self._polarity[var] = not (lit & 1)
            self._assign[var] = UNASSIGNED
            self._reason[var] = -1
            if not self._in_heap[var]:
                self._in_heap[var] = True
                heapq.heappush(self._order_heap, (-self._activity[var], var))
        del self._trail[bound:]
        del self._trail_lim[level:]
        self._prop_head = len(self._trail)

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def _pick_branch_var(self) -> int:
        while self._order_heap:
            _neg_activity, var = heapq.heappop(self._order_heap)
            self._in_heap[var] = False
            if self._assign[var] == UNASSIGNED:
                return var
        return 0

    # ------------------------------------------------------------------
    # Learned clause DB reduction (activity-only, fixed trigger)
    # ------------------------------------------------------------------
    def _reduce_db(self) -> None:
        learned_idx = list(range(self._num_problem_clauses, len(self._clauses)))
        if len(learned_idx) < 2000:
            return
        learned_idx.sort(key=lambda i: self._clause_activity[i])
        locked = {self._reason[var_of(lit)] for lit in self._trail}
        to_remove = set()
        for i in learned_idx[: len(learned_idx) // 2]:
            if i in locked or len(self._clauses[i]) <= 2:
                continue
            to_remove.add(i)
        if not to_remove:
            return
        # Compact only the learned suffix; problem-clause indices (below
        # ``base``) never move.
        base = self._num_problem_clauses
        clauses = self._clauses
        activity = self._clause_activity
        remap: Dict[int, int] = {}
        dirty = set()
        write = base
        for read in range(base, len(clauses)):
            if read in to_remove:
                c = clauses[read]
                dirty.add(c[0])
                dirty.add(c[1])
                continue
            if read != write:
                remap[read] = write
                c = clauses[read]
                dirty.add(c[0])
                dirty.add(c[1])
            write += 1
        for read, dst in remap.items():
            clauses[dst] = clauses[read]
            activity[dst] = activity[read]
        del clauses[write:]
        del activity[write:]
        for lit in dirty:
            self._watches[lit] = [
                remap.get(i, i) for i in self._watches[lit] if i not in to_remove
            ]
        for lit in self._trail:
            var = var_of(lit)
            r = self._reason[var]
            if r >= base:
                self._reason[var] = remap.get(r, r)

    # ------------------------------------------------------------------
    # Main solve loop
    # ------------------------------------------------------------------
    def solve(self, assumptions: Iterable[int] = ()) -> bool:
        """Solve the formula under ``assumptions`` (a list of literals)."""
        self.failed_assumptions = []
        if not self._ok:
            return False
        self._cancel_until(0)
        conflict = self._propagate()
        if conflict is not None:
            self._ok = False
            return False

        assumptions = list(assumptions)
        restart_count = 0
        conflict_budget = 100 * _luby(restart_count + 1)
        conflicts_here = 0

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.conflicts += 1
                conflicts_here += 1
                if len(self._trail_lim) == 0:
                    self._ok = False
                    return False
                learned, backjump = self._analyze(conflict)
                self._cancel_until(max(backjump, 0))
                if len(learned) == 1:
                    if not self._enqueue(learned[0], -1):
                        self._ok = False
                        return False
                else:
                    idx = len(self._clauses)
                    self._clauses.append(learned)
                    self._clause_activity.append(self._cla_inc)
                    self._watches[learned[0]].append(idx)
                    self._watches[learned[1]].append(idx)
                    self._enqueue(learned[0], idx)
                self._decay_activities()
            else:
                if conflicts_here >= conflict_budget:
                    # Restart (but keep assumptions intact by redoing them).
                    self.restarts += 1
                    restart_count += 1
                    conflict_budget = 100 * _luby(restart_count + 1)
                    conflicts_here = 0
                    self._cancel_until(0)
                    self._reduce_db()
                    continue
                # Apply pending assumptions as pseudo-decisions.
                next_lit = 0
                depth = len(self._trail_lim)
                if depth < len(assumptions):
                    lit = assumptions[depth]
                    val = self._lit_value(lit)
                    if val == TRUE:
                        self._trail_lim.append(len(self._trail))
                        continue
                    if val == FALSE:
                        self.failed_assumptions = [lit]
                        self._cancel_until(0)
                        return False
                    next_lit = lit
                else:
                    var = self._pick_branch_var()
                    if var == 0:
                        polarity = self._polarity
                        for lit in self._trail:
                            polarity[lit >> 1] = not (lit & 1)
                        return True
                    self.decisions += 1
                    next_lit = pos_lit(var) if self._polarity[var] else neg_lit(var)
                self._trail_lim.append(len(self._trail))
                self._enqueue(next_lit, -1)

    # ------------------------------------------------------------------
    # Model access
    # ------------------------------------------------------------------
    def model_value(self, var: int) -> bool:
        """Value of ``var`` in the satisfying assignment (False if unset)."""
        return self._assign[var] == TRUE
