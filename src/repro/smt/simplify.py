"""Term simplification: bottom-up constant folding and local rewrites.

The builders in :mod:`repro.smt.terms` already fold fully-constant
applications at construction time; this pass additionally normalises terms
built from partially-concrete inputs (common in p4-symbolic, where table
entries substitute constants into guard templates) before bit-blasting.

Rules implemented (beyond construction-time folding):

* ``x & 0 -> 0``, ``x & ~0 -> x``, ``x | 0 -> x``, ``x | ~0 -> ~0``
* ``x ^ 0 -> x``, ``x + 0 -> x``, ``x - 0 -> x``, ``x * 1 -> x``, ``x * 0 -> 0``
* ``eq(x, x) -> true`` (via hash-consing identity)
* ``ite`` with constant condition or identical branches collapses
* nested extracts/extensions fold
"""

from __future__ import annotations

from typing import Dict

from repro.smt import terms as T


# Persistent memo table.  Terms are hash-consed and immutable and the
# rewrite rules are deterministic, so ``simplify`` is a pure function of
# term identity; memoising it across calls turns the repeated
# simplification of shared trace subterms (every goal condition embeds the
# same guards) into dict lookups.  Unbounded by design, matching the term
# cache's own lifetime policy.
_SIMPLIFY_CACHE: Dict[T.Term, T.Term] = {}


def simplify(term: T.Term) -> T.Term:
    """Return an equivalent, usually smaller, term."""
    cache = _SIMPLIFY_CACHE

    def go(t: T.Term) -> T.Term:
        hit = cache.get(t)
        if hit is not None:
            return hit
        if not t.args:
            cache[t] = t
            return t
        args = tuple(go(a) for a in t.args)
        result = _rebuild(t, args)
        cache[t] = result
        return result

    return go(term)


def _is_zero(t: T.Term) -> bool:
    return t.is_const and t.value == 0


def _is_ones(t: T.Term) -> bool:
    return t.is_const and t.is_bv and t.value == (1 << t.width) - 1


def _is_one(t: T.Term) -> bool:
    return t.is_const and t.value == 1


def _rebuild(t: T.Term, args) -> T.Term:
    op = t.op
    # Boolean connectives: the builders already fold/flatten.
    if op == T.OP_NOT:
        return T.not_(args[0])
    if op == T.OP_AND:
        return T.and_(*args)
    if op == T.OP_OR:
        return T.or_(*args)
    if op == T.OP_XOR:
        return T.xor(args[0], args[1])
    if op == T.OP_EQ:
        return T.eq(args[0], args[1])
    if op == T.OP_ITE:
        return T.ite(args[0], args[1], args[2])
    if op == T.OP_ULT:
        a, b = args
        if a.is_const and b.is_const:
            return T.bool_const(a.value < b.value)
        if _is_zero(b):
            return T.FALSE  # nothing is unsigned-less-than zero
        return a.ult(b)
    if op == T.OP_ULE:
        a, b = args
        if a.is_const and b.is_const:
            return T.bool_const(a.value <= b.value)
        if _is_zero(a):
            return T.TRUE
        if _is_ones(b):
            return T.TRUE
        return a.ule(b)
    if op == T.OP_SLT:
        a, b = args
        return a.slt(b)
    if op == T.OP_SLE:
        a, b = args
        return a.sle(b)
    # Bitvector ops.
    if op == T.OP_BVAND:
        a, b = args
        if a.is_const and b.is_const:
            return T.bv_const(a.value & b.value, a.width)
        if _is_zero(a) or _is_zero(b):
            return T.bv_const(0, a.width)
        if _is_ones(a):
            return b
        if _is_ones(b):
            return a
        if a is b:
            return a
        return a & b
    if op == T.OP_BVOR:
        a, b = args
        if a.is_const and b.is_const:
            return T.bv_const(a.value | b.value, a.width)
        if _is_zero(a):
            return b
        if _is_zero(b):
            return a
        if _is_ones(a) or _is_ones(b):
            return T.bv_const((1 << a.width) - 1, a.width)
        if a is b:
            return a
        return a | b
    if op == T.OP_BVXOR:
        a, b = args
        if a.is_const and b.is_const:
            return T.bv_const(a.value ^ b.value, a.width)
        if _is_zero(a):
            return b
        if _is_zero(b):
            return a
        if a is b:
            return T.bv_const(0, a.width)
        return a ^ b
    if op == T.OP_BVADD:
        a, b = args
        if a.is_const and b.is_const:
            return T.bv_const(a.value + b.value, a.width)
        if _is_zero(a):
            return b
        if _is_zero(b):
            return a
        return a + b
    if op == T.OP_BVSUB:
        a, b = args
        if a.is_const and b.is_const:
            return T.bv_const(a.value - b.value, a.width)
        if _is_zero(b):
            return a
        if a is b:
            return T.bv_const(0, a.width)
        return a - b
    if op == T.OP_BVMUL:
        a, b = args
        if a.is_const and b.is_const:
            return T.bv_const(a.value * b.value, a.width)
        if _is_zero(a) or _is_zero(b):
            return T.bv_const(0, a.width)
        if _is_one(a):
            return b
        if _is_one(b):
            return a
        return a * b
    if op == T.OP_BVNOT:
        (a,) = args
        if a.is_const:
            return T.bv_const(~a.value, a.width)
        if a.op == T.OP_BVNOT:
            return a.args[0]
        return ~a
    if op == T.OP_BVNEG:
        (a,) = args
        if a.is_const:
            return T.bv_const(-a.value, a.width)
        return T.Term(T.OP_BVNEG, (a,), None, a.sort)
    if op == T.OP_BVSHL:
        return T.shl(args[0], t.payload)
    if op == T.OP_BVLSHR:
        return T.lshr(args[0], t.payload)
    if op == T.OP_CONCAT:
        return T.concat(*args)
    if op == T.OP_EXTRACT:
        hi, lo = t.payload
        (a,) = args
        # extract of zext/concat simplifies when fully inside one part.
        if a.op == T.OP_ZEXT and hi < a.args[0].width:
            return T.extract(a.args[0], hi, lo)
        if a.op == T.OP_ZEXT and lo >= a.args[0].width:
            return T.bv_const(0, hi - lo + 1)
        return T.extract(a, hi, lo)
    if op == T.OP_ZEXT:
        return T.zext(args[0], t.payload)
    if op == T.OP_SEXT:
        return T.sext(args[0], t.payload)
    # Fallback: rebuild verbatim.
    return T.Term(op, args, t.payload, t.sort)
