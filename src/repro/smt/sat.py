"""A CDCL SAT solver.

Implements the standard modern architecture:

* two-watched-literal unit propagation with *blocking literals* — watch
  lists hold ``(clause_idx, blocker)`` pairs, so a watched clause whose
  cached blocker is already satisfied is skipped without touching clause
  storage at all,
* dedicated binary-clause implication lists: two-literal clauses never
  enter the clause database; falsifying one side walks a flat list of
  implied literals (reasons are encoded as tagged integers, not clause
  indices),
* first-UIP conflict analysis with clause learning, non-chronological
  backjumping, and on-the-fly learned-clause minimization (a learned
  literal whose reason clause is already subsumed by the rest of the
  learned clause is dropped — self-subsumption against reason clauses),
* glucose-style clause retention: every learned clause records its LBD
  ("glue" — the number of distinct decision levels among its literals);
  database reduction removes the highest-LBD half, always keeping glue
  clauses (LBD <= 2), with a geometric growth schedule on the trigger,
* VSIDS-style activity-based decision heuristic with exponential decay,
* Luby-sequence restarts and phase saving,
* solving under *assumptions*, which lets the bit-blaster encode a formula
  once and answer many coverage queries (p4-symbolic poses one query per
  table entry / branch) without re-encoding.

The previous activity-only kernel is retained verbatim as
:class:`repro.smt.legacy_sat.LegacySatSolver` and selectable through
``Solver(kernel="legacy")`` — the differential baseline for the verdict-
identity tests and the clause-economy benchmark.

Literal encoding: variable ``v`` (1-based) has positive literal ``2*v`` and
negative literal ``2*v + 1``; ``lit ^ 1`` negates.

Reason encoding: ``-1`` means "decision or root fact"; a value ``>= 0`` is
an index into the clause database; a value ``<= -2`` is a *binary reason
tag* ``-2 - partner_lit``, naming the (false) partner literal of the binary
clause that propagated the assignment.  Tags keep binary propagation free
of clause storage entirely.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

TRUE = 1
FALSE = 0
UNASSIGNED = -1


def var_of(lit: int) -> int:
    return lit >> 1


def is_negative(lit: int) -> bool:
    return bool(lit & 1)


def pos_lit(var: int) -> int:
    return var << 1


def neg_lit(var: int) -> int:
    return (var << 1) | 1


def _luby(i: int) -> int:
    """The i-th element (1-based) of the Luby restart sequence.

    The sequence is 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, ...
    """
    k = 1
    while (1 << k) - 1 < i:
        k += 1
    while i != (1 << k) - 1:
        # Recurse into the prefix block: i <- i - (2^(k-1) - 1).
        i -= (1 << (k - 1)) - 1
        k = 1
        while (1 << k) - 1 < i:
            k += 1
    return 1 << (k - 1)


class SatSolver:
    """CDCL SAT solver over integer-encoded literals."""

    def __init__(self) -> None:
        self._num_vars = 0
        # Clause storage holds only clauses of length >= 3.  Problem and
        # learned clauses interleave freely (incremental solving adds
        # problem clauses between solves, after clauses were learned), so
        # a parallel `_learned` flag — not a positional prefix — decides
        # what database reduction may delete.
        self._clauses: List[List[int]] = []
        self._learned: List[bool] = []
        self._clause_activity: List[float] = []
        self._clause_lbd: List[int] = []
        self._num_problem_clauses = 0  # long problem clauses (informational)
        # lit -> [(clause_idx, blocker), ...]: the clause is only fetched
        # when the blocker (some other literal of the clause) isn't
        # already satisfied.
        self._watches: List[List[Tuple[int, int]]] = [[], []]
        # lit -> implied literals: for every binary clause (l v o), o is in
        # _bin_occurs[l] and l is in _bin_occurs[o].  Falsifying l implies
        # every o with reason tag -2 - l.
        self._bin_occurs: List[List[int]] = [[], []]
        self._assign: List[int] = [UNASSIGNED]  # var -> TRUE/FALSE/UNASSIGNED
        self._level: List[int] = [0]
        self._reason: List[int] = [-1]
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._prop_head = 0
        self._activity: List[float] = [0.0]
        self._var_inc = 1.0
        self._var_decay = 0.95
        self._cla_inc = 1.0
        self._cla_decay = 0.999
        # VSIDS order: a max-heap (negated activities) with lazy deletion.
        # Stale entries (outdated activity or already-assigned vars) are
        # skipped at pop time; _in_heap suppresses duplicate pushes.
        self._order_heap: List[tuple] = []
        self._in_heap: List[bool] = [False]
        self._polarity: List[bool] = [False]  # phase saving
        self._ok = True
        # Database-reduction schedule: reduce when the count of deletable
        # (long, learned) clauses reaches the cap; the cap then grows
        # geometrically so a long-lived pooled solver keeps more of the
        # clauses it spent conflicts learning.
        self._reduce_cap = 2000.0
        self._reduce_cap_mult = 1.5
        self._learned_count = 0
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self.restarts = 0
        self.db_reductions = 0
        self.minimized_literals = 0
        # Clauses offered by the encoder (before root simplification) —
        # the clause-economy number benchmark tables compare.
        self.clauses_received = 0
        # When solving under assumptions that turn out to be unsatisfiable,
        # this holds the subset of failing assumption literals.
        self.failed_assumptions: List[int] = []

    # ------------------------------------------------------------------
    # Problem construction
    # ------------------------------------------------------------------
    def new_var(self) -> int:
        """Allocate a fresh variable; returns its index (1-based)."""
        self._num_vars += 1
        self._assign.append(UNASSIGNED)
        self._level.append(0)
        self._reason.append(-1)
        self._activity.append(0.0)
        self._polarity.append(False)
        self._watches.append([])
        self._watches.append([])
        self._bin_occurs.append([])
        self._bin_occurs.append([])
        self._in_heap.append(True)
        heapq.heappush(self._order_heap, (0.0, self._num_vars))
        return self._num_vars

    @property
    def num_vars(self) -> int:
        return self._num_vars

    def add_clause(self, lits: Sequence[int]) -> bool:
        """Add a problem clause. Returns False if the formula became UNSAT.

        Must be called at decision level 0 (i.e. before/between solves).
        """
        if not self._ok:
            return False
        self.clauses_received += 1
        # A previous solve() may have left a partial assignment on the trail;
        # clause addition reasons about root-level state only.
        if self._trail_lim:
            self._cancel_until(0)
        # Simplify: drop duplicate and false literals, detect tautologies.
        seen: Dict[int, bool] = {}
        out: List[int] = []
        for lit in lits:
            if lit in seen:
                continue
            if (lit ^ 1) in seen:
                return True  # tautology
            val = self._lit_value(lit)
            if val == TRUE and self._level[var_of(lit)] == 0:
                return True  # already satisfied at the root
            if val == FALSE and self._level[var_of(lit)] == 0:
                continue  # permanently false literal
            seen[lit] = True
            out.append(lit)
        if not out:
            self._ok = False
            return False
        if len(out) == 1:
            if not self._enqueue(out[0], -1):
                self._ok = False
                return False
            conflict = self._propagate()
            if conflict is not None:
                self._ok = False
                return False
            return True
        if len(out) == 2:
            # Binary clauses live in the implication lists, never in the
            # clause database (and are therefore never deleted).
            self._bin_occurs[out[0]].append(out[1])
            self._bin_occurs[out[1]].append(out[0])
            return True
        idx = len(self._clauses)
        self._clauses.append(out)
        self._learned.append(False)
        self._clause_activity.append(0.0)
        self._clause_lbd.append(0)
        self._watches[out[0]].append((idx, out[1]))
        self._watches[out[1]].append((idx, out[0]))
        self._num_problem_clauses += 1
        return True

    # ------------------------------------------------------------------
    # Assignment plumbing
    # ------------------------------------------------------------------
    def _lit_value(self, lit: int) -> int:
        val = self._assign[var_of(lit)]
        if val == UNASSIGNED:
            return UNASSIGNED
        return val ^ (lit & 1)

    def _enqueue(self, lit: int, reason: int) -> bool:
        val = self._lit_value(lit)
        if val == FALSE:
            return False
        if val == TRUE:
            return True
        var = var_of(lit)
        self._assign[var] = TRUE if not (lit & 1) else FALSE
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._trail.append(lit)
        return True

    def _propagate(self) -> Optional[Tuple[Sequence[int], int]]:
        """Unit propagation. Returns ``(conflict_lits, clause_idx)`` or None.

        ``clause_idx`` is ``-1`` for a conflict in a binary clause (there is
        no database entry to bump).  This is the solver's hot loop; locals
        are cached and literal values are computed inline
        (``assign[var] ^ (lit & 1)`` with the UNASSIGNED sentinel checked
        explicitly) to keep the Python overhead down.
        """
        assign = self._assign
        watches = self._watches
        bin_occurs = self._bin_occurs
        clauses = self._clauses
        trail = self._trail
        level = self._level
        reason = self._reason
        trail_lim_len = len(self._trail_lim)
        while self._prop_head < len(trail):
            lit = trail[self._prop_head]
            self._prop_head += 1
            self.propagations += 1
            falsified = lit ^ 1
            # Binary implications first: a flat list of implied literals,
            # no clause storage touched, reasons are tagged integers.
            for other in bin_occurs[falsified]:
                oval = assign[other >> 1]
                if oval == UNASSIGNED:
                    var = other >> 1
                    assign[var] = TRUE if not (other & 1) else FALSE
                    level[var] = trail_lim_len
                    reason[var] = -2 - falsified
                    trail.append(other)
                elif (oval ^ (other & 1)) == FALSE:
                    self._prop_head = len(trail)
                    return (other, falsified), -1
            watch_list = watches[falsified]
            i = 0
            while i < len(watch_list):
                cidx, blocker = watch_list[i]
                bval = assign[blocker >> 1]
                if bval != UNASSIGNED and (bval ^ (blocker & 1)) == TRUE:
                    # Blocking literal satisfied: clause satisfied, clause
                    # storage never fetched.
                    i += 1
                    continue
                clause = clauses[cidx]
                # Normalise: watched literals are clause[0] and clause[1].
                if clause[0] == falsified:
                    clause[0], clause[1] = clause[1], clause[0]
                # clause[1] == falsified now.
                first = clause[0]
                fval = assign[first >> 1]
                if (
                    first != blocker
                    and fval != UNASSIGNED
                    and (fval ^ (first & 1)) == TRUE
                ):
                    # Satisfied by the other watch: remember it as the
                    # blocker for next time.
                    watch_list[i] = (cidx, first)
                    i += 1
                    continue
                # Search for a new literal to watch.
                moved = False
                for k in range(2, len(clause)):
                    other = clause[k]
                    oval = assign[other >> 1]
                    if oval == UNASSIGNED or (oval ^ (other & 1)) != FALSE:
                        clause[1] = other
                        clause[k] = falsified
                        watches[other].append((cidx, first))
                        watch_list[i] = watch_list[-1]
                        watch_list.pop()
                        moved = True
                        break
                if moved:
                    continue
                # Clause is unit or conflicting.
                if fval != UNASSIGNED:  # and first is FALSE here
                    self._prop_head = len(trail)
                    return clause, cidx
                # Inlined _enqueue of an unassigned literal.
                var = first >> 1
                assign[var] = TRUE if not (first & 1) else FALSE
                level[var] = trail_lim_len
                reason[var] = cidx
                trail.append(first)
                i += 1
        return None

    # ------------------------------------------------------------------
    # Conflict analysis (first UIP)
    # ------------------------------------------------------------------
    def _reason_lits(self, lit: int) -> Sequence[int]:
        """The literals of the clause that propagated trail literal ``lit``.

        For binary reasons the clause is reconstructed from the tag; the
        caller must not mutate the result.
        """
        r = self._reason[lit >> 1]
        if r >= 0:
            return self._clauses[r]
        return (lit, -2 - r)

    def _analyze(self, conflict: Tuple[Sequence[int], int]) -> tuple[List[int], int, int]:
        """First-UIP analysis. Returns (learned_clause, backjump_level, lbd).

        The learned clause is minimized on the fly: a literal whose reason
        clause's other literals are all already in the learned clause (or
        root facts) is redundant — resolving it against its reason would
        self-subsume — and is dropped.
        """
        learned: List[int] = [0]  # placeholder for asserting literal
        seen = [False] * (self._num_vars + 1)
        counter = 0
        lit = -1
        lits, cidx = conflict
        index = len(self._trail) - 1
        cur_level = len(self._trail_lim)
        levels = self._level

        while True:
            if cidx >= 0:
                self._bump_clause(cidx)
            resolved_var = lit >> 1 if lit != -1 else 0
            for q in lits:
                v = q >> 1
                if v == resolved_var:
                    continue
                if not seen[v] and levels[v] > 0:
                    seen[v] = True
                    self._bump_var(v)
                    if levels[v] >= cur_level:
                        counter += 1
                    else:
                        learned.append(q)
            # Pick the next literal on the trail to resolve on.
            while not seen[self._trail[index] >> 1]:
                index -= 1
            lit = self._trail[index]
            v = lit >> 1
            seen[v] = False
            counter -= 1
            index -= 1
            if counter == 0:
                break
            r = self._reason[v]
            if r >= 0:
                cidx = r
                lits = self._clauses[r]
            else:
                cidx = -1
                lits = (lit, -2 - r)
        learned[0] = lit ^ 1

        # On-the-fly minimization.  seen[] is True exactly for the vars of
        # learned[1:] here (their flags were set during resolution and, at
        # lower levels than the conflict, never consumed as pivots).  A
        # removed literal keeps its flag: reason literals strictly precede
        # their consequence on the trail, so redundancy chains stay
        # well-founded in any processing order.
        if len(learned) > 2:
            kept = [learned[0]]
            reasons = self._reason
            clauses = self._clauses
            for q in learned[1:]:
                v = q >> 1
                r = reasons[v]
                if r == -1:
                    kept.append(q)
                    continue
                rlits = clauses[r] if r >= 0 else (-2 - r,)
                redundant = True
                for u in rlits:
                    uv = u >> 1
                    if uv != v and not seen[uv] and levels[uv] > 0:
                        redundant = False
                        break
                if redundant:
                    self.minimized_literals += 1
                else:
                    kept.append(q)
            learned = kept

        backjump = 0
        if len(learned) > 1:
            max_i = 1
            for i in range(2, len(learned)):
                if levels[learned[i] >> 1] > levels[learned[max_i] >> 1]:
                    max_i = i
            learned[1], learned[max_i] = learned[max_i], learned[1]
            backjump = levels[learned[1] >> 1]
        # LBD (glue): distinct decision levels among the learned literals,
        # computed before backjumping invalidates the level array entries.
        lbd = len({levels[q >> 1] for q in learned})
        return learned, backjump, lbd

    def _bump_var(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            for v in range(1, self._num_vars + 1):
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100
            # All heap entries are now stale; rebuild.
            self._order_heap = [
                (-self._activity[v], v)
                for v in range(1, self._num_vars + 1)
                if self._assign[v] == UNASSIGNED
            ]
            heapq.heapify(self._order_heap)
            for v in range(1, self._num_vars + 1):
                self._in_heap[v] = self._assign[v] == UNASSIGNED
            return
        if not self._in_heap[var]:
            self._in_heap[var] = True
            heapq.heappush(self._order_heap, (-self._activity[var], var))

    def _bump_clause(self, cidx: int) -> None:
        self._clause_activity[cidx] += self._cla_inc
        if self._clause_activity[cidx] > 1e20:
            for i in range(len(self._clause_activity)):
                self._clause_activity[i] *= 1e-20
            self._cla_inc *= 1e-20

    def _decay_activities(self) -> None:
        self._var_inc /= self._var_decay
        self._cla_inc /= self._cla_decay

    # ------------------------------------------------------------------
    # Backtracking
    # ------------------------------------------------------------------
    def _cancel_until(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        bound = self._trail_lim[level]
        for i in range(len(self._trail) - 1, bound - 1, -1):
            lit = self._trail[i]
            var = var_of(lit)
            self._polarity[var] = not (lit & 1)
            self._assign[var] = UNASSIGNED
            self._reason[var] = -1
            if not self._in_heap[var]:
                self._in_heap[var] = True
                heapq.heappush(self._order_heap, (-self._activity[var], var))
        del self._trail[bound:]
        del self._trail_lim[level:]
        self._prop_head = len(self._trail)

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def _pick_branch_var(self) -> int:
        # Lazy deletion: entries for assigned vars are skipped; every var
        # re-enters the heap when unassigned (see _cancel_until), so the
        # heap always contains every unassigned var at least once.
        while self._order_heap:
            _neg_activity, var = heapq.heappop(self._order_heap)
            self._in_heap[var] = False
            if self._assign[var] == UNASSIGNED:
                return var
        return 0

    # ------------------------------------------------------------------
    # Learned clause DB reduction (glucose-style)
    # ------------------------------------------------------------------
    def _reduce_db(self) -> None:
        if self._learned_count < self._reduce_cap:
            return
        clauses = self._clauses
        learned = self._learned
        activity = self._clause_activity
        lbd = self._clause_lbd
        learned_idx = [i for i in range(len(clauses)) if learned[i]]
        # Worst first: highest LBD, ties broken by lowest activity.  Glue
        # clauses (LBD <= 2) and clauses locked as reasons survive.
        learned_idx.sort(key=lambda i: (-lbd[i], activity[i]))
        locked = {self._reason[lit >> 1] for lit in self._trail}
        budget = len(learned_idx) // 2
        to_remove = set()
        for i in learned_idx:
            if len(to_remove) >= budget:
                break
            if i in locked or lbd[i] <= 2:
                continue
            to_remove.add(i)
        # Geometric schedule: the cap grows by a constant factor on every
        # reduction, so long-lived (pooled) solvers retain progressively
        # more of what they learned.
        self._reduce_cap *= self._reduce_cap_mult
        self.db_reductions += 1
        if not to_remove:
            return
        # Compact the database.  Problem and learned clauses interleave
        # (incremental adds land after learned clauses), so every clause
        # past the first removed index may relocate; watch entries and
        # reasons are rewritten through the remap.
        remap: Dict[int, int] = {}
        dirty = set()
        write = 0
        for read in range(len(clauses)):
            if read in to_remove:
                c = clauses[read]
                dirty.add(c[0])
                dirty.add(c[1])
                continue
            if read != write:
                remap[read] = write
                c = clauses[read]
                dirty.add(c[0])
                dirty.add(c[1])
            write += 1
        for read in sorted(remap):
            dst = remap[read]
            clauses[dst] = clauses[read]
            activity[dst] = activity[read]
            lbd[dst] = lbd[read]
            learned[dst] = learned[read]
        del clauses[write:]
        del activity[write:]
        del lbd[write:]
        del learned[write:]
        self._learned_count -= len(to_remove)
        for lit in dirty:
            self._watches[lit] = [
                (remap.get(i, i), b)
                for (i, b) in self._watches[lit]
                if i not in to_remove
            ]
        # Reasons only exist for assigned vars, i.e. vars on the trail, and
        # a removed clause is never locked as a reason.
        for lit in self._trail:
            var = lit >> 1
            r = self._reason[var]
            if r >= 0:
                self._reason[var] = remap.get(r, r)

    # ------------------------------------------------------------------
    # Main solve loop
    # ------------------------------------------------------------------
    def solve(self, assumptions: Iterable[int] = ()) -> bool:
        """Solve the formula under ``assumptions`` (a list of literals).

        Returns True (SAT — read the model via :meth:`model_value`) or
        False (UNSAT under these assumptions; ``failed_assumptions`` holds a
        subset of assumptions responsible, when assumptions were used).
        """
        self.failed_assumptions = []
        if not self._ok:
            return False
        self._cancel_until(0)
        conflict = self._propagate()
        if conflict is not None:
            self._ok = False
            return False

        assumptions = list(assumptions)
        restart_count = 0
        conflict_budget = 100 * _luby(restart_count + 1)
        conflicts_here = 0

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.conflicts += 1
                conflicts_here += 1
                if len(self._trail_lim) == 0:
                    self._ok = False
                    return False
                learned, backjump, lbd = self._analyze(conflict)
                self._cancel_until(max(backjump, 0))
                if len(learned) == 1:
                    if not self._enqueue(learned[0], -1):
                        self._ok = False
                        return False
                elif len(learned) == 2:
                    # Learned binaries join the implication lists (never
                    # deleted); the asserting literal's reason is the tag
                    # naming its false partner.
                    a, b = learned
                    self._bin_occurs[a].append(b)
                    self._bin_occurs[b].append(a)
                    self._enqueue(a, -2 - b)
                else:
                    idx = len(self._clauses)
                    self._clauses.append(learned)
                    self._learned.append(True)
                    self._clause_activity.append(self._cla_inc)
                    self._clause_lbd.append(lbd)
                    self._watches[learned[0]].append((idx, learned[1]))
                    self._watches[learned[1]].append((idx, learned[0]))
                    self._learned_count += 1
                    self._enqueue(learned[0], idx)
                self._decay_activities()
            else:
                if conflicts_here >= conflict_budget:
                    # Restart (but keep assumptions intact by redoing them).
                    self.restarts += 1
                    restart_count += 1
                    conflict_budget = 100 * _luby(restart_count + 1)
                    conflicts_here = 0
                    self._cancel_until(0)
                    self._reduce_db()
                    continue
                # Apply pending assumptions as pseudo-decisions.
                next_lit = 0
                depth = len(self._trail_lim)
                if depth < len(assumptions):
                    lit = assumptions[depth]
                    val = self._lit_value(lit)
                    if val == TRUE:
                        # Already satisfied; open an empty decision level so
                        # the depth bookkeeping still advances.
                        self._trail_lim.append(len(self._trail))
                        continue
                    if val == FALSE:
                        # The formula (plus earlier assumptions) propagated
                        # the negation of this assumption: UNSAT under the
                        # assumption set.
                        self.failed_assumptions = [lit]
                        self._cancel_until(0)
                        return False
                    next_lit = lit
                else:
                    var = self._pick_branch_var()
                    if var == 0:
                        # All variables assigned: SAT.  Save the full model
                        # as the preferred phases before returning, so the
                        # next query in an assumption cascade (which differs
                        # by one or two assumption literals) starts its
                        # decisions from this satisfying assignment instead
                        # of re-deriving it — including the level-0 literals
                        # that backtracking-time phase saving never touches.
                        polarity = self._polarity
                        for lit in self._trail:
                            polarity[lit >> 1] = not (lit & 1)
                        return True
                    self.decisions += 1
                    next_lit = pos_lit(var) if self._polarity[var] else neg_lit(var)
                self._trail_lim.append(len(self._trail))
                self._enqueue(next_lit, -1)

    # ------------------------------------------------------------------
    # Model access
    # ------------------------------------------------------------------
    def model_value(self, var: int) -> bool:
        """Value of ``var`` in the satisfying assignment (False if unset)."""
        return self._assign[var] == TRUE
