"""Bit-blasting of QF_BV terms into a :class:`SatSolver`.

Every boolean term maps to a single SAT literal; every bitvector term maps to
a list of SAT literals, least-significant bit first.  The encoding is
memoised per term (terms are hash-consed), so shared subterms are encoded
once — essential for p4-symbolic, whose guard expressions share the
per-entry match conditions heavily.

Two encoders live here:

* :class:`BitBlaster` — the original naive Tseitin encoder (both implication
  directions for every gate, a fresh gate variable even on constant inputs,
  no sharing between structurally identical gates).  Retained verbatim as
  the differential baseline behind ``Solver(encoder="tseitin")``.
* :class:`StructuralBitBlaster` — the default.  Constant short-circuiting at
  the literal layer (AND/OR/ITE/XOR/adder chains fold TRUE/FALSE literals
  instead of emitting gates), gate-level structural hashing (an
  ``(op, normalized-arg-lits) -> output-lit`` cache, so identical gates
  reached through different terms encode once), and polarity-aware
  Plaisted–Greenbaum encoding that emits only the implication direction
  each gate is actually used in.  See DESIGN.md ("The CNF layer") for the
  polarity bookkeeping and the soundness argument.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.smt import terms as T
from repro.smt.sat import SatSolver, pos_lit


class BitBlaster:
    """Incrementally encodes terms into CNF on top of a SAT solver.

    The naive Tseitin baseline: every gate gets a fresh variable and both
    implication directions, constants included.  Kept bit-for-bit stable —
    benchmarks and differential tests compare against it.
    """

    def __init__(self, solver: SatSolver) -> None:
        self.sat = solver
        self._bool_cache: Dict[T.Term, int] = {}
        self._bv_cache: Dict[T.Term, List[int]] = {}
        self._var_bits: Dict[str, List[int]] = {}
        self._true_lit: int | None = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def assert_term(self, term: T.Term) -> None:
        """Assert that a boolean term is true."""
        lit = self.encode_bool(term)
        self.sat.add_clause([lit])

    def literal_for(self, term: T.Term) -> int:
        """SAT literal equivalent to the boolean term (for assumptions)."""
        return self.encode_bool(term)

    def variable_bits(self, name: str) -> List[int] | None:
        """SAT variables backing a bitvector variable, LSB first."""
        return self._var_bits.get(name)

    # ------------------------------------------------------------------
    # Primitive helpers
    # ------------------------------------------------------------------
    def _const_lit(self, value: bool) -> int:
        """A literal that is constrained to the given constant value."""
        if self._true_lit is None:
            v = self.sat.new_var()
            self._true_lit = pos_lit(v)
            self.sat.add_clause([self._true_lit])
        return self._true_lit if value else self._true_lit ^ 1

    def _fresh(self) -> int:
        return pos_lit(self.sat.new_var())

    def _emit_and(self, lits: List[int]) -> int:
        """Literal g with g <-> AND(lits)."""
        out = self._fresh()
        for lit in lits:
            self.sat.add_clause([out ^ 1, lit])
        self.sat.add_clause([out] + [lit ^ 1 for lit in lits])
        return out

    def _emit_or(self, lits: List[int]) -> int:
        """Literal g with g <-> OR(lits)."""
        out = self._fresh()
        for lit in lits:
            self.sat.add_clause([out, lit ^ 1])
        self.sat.add_clause([out ^ 1] + list(lits))
        return out

    def _emit_xor(self, a: int, b: int) -> int:
        out = self._fresh()
        self.sat.add_clause([out ^ 1, a, b])
        self.sat.add_clause([out ^ 1, a ^ 1, b ^ 1])
        self.sat.add_clause([out, a ^ 1, b])
        self.sat.add_clause([out, a, b ^ 1])
        return out

    def _emit_ite(self, c: int, t: int, e: int) -> int:
        out = self._fresh()
        self.sat.add_clause([c ^ 1, t ^ 1, out])
        self.sat.add_clause([c ^ 1, t, out ^ 1])
        self.sat.add_clause([c, e ^ 1, out])
        self.sat.add_clause([c, e, out ^ 1])
        return out

    def _emit_iff(self, a: int, b: int) -> int:
        """Literal g with g <-> (a <-> b)."""
        return self._emit_xor(a, b) ^ 1

    def _full_adder(self, a: int, b: int, cin: int) -> tuple[int, int]:
        """Returns (sum, carry-out) literals."""
        s = self._emit_xor(self._emit_xor(a, b), cin)
        carry = self._emit_or(
            [self._emit_and([a, b]), self._emit_and([a, cin]), self._emit_and([b, cin])]
        )
        return s, carry

    # ------------------------------------------------------------------
    # Boolean encoding
    # ------------------------------------------------------------------
    def encode_bool(self, term: T.Term) -> int:
        cached = self._bool_cache.get(term)
        if cached is not None:
            return cached
        op = term.op
        if op == T.OP_CONST:
            lit = self._const_lit(bool(term.payload))
        elif op == T.OP_VAR:
            lit = self._fresh()
            self._var_bits.setdefault(term.payload, [lit])
        elif op == T.OP_NOT:
            lit = self.encode_bool(term.args[0]) ^ 1
        elif op == T.OP_AND:
            lit = self._emit_and([self.encode_bool(a) for a in term.args])
        elif op == T.OP_OR:
            lit = self._emit_or([self.encode_bool(a) for a in term.args])
        elif op == T.OP_XOR:
            lit = self._emit_xor(self.encode_bool(term.args[0]), self.encode_bool(term.args[1]))
        elif op == T.OP_ITE:
            lit = self._emit_ite(
                self.encode_bool(term.args[0]),
                self.encode_bool(term.args[1]),
                self.encode_bool(term.args[2]),
            )
        elif op == T.OP_EQ:
            a, b = term.args
            if a.is_bool:
                lit = self._emit_iff(self.encode_bool(a), self.encode_bool(b))
            else:
                abits = self.encode_bv(a)
                bbits = self.encode_bv(b)
                lit = self._emit_and(
                    [self._emit_iff(x, y) for x, y in zip(abits, bbits, strict=True)]
                )
        elif op in (T.OP_ULT, T.OP_ULE):
            lit = self._encode_unsigned_cmp(term.args[0], term.args[1], strict=op == T.OP_ULT)
        elif op in (T.OP_SLT, T.OP_SLE):
            lit = self._encode_signed_cmp(term.args[0], term.args[1], strict=op == T.OP_SLT)
        else:  # pragma: no cover - defensive
            raise NotImplementedError(f"encode_bool: unknown op {op}")
        self._bool_cache[term] = lit
        return lit

    def _encode_unsigned_cmp(self, a: T.Term, b: T.Term, strict: bool) -> int:
        abits = self.encode_bv(a)
        bbits = self.encode_bv(b)
        # result starts as (not strict) for the empty suffix, then from LSB to
        # MSB: result = (a_i < b_i) or (a_i == b_i and result)
        result = self._const_lit(not strict)
        for x, y in zip(abits, bbits, strict=True):
            less = self._emit_and([x ^ 1, y])
            same = self._emit_iff(x, y)
            result = self._emit_or([less, self._emit_and([same, result])])
        return result

    def _encode_signed_cmp(self, a: T.Term, b: T.Term, strict: bool) -> int:
        abits = self.encode_bv(a)
        bbits = self.encode_bv(b)
        asign, bsign = abits[-1], bbits[-1]
        unsigned = self._const_lit(not strict)
        for x, y in zip(abits[:-1], bbits[:-1], strict=True):
            less = self._emit_and([x ^ 1, y])
            same = self._emit_iff(x, y)
            unsigned = self._emit_or([less, self._emit_and([same, unsigned])])
        # a < b  iff  (a negative, b non-negative) or (same sign and
        # unsigned-compare of the low bits)
        neg_pos = self._emit_and([asign, bsign ^ 1])
        same_sign = self._emit_iff(asign, bsign)
        return self._emit_or([neg_pos, self._emit_and([same_sign, unsigned])])

    # ------------------------------------------------------------------
    # Bitvector encoding
    # ------------------------------------------------------------------
    def encode_bv(self, term: T.Term) -> List[int]:
        cached = self._bv_cache.get(term)
        if cached is not None:
            return cached
        op = term.op
        width = term.width
        if op == T.OP_CONST:
            bits = [self._const_lit(bool((term.payload >> i) & 1)) for i in range(width)]
        elif op == T.OP_VAR:
            bits = [self._fresh() for _ in range(width)]
            self._var_bits.setdefault(term.payload, bits)
        elif op == T.OP_BVNOT:
            bits = [b ^ 1 for b in self.encode_bv(term.args[0])]
        elif op == T.OP_BVAND:
            bits = [
                self._emit_and([x, y])
                for x, y in zip(self.encode_bv(term.args[0]), self.encode_bv(term.args[1]), strict=True)
            ]
        elif op == T.OP_BVOR:
            bits = [
                self._emit_or([x, y])
                for x, y in zip(self.encode_bv(term.args[0]), self.encode_bv(term.args[1]), strict=True)
            ]
        elif op == T.OP_BVXOR:
            bits = [
                self._emit_xor(x, y)
                for x, y in zip(self.encode_bv(term.args[0]), self.encode_bv(term.args[1]), strict=True)
            ]
        elif op == T.OP_BVADD:
            bits = self._encode_add(
                self.encode_bv(term.args[0]), self.encode_bv(term.args[1]), carry_in=False
            )
        elif op == T.OP_BVSUB:
            # a - b == a + ~b + 1
            bbits = [b ^ 1 for b in self.encode_bv(term.args[1])]
            bits = self._encode_add(self.encode_bv(term.args[0]), bbits, carry_in=True)
        elif op == T.OP_BVNEG:
            bbits = [b ^ 1 for b in self.encode_bv(term.args[0])]
            zero = [self._const_lit(False)] * width
            bits = self._encode_add(zero, bbits, carry_in=True)
        elif op == T.OP_BVMUL:
            bits = self._encode_mul(self.encode_bv(term.args[0]), self.encode_bv(term.args[1]))
        elif op == T.OP_BVSHL:
            child = self.encode_bv(term.args[0])
            amount = term.payload
            bits = [self._const_lit(False)] * min(amount, width) + child[: max(width - amount, 0)]
        elif op == T.OP_BVLSHR:
            child = self.encode_bv(term.args[0])
            amount = term.payload
            bits = child[amount:] + [self._const_lit(False)] * min(amount, width)
        elif op == T.OP_CONCAT:
            bits = []
            for part in reversed(term.args):  # last arg holds the LSBs
                bits.extend(self.encode_bv(part))
        elif op == T.OP_EXTRACT:
            hi, lo = term.payload
            bits = self.encode_bv(term.args[0])[lo : hi + 1]
        elif op == T.OP_ZEXT:
            bits = self.encode_bv(term.args[0]) + [self._const_lit(False)] * term.payload
        elif op == T.OP_SEXT:
            child = self.encode_bv(term.args[0])
            bits = child + [child[-1]] * term.payload
        elif op == T.OP_ITE:
            # Guarded-command states nest one ite per table entry through the
            # *else* branch; walk that chain iteratively (a 1300-entry table
            # would otherwise recurse 1300 frames deep) and encode from the
            # innermost default outwards.
            chain = [term]
            tail = term.args[2]
            while (
                tail.op == T.OP_ITE
                and tail.is_bv
                and tail not in self._bv_cache
            ):
                chain.append(tail)
                tail = tail.args[2]
            bits = self.encode_bv(tail)
            for node in reversed(chain):
                c = self.encode_bool(node.args[0])
                tbits = self.encode_bv(node.args[1])
                bits = [self._emit_ite(c, x, y) for x, y in zip(tbits, bits, strict=True)]
                self._bv_cache[node] = bits
        else:  # pragma: no cover - defensive
            raise NotImplementedError(f"encode_bv: unknown op {op}")
        assert len(bits) == width, f"width mismatch encoding {term!r}"
        self._bv_cache[term] = bits
        return bits

    def _encode_add(self, abits: List[int], bbits: List[int], carry_in: bool) -> List[int]:
        carry = self._const_lit(carry_in)
        out = []
        for x, y in zip(abits, bbits, strict=True):
            s, carry = self._full_adder(x, y, carry)
            out.append(s)
        return out

    def _encode_mul(self, abits: List[int], bbits: List[int]) -> List[int]:
        width = len(abits)
        acc = [self._const_lit(False)] * width
        for i, b in enumerate(bbits):
            # Partial product: (a << i) AND b, added into the accumulator.
            partial = [self._const_lit(False)] * i + [
                self._emit_and([a, b]) for a in abits[: width - i]
            ]
            acc = self._encode_add(acc, partial, carry_in=False)
        return acc


# ----------------------------------------------------------------------
# Polarity-aware structural encoder
# ----------------------------------------------------------------------

# Polarity masks: how the literal a subroutine returns may be *used* by its
# caller.  POS = the literal can be required true (so the clauses deriving
# its definition downward — output implies inputs — must exist); NEG = it
# can be required false (the upward direction must exist); BOTH = both.
POS = 1
NEG = 2
BOTH = 3


def _swap_pol(pol: int) -> int:
    """Swap the POS and NEG bits (the polarity of ``lit ^ 1``)."""
    return ((pol << 1) | (pol >> 1)) & BOTH


class StructuralBitBlaster:
    """Clause-economical encoder: folding, hashing, Plaisted–Greenbaum.

    Same public surface as :class:`BitBlaster` (``assert_term`` /
    ``literal_for`` / ``variable_bits`` / ``encode_bool`` / ``encode_bv``),
    drop-in behind :class:`repro.smt.solver.Solver`.

    Soundness of the polarity bookkeeping: the emitted clause set always
    lies between the Plaisted–Greenbaum subset required by each gate's
    accumulated use polarities and the full Tseitin set.  Any set in that
    range is equisatisfiable with the original formula — a model of the
    original extends to the full Tseitin valuation, which satisfies every
    definitional clause; an unsatisfiable original already makes the PG
    subset unsatisfiable.  That is also why ``literal_for`` may make its
    root gate bidirectional (for SolverPool activation semantics) without
    re-encoding the subtree: extra directions are always safe to add.

    Gate sharing is polarity-correct by construction: a cached gate records
    the directions already emitted (a ``[lit, emitted-mask]`` entry); a
    later use in a new polarity emits exactly the missing direction, and
    phase normalization (XOR/ITE store positive-phase inputs and return a
    possibly-negated output) swaps the requested polarity in step with the
    output negation, so child guarantees always match the emitted clauses.
    """

    def __init__(self, solver: SatSolver) -> None:
        self.sat = solver
        self._bool_cache: Dict[T.Term, int] = {}
        # term -> polarity mask this term's DAG is already encoded for.
        self._bool_pol: Dict[T.Term, int] = {}
        # Bitvector internals always encode BOTH directions (their gates sit
        # under arithmetic/equality structure used in mixed polarity), so
        # the bv cache needs no polarity bookkeeping.
        self._bv_cache: Dict[T.Term, List[int]] = {}
        self._var_bits: Dict[str, List[int]] = {}
        self._true_lit: int | None = None
        # Structural gate cache: normalized key -> [output_lit, emitted_mask].
        self._gates: Dict[Tuple, List[int]] = {}
        # Gate lookups answered by the cache instead of a fresh variable.
        self.gates_shared = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def assert_term(self, term: T.Term) -> None:
        """Assert that a boolean term is true."""
        lit = self.encode_bool(term, POS)
        self.sat.add_clause([lit])

    def literal_for(self, term: T.Term) -> int:
        """SAT literal equivalent to the boolean term (for assumptions).

        The DAG below is encoded positively (assumption literals are only
        ever required *true*), but the root gate itself gets both
        directions: SolverPool treats these literals as activation
        switches, and the upward clauses let the solver derive the root
        when its inputs hold — same activation semantics as the Tseitin
        encoder.
        """
        lit = self.encode_bool(term, POS)
        self._root_bidirectional(term)
        return lit

    def variable_bits(self, name: str) -> List[int] | None:
        """SAT variables backing a bitvector variable, LSB first."""
        return self._var_bits.get(name)

    def _root_bidirectional(self, term: T.Term) -> None:
        """Emit the missing direction of ``term``'s top gate only.

        Children stay at the polarity they were encoded with; referencing
        their literals in one extra root clause is sound (see class
        docstring).  AND/OR/NOT cover the assumption hot path (goal
        conditions are conjunctions); rarer root shapes fall back to a
        full bidirectional encode of that subtree.
        """
        op = term.op
        if op in (T.OP_CONST, T.OP_VAR):
            return
        if op == T.OP_NOT:
            self._root_bidirectional(term.args[0])
        elif op == T.OP_AND:
            self._and_lits([self.encode_bool(a, POS) for a in term.args], BOTH)
        elif op == T.OP_OR:
            self._or_lits([self.encode_bool(a, POS) for a in term.args], BOTH)
        else:
            self.encode_bool(term, BOTH)

    # ------------------------------------------------------------------
    # Literal-layer primitives: constant folding + structural hashing
    # ------------------------------------------------------------------
    def _const_lit(self, value: bool) -> int:
        """A literal constrained to the given constant value."""
        if self._true_lit is None:
            v = self.sat.new_var()
            self._true_lit = pos_lit(v)
            self.sat.add_clause([self._true_lit])
        return self._true_lit if value else self._true_lit ^ 1

    def _is_const(self, lit: int, value: bool) -> bool:
        t = self._true_lit
        return t is not None and lit == (t if value else t ^ 1)

    def _fresh(self) -> int:
        return pos_lit(self.sat.new_var())

    def _gate(self, key: Tuple, pol: int, emit) -> int:
        """The cached output literal for ``key``, with the directions in
        ``pol`` guaranteed emitted (missing ones are added now)."""
        entry = self._gates.get(key)
        if entry is None:
            entry = [self._fresh(), 0]
            self._gates[key] = entry
        else:
            self.gates_shared += 1
        need = pol & ~entry[1]
        if need:
            entry[1] |= need
            emit(entry[0], key, need)
        return entry[0]

    # -- AND / OR ------------------------------------------------------
    def _and_lits(self, lits: List[int], pol: int) -> int:
        out: List[int] = []
        seen = set()
        for lit in lits:
            if self._is_const(lit, True) or lit in seen:
                continue  # TRUE and duplicates fold away
            if self._is_const(lit, False) or (lit ^ 1) in seen:
                return self._const_lit(False)  # FALSE / complementary pair
            seen.add(lit)
            out.append(lit)
        if not out:
            return self._const_lit(True)
        if len(out) == 1:
            return out[0]
        return self._gate(("and", tuple(sorted(out))), pol, self._emit_and_dir)

    def _emit_and_dir(self, g: int, key: Tuple, need: int) -> None:
        args = key[1]
        add = self.sat.add_clause
        if need & POS:  # g -> each arg
            for lit in args:
                add([g ^ 1, lit])
        if need & NEG:  # all args -> g
            add([g] + [lit ^ 1 for lit in args])

    def _or_lits(self, lits: List[int], pol: int) -> int:
        # De Morgan onto the AND gate cache: OR(a, b) and NOT(AND(!a, !b))
        # share one gate, with the polarity swapped through the negation.
        return self._and_lits([lit ^ 1 for lit in lits], _swap_pol(pol)) ^ 1

    # -- XOR / IFF -----------------------------------------------------
    def _xor_lits(self, a: int, b: int, pol: int) -> int:
        if self._is_const(a, True):
            return b ^ 1
        if self._is_const(a, False):
            return b
        if self._is_const(b, True):
            return a ^ 1
        if self._is_const(b, False):
            return a
        if a == b:
            return self._const_lit(False)
        if a == (b ^ 1):
            return self._const_lit(True)
        # Phase-normalize: XOR(a, b) == XOR(a^1, b^1) == NOT XOR(a^1, b);
        # store the gate over positive-phase inputs in sorted order and
        # fold the parity into the returned literal.
        phase = (a & 1) ^ (b & 1)
        a0 = a & ~1
        b0 = b & ~1
        if a0 > b0:
            a0, b0 = b0, a0
        gpol = pol if phase == 0 else _swap_pol(pol)
        g = self._gate(("xor", a0, b0), gpol, self._emit_xor_dir)
        return g ^ phase

    def _emit_xor_dir(self, g: int, key: Tuple, need: int) -> None:
        _, a, b = key
        add = self.sat.add_clause
        if need & POS:  # g -> (a xor b)
            add([g ^ 1, a, b])
            add([g ^ 1, a ^ 1, b ^ 1])
        if need & NEG:  # (a xor b) -> g
            add([g, a ^ 1, b])
            add([g, a, b ^ 1])

    def _iff_lits(self, a: int, b: int, pol: int) -> int:
        return self._xor_lits(a, b ^ 1, pol)

    # -- ITE -----------------------------------------------------------
    def _ite_lits(self, c: int, t: int, e: int, pol: int) -> int:
        if self._is_const(c, True):
            return t
        if self._is_const(c, False):
            return e
        if t == e:
            return t
        if c & 1:  # normalize to a positive condition literal
            c, t, e = c ^ 1, e, t
        if self._is_const(t, True):
            return self._or_lits([c, e], pol)
        if self._is_const(t, False):
            return self._and_lits([c ^ 1, e], pol)
        if self._is_const(e, True):
            return self._or_lits([c ^ 1, t], pol)
        if self._is_const(e, False):
            return self._and_lits([c, t], pol)
        if t == c:  # (c ? c : e) == c | e
            return self._or_lits([c, e], pol)
        if t == (c ^ 1):  # (c ? !c : e) == !c & e
            return self._and_lits([c ^ 1, e], pol)
        if e == c:  # (c ? t : c) == c & t
            return self._and_lits([c, t], pol)
        if e == (c ^ 1):  # (c ? t : !c) == !c | t
            return self._or_lits([c ^ 1, t], pol)
        if t == (e ^ 1):  # (c ? !e : e) == c xor e
            return self._xor_lits(c, e, pol)
        # Phase-normalize on the then-branch: ite(c, t, e) == !ite(c, !t, !e).
        phase = t & 1
        if phase:
            t ^= 1
            e ^= 1
        gpol = pol if phase == 0 else _swap_pol(pol)
        g = self._gate(("ite", c, t, e), gpol, self._emit_ite_dir)
        return g ^ phase

    def _emit_ite_dir(self, g: int, key: Tuple, need: int) -> None:
        _, c, t, e = key
        add = self.sat.add_clause
        if need & POS:  # g -> (c ? t : e)
            add([g ^ 1, c ^ 1, t])
            add([g ^ 1, c, e])
        if need & NEG:  # (c ? t : e) -> g
            add([g, c ^ 1, t ^ 1])
            add([g, c, e ^ 1])

    # -- Arithmetic primitives ----------------------------------------
    def _full_adder(self, a: int, b: int, cin: int) -> tuple[int, int]:
        """Returns (sum, carry-out); constants collapse through the folds."""
        s = self._xor_lits(self._xor_lits(a, b, BOTH), cin, BOTH)
        carry = self._or_lits(
            [
                self._and_lits([a, b], BOTH),
                self._and_lits([a, cin], BOTH),
                self._and_lits([b, cin], BOTH),
            ],
            BOTH,
        )
        return s, carry

    # ------------------------------------------------------------------
    # Boolean encoding
    # ------------------------------------------------------------------
    def encode_bool(self, term: T.Term, pol: int = BOTH) -> int:
        cached = self._bool_cache.get(term)
        if cached is not None and not (pol & ~self._bool_pol[term]):
            return cached
        # A cache hit with an insufficient polarity mask falls through: the
        # re-dispatch recurses the same deterministic path (cheap — child
        # masks mostly cover), and the gate caches emit exactly the missing
        # directions.  The resulting literal is identical by construction.
        op = term.op
        if op == T.OP_CONST:
            lit = self._const_lit(bool(term.payload))
            pol = BOTH
        elif op == T.OP_VAR:
            if cached is not None:
                return cached  # polarity is irrelevant for inputs
            lit = self._fresh()
            self._var_bits.setdefault(term.payload, [lit])
            pol = BOTH
        elif op == T.OP_NOT:
            lit = self.encode_bool(term.args[0], _swap_pol(pol)) ^ 1
        elif op == T.OP_AND:
            lit = self._and_lits([self.encode_bool(a, pol) for a in term.args], pol)
        elif op == T.OP_OR:
            lit = self._or_lits([self.encode_bool(a, pol) for a in term.args], pol)
        elif op == T.OP_XOR:
            lit = self._xor_lits(
                self.encode_bool(term.args[0], BOTH),
                self.encode_bool(term.args[1], BOTH),
                pol,
            )
        elif op == T.OP_ITE:
            lit = self._ite_lits(
                self.encode_bool(term.args[0], BOTH),
                self.encode_bool(term.args[1], pol),
                self.encode_bool(term.args[2], pol),
                pol,
            )
        elif op == T.OP_EQ:
            a, b = term.args
            if a.is_bool:
                lit = self._iff_lits(
                    self.encode_bool(a, BOTH), self.encode_bool(b, BOTH), pol
                )
            else:
                abits = self.encode_bv(a)
                bbits = self.encode_bv(b)
                lit = self._and_lits(
                    [
                        self._iff_lits(x, y, pol)
                        for x, y in zip(abits, bbits, strict=True)
                    ],
                    pol,
                )
        elif op in (T.OP_ULT, T.OP_ULE):
            lit = self._encode_unsigned_cmp(
                term.args[0], term.args[1], strict=op == T.OP_ULT, pol=pol
            )
        elif op in (T.OP_SLT, T.OP_SLE):
            lit = self._encode_signed_cmp(
                term.args[0], term.args[1], strict=op == T.OP_SLT, pol=pol
            )
        else:  # pragma: no cover - defensive
            raise NotImplementedError(f"encode_bool: unknown op {op}")
        self._bool_cache[term] = lit
        self._bool_pol[term] = self._bool_pol.get(term, 0) | pol
        return lit

    def _encode_unsigned_cmp(self, a: T.Term, b: T.Term, strict: bool, pol: int) -> int:
        abits = self.encode_bv(a)
        bbits = self.encode_bv(b)
        # result starts as (not strict) for the empty suffix, then from LSB to
        # MSB: result = (a_i < b_i) or (a_i == b_i and result).  Every gate
        # sits positively under the chain, so the use polarity threads
        # straight through; comparisons against constants fold almost
        # entirely (same == x or !x, less == !x or FALSE per bit).
        result = self._const_lit(not strict)
        for x, y in zip(abits, bbits, strict=True):
            less = self._and_lits([x ^ 1, y], pol)
            same = self._iff_lits(x, y, pol)
            result = self._or_lits([less, self._and_lits([same, result], pol)], pol)
        return result

    def _encode_signed_cmp(self, a: T.Term, b: T.Term, strict: bool, pol: int) -> int:
        abits = self.encode_bv(a)
        bbits = self.encode_bv(b)
        asign, bsign = abits[-1], bbits[-1]
        unsigned = self._const_lit(not strict)
        for x, y in zip(abits[:-1], bbits[:-1], strict=True):
            less = self._and_lits([x ^ 1, y], pol)
            same = self._iff_lits(x, y, pol)
            unsigned = self._or_lits(
                [less, self._and_lits([same, unsigned], pol)], pol
            )
        # a < b  iff  (a negative, b non-negative) or (same sign and
        # unsigned-compare of the low bits)
        neg_pos = self._and_lits([asign, bsign ^ 1], pol)
        same_sign = self._iff_lits(asign, bsign, pol)
        return self._or_lits(
            [neg_pos, self._and_lits([same_sign, unsigned], pol)], pol
        )

    # ------------------------------------------------------------------
    # Bitvector encoding (always bidirectional below the boolean skeleton)
    # ------------------------------------------------------------------
    def encode_bv(self, term: T.Term) -> List[int]:
        cached = self._bv_cache.get(term)
        if cached is not None:
            return cached
        op = term.op
        width = term.width
        if op == T.OP_CONST:
            bits = [self._const_lit(bool((term.payload >> i) & 1)) for i in range(width)]
        elif op == T.OP_VAR:
            bits = [self._fresh() for _ in range(width)]
            self._var_bits.setdefault(term.payload, bits)
        elif op == T.OP_BVNOT:
            bits = [b ^ 1 for b in self.encode_bv(term.args[0])]
        elif op == T.OP_BVAND:
            bits = [
                self._and_lits([x, y], BOTH)
                for x, y in zip(
                    self.encode_bv(term.args[0]), self.encode_bv(term.args[1]), strict=True
                )
            ]
        elif op == T.OP_BVOR:
            bits = [
                self._or_lits([x, y], BOTH)
                for x, y in zip(
                    self.encode_bv(term.args[0]), self.encode_bv(term.args[1]), strict=True
                )
            ]
        elif op == T.OP_BVXOR:
            bits = [
                self._xor_lits(x, y, BOTH)
                for x, y in zip(
                    self.encode_bv(term.args[0]), self.encode_bv(term.args[1]), strict=True
                )
            ]
        elif op == T.OP_BVADD:
            bits = self._encode_add(
                self.encode_bv(term.args[0]), self.encode_bv(term.args[1]), carry_in=False
            )
        elif op == T.OP_BVSUB:
            # a - b == a + ~b + 1
            bbits = [b ^ 1 for b in self.encode_bv(term.args[1])]
            bits = self._encode_add(self.encode_bv(term.args[0]), bbits, carry_in=True)
        elif op == T.OP_BVNEG:
            bbits = [b ^ 1 for b in self.encode_bv(term.args[0])]
            zero = [self._const_lit(False)] * width
            bits = self._encode_add(zero, bbits, carry_in=True)
        elif op == T.OP_BVMUL:
            bits = self._encode_mul(self.encode_bv(term.args[0]), self.encode_bv(term.args[1]))
        elif op == T.OP_BVSHL:
            child = self.encode_bv(term.args[0])
            amount = term.payload
            bits = [self._const_lit(False)] * min(amount, width) + child[: max(width - amount, 0)]
        elif op == T.OP_BVLSHR:
            child = self.encode_bv(term.args[0])
            amount = term.payload
            bits = child[amount:] + [self._const_lit(False)] * min(amount, width)
        elif op == T.OP_CONCAT:
            bits = []
            for part in reversed(term.args):  # last arg holds the LSBs
                bits.extend(self.encode_bv(part))
        elif op == T.OP_EXTRACT:
            hi, lo = term.payload
            bits = self.encode_bv(term.args[0])[lo : hi + 1]
        elif op == T.OP_ZEXT:
            bits = self.encode_bv(term.args[0]) + [self._const_lit(False)] * term.payload
        elif op == T.OP_SEXT:
            child = self.encode_bv(term.args[0])
            bits = child + [child[-1]] * term.payload
        elif op == T.OP_ITE:
            # Guarded-command states nest one ite per table entry through the
            # *else* branch; walk that chain iteratively (a 1300-entry table
            # would otherwise recurse 1300 frames deep) and encode from the
            # innermost default outwards.
            chain = [term]
            tail = term.args[2]
            while (
                tail.op == T.OP_ITE
                and tail.is_bv
                and tail not in self._bv_cache
            ):
                chain.append(tail)
                tail = tail.args[2]
            bits = self.encode_bv(tail)
            for node in reversed(chain):
                c = self.encode_bool(node.args[0], BOTH)
                tbits = self.encode_bv(node.args[1])
                bits = [
                    self._ite_lits(c, x, y, BOTH)
                    for x, y in zip(tbits, bits, strict=True)
                ]
                self._bv_cache[node] = bits
        else:  # pragma: no cover - defensive
            raise NotImplementedError(f"encode_bv: unknown op {op}")
        assert len(bits) == width, f"width mismatch encoding {term!r}"
        self._bv_cache[term] = bits
        return bits

    def _encode_add(self, abits: List[int], bbits: List[int], carry_in: bool) -> List[int]:
        carry = self._const_lit(carry_in)
        out = []
        for x, y in zip(abits, bbits, strict=True):
            s, carry = self._full_adder(x, y, carry)
            out.append(s)
        return out

    def _encode_mul(self, abits: List[int], bbits: List[int]) -> List[int]:
        width = len(abits)
        acc = [self._const_lit(False)] * width
        for i, b in enumerate(bbits):
            # Partial product: (a << i) AND b, added into the accumulator.
            partial = [self._const_lit(False)] * i + [
                self._and_lits([a, b], BOTH) for a in abits[: width - i]
            ]
            acc = self._encode_add(acc, partial, carry_in=False)
        return acc
