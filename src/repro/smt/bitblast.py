"""Tseitin bit-blasting of QF_BV terms into a :class:`SatSolver`.

Every boolean term maps to a single SAT literal; every bitvector term maps to
a list of SAT literals, least-significant bit first.  The encoding is
memoised per term (terms are hash-consed), so shared subterms are encoded
once — essential for p4-symbolic, whose guard expressions share the
per-entry match conditions heavily.
"""

from __future__ import annotations

from typing import Dict, List

from repro.smt import terms as T
from repro.smt.sat import SatSolver, pos_lit


class BitBlaster:
    """Incrementally encodes terms into CNF on top of a SAT solver."""

    def __init__(self, solver: SatSolver) -> None:
        self.sat = solver
        self._bool_cache: Dict[T.Term, int] = {}
        self._bv_cache: Dict[T.Term, List[int]] = {}
        self._var_bits: Dict[str, List[int]] = {}
        self._true_lit: int | None = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def assert_term(self, term: T.Term) -> None:
        """Assert that a boolean term is true."""
        lit = self.encode_bool(term)
        self.sat.add_clause([lit])

    def literal_for(self, term: T.Term) -> int:
        """SAT literal equivalent to the boolean term (for assumptions)."""
        return self.encode_bool(term)

    def variable_bits(self, name: str) -> List[int] | None:
        """SAT variables backing a bitvector variable, LSB first."""
        return self._var_bits.get(name)

    # ------------------------------------------------------------------
    # Primitive helpers
    # ------------------------------------------------------------------
    def _const_lit(self, value: bool) -> int:
        """A literal that is constrained to the given constant value."""
        if self._true_lit is None:
            v = self.sat.new_var()
            self._true_lit = pos_lit(v)
            self.sat.add_clause([self._true_lit])
        return self._true_lit if value else self._true_lit ^ 1

    def _fresh(self) -> int:
        return pos_lit(self.sat.new_var())

    def _emit_and(self, lits: List[int]) -> int:
        """Literal g with g <-> AND(lits)."""
        out = self._fresh()
        for lit in lits:
            self.sat.add_clause([out ^ 1, lit])
        self.sat.add_clause([out] + [lit ^ 1 for lit in lits])
        return out

    def _emit_or(self, lits: List[int]) -> int:
        """Literal g with g <-> OR(lits)."""
        out = self._fresh()
        for lit in lits:
            self.sat.add_clause([out, lit ^ 1])
        self.sat.add_clause([out ^ 1] + list(lits))
        return out

    def _emit_xor(self, a: int, b: int) -> int:
        out = self._fresh()
        self.sat.add_clause([out ^ 1, a, b])
        self.sat.add_clause([out ^ 1, a ^ 1, b ^ 1])
        self.sat.add_clause([out, a ^ 1, b])
        self.sat.add_clause([out, a, b ^ 1])
        return out

    def _emit_ite(self, c: int, t: int, e: int) -> int:
        out = self._fresh()
        self.sat.add_clause([c ^ 1, t ^ 1, out])
        self.sat.add_clause([c ^ 1, t, out ^ 1])
        self.sat.add_clause([c, e ^ 1, out])
        self.sat.add_clause([c, e, out ^ 1])
        return out

    def _emit_iff(self, a: int, b: int) -> int:
        """Literal g with g <-> (a <-> b)."""
        return self._emit_xor(a, b) ^ 1

    def _full_adder(self, a: int, b: int, cin: int) -> tuple[int, int]:
        """Returns (sum, carry-out) literals."""
        s = self._emit_xor(self._emit_xor(a, b), cin)
        carry = self._emit_or(
            [self._emit_and([a, b]), self._emit_and([a, cin]), self._emit_and([b, cin])]
        )
        return s, carry

    # ------------------------------------------------------------------
    # Boolean encoding
    # ------------------------------------------------------------------
    def encode_bool(self, term: T.Term) -> int:
        cached = self._bool_cache.get(term)
        if cached is not None:
            return cached
        op = term.op
        if op == T.OP_CONST:
            lit = self._const_lit(bool(term.payload))
        elif op == T.OP_VAR:
            lit = self._fresh()
            self._var_bits.setdefault(term.payload, [lit])
        elif op == T.OP_NOT:
            lit = self.encode_bool(term.args[0]) ^ 1
        elif op == T.OP_AND:
            lit = self._emit_and([self.encode_bool(a) for a in term.args])
        elif op == T.OP_OR:
            lit = self._emit_or([self.encode_bool(a) for a in term.args])
        elif op == T.OP_XOR:
            lit = self._emit_xor(self.encode_bool(term.args[0]), self.encode_bool(term.args[1]))
        elif op == T.OP_ITE:
            lit = self._emit_ite(
                self.encode_bool(term.args[0]),
                self.encode_bool(term.args[1]),
                self.encode_bool(term.args[2]),
            )
        elif op == T.OP_EQ:
            a, b = term.args
            if a.is_bool:
                lit = self._emit_iff(self.encode_bool(a), self.encode_bool(b))
            else:
                abits = self.encode_bv(a)
                bbits = self.encode_bv(b)
                lit = self._emit_and(
                    [self._emit_iff(x, y) for x, y in zip(abits, bbits, strict=True)]
                )
        elif op in (T.OP_ULT, T.OP_ULE):
            lit = self._encode_unsigned_cmp(term.args[0], term.args[1], strict=op == T.OP_ULT)
        elif op in (T.OP_SLT, T.OP_SLE):
            lit = self._encode_signed_cmp(term.args[0], term.args[1], strict=op == T.OP_SLT)
        else:  # pragma: no cover - defensive
            raise NotImplementedError(f"encode_bool: unknown op {op}")
        self._bool_cache[term] = lit
        return lit

    def _encode_unsigned_cmp(self, a: T.Term, b: T.Term, strict: bool) -> int:
        abits = self.encode_bv(a)
        bbits = self.encode_bv(b)
        # result starts as (not strict) for the empty suffix, then from LSB to
        # MSB: result = (a_i < b_i) or (a_i == b_i and result)
        result = self._const_lit(not strict)
        for x, y in zip(abits, bbits, strict=True):
            less = self._emit_and([x ^ 1, y])
            same = self._emit_iff(x, y)
            result = self._emit_or([less, self._emit_and([same, result])])
        return result

    def _encode_signed_cmp(self, a: T.Term, b: T.Term, strict: bool) -> int:
        abits = self.encode_bv(a)
        bbits = self.encode_bv(b)
        asign, bsign = abits[-1], bbits[-1]
        unsigned = self._const_lit(not strict)
        for x, y in zip(abits[:-1], bbits[:-1], strict=True):
            less = self._emit_and([x ^ 1, y])
            same = self._emit_iff(x, y)
            unsigned = self._emit_or([less, self._emit_and([same, unsigned])])
        # a < b  iff  (a negative, b non-negative) or (same sign and
        # unsigned-compare of the low bits)
        neg_pos = self._emit_and([asign, bsign ^ 1])
        same_sign = self._emit_iff(asign, bsign)
        return self._emit_or([neg_pos, self._emit_and([same_sign, unsigned])])

    # ------------------------------------------------------------------
    # Bitvector encoding
    # ------------------------------------------------------------------
    def encode_bv(self, term: T.Term) -> List[int]:
        cached = self._bv_cache.get(term)
        if cached is not None:
            return cached
        op = term.op
        width = term.width
        if op == T.OP_CONST:
            bits = [self._const_lit(bool((term.payload >> i) & 1)) for i in range(width)]
        elif op == T.OP_VAR:
            bits = [self._fresh() for _ in range(width)]
            self._var_bits.setdefault(term.payload, bits)
        elif op == T.OP_BVNOT:
            bits = [b ^ 1 for b in self.encode_bv(term.args[0])]
        elif op == T.OP_BVAND:
            bits = [
                self._emit_and([x, y])
                for x, y in zip(self.encode_bv(term.args[0]), self.encode_bv(term.args[1]), strict=True)
            ]
        elif op == T.OP_BVOR:
            bits = [
                self._emit_or([x, y])
                for x, y in zip(self.encode_bv(term.args[0]), self.encode_bv(term.args[1]), strict=True)
            ]
        elif op == T.OP_BVXOR:
            bits = [
                self._emit_xor(x, y)
                for x, y in zip(self.encode_bv(term.args[0]), self.encode_bv(term.args[1]), strict=True)
            ]
        elif op == T.OP_BVADD:
            bits = self._encode_add(
                self.encode_bv(term.args[0]), self.encode_bv(term.args[1]), carry_in=False
            )
        elif op == T.OP_BVSUB:
            # a - b == a + ~b + 1
            bbits = [b ^ 1 for b in self.encode_bv(term.args[1])]
            bits = self._encode_add(self.encode_bv(term.args[0]), bbits, carry_in=True)
        elif op == T.OP_BVNEG:
            bbits = [b ^ 1 for b in self.encode_bv(term.args[0])]
            zero = [self._const_lit(False)] * width
            bits = self._encode_add(zero, bbits, carry_in=True)
        elif op == T.OP_BVMUL:
            bits = self._encode_mul(self.encode_bv(term.args[0]), self.encode_bv(term.args[1]))
        elif op == T.OP_BVSHL:
            child = self.encode_bv(term.args[0])
            amount = term.payload
            bits = [self._const_lit(False)] * min(amount, width) + child[: max(width - amount, 0)]
        elif op == T.OP_BVLSHR:
            child = self.encode_bv(term.args[0])
            amount = term.payload
            bits = child[amount:] + [self._const_lit(False)] * min(amount, width)
        elif op == T.OP_CONCAT:
            bits = []
            for part in reversed(term.args):  # last arg holds the LSBs
                bits.extend(self.encode_bv(part))
        elif op == T.OP_EXTRACT:
            hi, lo = term.payload
            bits = self.encode_bv(term.args[0])[lo : hi + 1]
        elif op == T.OP_ZEXT:
            bits = self.encode_bv(term.args[0]) + [self._const_lit(False)] * term.payload
        elif op == T.OP_SEXT:
            child = self.encode_bv(term.args[0])
            bits = child + [child[-1]] * term.payload
        elif op == T.OP_ITE:
            # Guarded-command states nest one ite per table entry through the
            # *else* branch; walk that chain iteratively (a 1300-entry table
            # would otherwise recurse 1300 frames deep) and encode from the
            # innermost default outwards.
            chain = [term]
            tail = term.args[2]
            while (
                tail.op == T.OP_ITE
                and tail.is_bv
                and tail not in self._bv_cache
            ):
                chain.append(tail)
                tail = tail.args[2]
            bits = self.encode_bv(tail)
            for node in reversed(chain):
                c = self.encode_bool(node.args[0])
                tbits = self.encode_bv(node.args[1])
                bits = [self._emit_ite(c, x, y) for x, y in zip(tbits, bits, strict=True)]
                self._bv_cache[node] = bits
        else:  # pragma: no cover - defensive
            raise NotImplementedError(f"encode_bv: unknown op {op}")
        assert len(bits) == width, f"width mismatch encoding {term!r}"
        self._bv_cache[term] = bits
        return bits

    def _encode_add(self, abits: List[int], bbits: List[int], carry_in: bool) -> List[int]:
        carry = self._const_lit(carry_in)
        out = []
        for x, y in zip(abits, bbits, strict=True):
            s, carry = self._full_adder(x, y, carry)
            out.append(s)
        return out

    def _encode_mul(self, abits: List[int], bbits: List[int]) -> List[int]:
        width = len(abits)
        acc = [self._const_lit(False)] * width
        for i, b in enumerate(bbits):
            # Partial product: (a << i) AND b, added into the accumulator.
            partial = [self._const_lit(False)] * i + [
                self._emit_and([a, b]) for a in abits[: width - i]
            ]
            acc = self._encode_add(acc, partial, carry_in=False)
        return acc
