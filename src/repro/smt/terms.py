"""Term language for the QF_BV solver.

Terms are immutable and hash-consed: building the same term twice returns the
same object, which keeps the bit-blaster's memoisation effective and makes
structural equality an ``is`` check.

Two sorts exist:

* ``BoolSort()`` — propositional values.
* ``BVSort(width)`` — fixed-width unsigned bitvectors (two's complement for
  the signed comparisons).

The module also provides :func:`evaluate`, a direct concrete interpreter of
terms under an assignment.  The solver never uses it to decide
satisfiability; it exists so tests can independently check that models
returned by the SAT pipeline really satisfy the original formula.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Tuple, Union


@dataclass(frozen=True)
class BoolSort:
    """The sort of propositional terms."""

    def __repr__(self) -> str:
        return "Bool"


@dataclass(frozen=True)
class BVSort:
    """The sort of fixed-width bitvectors."""

    width: int

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError(f"bitvector width must be positive, got {self.width}")

    def __repr__(self) -> str:
        return f"BV[{self.width}]"


Sort = Union[BoolSort, BVSort]

# Operator tags.  Grouped by arity/meaning; the bit-blaster dispatches on
# these strings.
OP_VAR = "var"
OP_CONST = "const"
OP_NOT = "not"
OP_AND = "and"
OP_OR = "or"
OP_XOR = "xor"
OP_IMPLIES = "implies"
OP_EQ = "eq"
OP_ITE = "ite"
OP_BVNOT = "bvnot"
OP_BVAND = "bvand"
OP_BVOR = "bvor"
OP_BVXOR = "bvxor"
OP_BVADD = "bvadd"
OP_BVSUB = "bvsub"
OP_BVNEG = "bvneg"
OP_BVMUL = "bvmul"
OP_BVSHL = "bvshl"
OP_BVLSHR = "bvlshr"
OP_CONCAT = "concat"
OP_EXTRACT = "extract"
OP_ZEXT = "zext"
OP_SEXT = "sext"
OP_ULT = "bvult"
OP_ULE = "bvule"
OP_SLT = "bvslt"
OP_SLE = "bvsle"

_BOOL = BoolSort()

# Hash-consing table.  Keyed by (op, args, payload).
_TERM_CACHE: Dict[Tuple, "Term"] = {}


class Term:
    """An immutable, hash-consed SMT term.

    Do not construct directly; use the builder functions (:func:`bv_const`,
    :func:`bv_var`, :func:`bool_var`) and the operator methods / module-level
    combinators.
    """

    __slots__ = ("op", "args", "payload", "sort", "_hash")

    def __new__(cls, op: str, args: Tuple["Term", ...], payload, sort: Sort):
        key = (op, args, payload, sort)
        cached = _TERM_CACHE.get(key)
        if cached is not None:
            return cached
        self = object.__new__(cls)
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "args", args)
        object.__setattr__(self, "payload", payload)
        object.__setattr__(self, "sort", sort)
        object.__setattr__(self, "_hash", hash(key))
        _TERM_CACHE[key] = self
        return self

    def __setattr__(self, _name, _value):  # pragma: no cover - guard rail
        raise AttributeError("Term objects are immutable")

    def __hash__(self) -> int:
        return self._hash

    # Identity equality is correct because of hash-consing.
    def __eq__(self, other) -> bool:
        return self is other

    def __ne__(self, other) -> bool:
        return self is not other

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def width(self) -> int:
        if not isinstance(self.sort, BVSort):
            raise TypeError(f"term {self!r} is not a bitvector")
        return self.sort.width

    @property
    def is_bool(self) -> bool:
        return isinstance(self.sort, BoolSort)

    @property
    def is_bv(self) -> bool:
        return isinstance(self.sort, BVSort)

    @property
    def is_const(self) -> bool:
        return self.op == OP_CONST

    @property
    def is_var(self) -> bool:
        return self.op == OP_VAR

    @property
    def value(self) -> int:
        """Concrete value of a constant term (``int``; bools are 0/1)."""
        if self.op != OP_CONST:
            raise TypeError(f"term {self!r} is not a constant")
        return self.payload

    @property
    def name(self) -> str:
        if self.op != OP_VAR:
            raise TypeError(f"term {self!r} is not a variable")
        return self.payload

    # ------------------------------------------------------------------
    # Boolean operators
    # ------------------------------------------------------------------
    def __invert__(self) -> "Term":
        if self.is_bool:
            return not_(self)
        return _mk_bv(OP_BVNOT, (self,), self.width)

    def __and__(self, other: "Term") -> "Term":
        if self.is_bool:
            return and_(self, other)
        return _bv_binop(OP_BVAND, self, other)

    def __or__(self, other: "Term") -> "Term":
        if self.is_bool:
            return or_(self, other)
        return _bv_binop(OP_BVOR, self, other)

    def __xor__(self, other: "Term") -> "Term":
        if self.is_bool:
            return xor(self, other)
        return _bv_binop(OP_BVXOR, self, other)

    # ------------------------------------------------------------------
    # Bitvector arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Term":
        return _bv_binop(OP_BVADD, self, _coerce(other, self))

    def __sub__(self, other) -> "Term":
        return _bv_binop(OP_BVSUB, self, _coerce(other, self))

    def __mul__(self, other) -> "Term":
        return _bv_binop(OP_BVMUL, self, _coerce(other, self))

    def __lshift__(self, amount: int) -> "Term":
        return shl(self, amount)

    def __rshift__(self, amount: int) -> "Term":
        return lshr(self, amount)

    # ------------------------------------------------------------------
    # Comparisons (return Bool terms)
    # ------------------------------------------------------------------
    def eq(self, other) -> "Term":
        other = _coerce(other, self)
        return eq(self, other)

    def ne(self, other) -> "Term":
        return not_(self.eq(other))

    def ult(self, other) -> "Term":
        return _cmp(OP_ULT, self, _coerce(other, self))

    def ule(self, other) -> "Term":
        return _cmp(OP_ULE, self, _coerce(other, self))

    def ugt(self, other) -> "Term":
        return _cmp(OP_ULT, _coerce(other, self), self)

    def uge(self, other) -> "Term":
        return _cmp(OP_ULE, _coerce(other, self), self)

    def slt(self, other) -> "Term":
        return _cmp(OP_SLT, self, _coerce(other, self))

    def sle(self, other) -> "Term":
        return _cmp(OP_SLE, self, _coerce(other, self))

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def extract(self, hi: int, lo: int) -> "Term":
        return extract(self, hi, lo)

    def zext(self, extra: int) -> "Term":
        return zext(self, extra)

    def sext(self, extra: int) -> "Term":
        return sext(self, extra)

    def __repr__(self) -> str:
        if self.op == OP_CONST:
            if self.is_bool:
                return "true" if self.payload else "false"
            return f"#b{self.payload:0{self.width}b}"
        if self.op == OP_VAR:
            return str(self.payload)
        if self.op == OP_EXTRACT:
            hi, lo = self.payload
            return f"(extract[{hi}:{lo}] {self.args[0]!r})"
        inner = " ".join(repr(a) for a in self.args)
        return f"({self.op} {inner})"


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------

TRUE = Term(OP_CONST, (), 1, _BOOL)
FALSE = Term(OP_CONST, (), 0, _BOOL)


def bv_const(value: int, width: int) -> Term:
    """A bitvector constant, truncated to ``width`` bits."""
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    return Term(OP_CONST, (), value & ((1 << width) - 1), BVSort(width))


def bv_var(name: str, width: int) -> Term:
    """A free bitvector variable."""
    return Term(OP_VAR, (), name, BVSort(width))


def bool_var(name: str) -> Term:
    """A free boolean variable."""
    return Term(OP_VAR, (), name, _BOOL)


def bool_const(value: bool) -> Term:
    return TRUE if value else FALSE


def _coerce(value, like: Term) -> Term:
    """Coerce a Python int to a constant of the same sort as ``like``."""
    if isinstance(value, Term):
        return value
    if isinstance(value, bool):
        return bool_const(value)
    if isinstance(value, int):
        if not like.is_bv:
            raise TypeError("cannot coerce int against a boolean term")
        return bv_const(value, like.width)
    raise TypeError(f"cannot use {value!r} as a term")


def _require_bool(term: Term, ctx: str) -> None:
    if not term.is_bool:
        raise TypeError(f"{ctx} expects boolean terms, got {term.sort!r}")


def _require_same_width(a: Term, b: Term, ctx: str) -> None:
    if not (a.is_bv and b.is_bv and a.width == b.width):
        raise TypeError(f"{ctx} expects same-width bitvectors, got {a.sort!r} and {b.sort!r}")


def _mk_bv(op: str, args: Tuple[Term, ...], width: int, payload=None) -> Term:
    return Term(op, args, payload, BVSort(width))


def _bv_binop(op: str, a: Term, b) -> Term:
    b = _coerce(b, a)
    _require_same_width(a, b, op)
    return _mk_bv(op, (a, b), a.width)


def _cmp(op: str, a: Term, b: Term) -> Term:
    _require_same_width(a, b, op)
    return Term(op, (a, b), None, _BOOL)


def not_(a: Term) -> Term:
    _require_bool(a, "not")
    if a.op == OP_CONST:
        return FALSE if a.payload else TRUE
    if a.op == OP_NOT:
        return a.args[0]
    return Term(OP_NOT, (a,), None, _BOOL)


def _flatten(op: str, terms: Iterable[Term]) -> Tuple[Term, ...]:
    out = []
    for t in terms:
        if t.op == op:
            out.extend(t.args)
        else:
            out.append(t)
    return tuple(out)


def and_(*terms: Term) -> Term:
    """N-ary conjunction with constant propagation and flattening."""
    flat = []
    for t in _flatten(OP_AND, terms):
        _require_bool(t, "and")
        if t is FALSE:
            return FALSE
        if t is TRUE:
            continue
        flat.append(t)
    # Deduplicate while preserving order.
    seen = set()
    uniq = []
    for t in flat:
        if t not in seen:
            seen.add(t)
            uniq.append(t)
    if not uniq:
        return TRUE
    if len(uniq) == 1:
        return uniq[0]
    return Term(OP_AND, tuple(uniq), None, _BOOL)


def or_(*terms: Term) -> Term:
    """N-ary disjunction with constant propagation and flattening."""
    flat = []
    for t in _flatten(OP_OR, terms):
        _require_bool(t, "or")
        if t is TRUE:
            return TRUE
        if t is FALSE:
            continue
        flat.append(t)
    seen = set()
    uniq = []
    for t in flat:
        if t not in seen:
            seen.add(t)
            uniq.append(t)
    if not uniq:
        return FALSE
    if len(uniq) == 1:
        return uniq[0]
    return Term(OP_OR, tuple(uniq), None, _BOOL)


def xor(a: Term, b: Term) -> Term:
    _require_bool(a, "xor")
    _require_bool(b, "xor")
    if a.op == OP_CONST and b.op == OP_CONST:
        return bool_const(bool(a.payload) != bool(b.payload))
    if a is TRUE:
        return not_(b)
    if b is TRUE:
        return not_(a)
    if a is FALSE:
        return b
    if b is FALSE:
        return a
    if a is b:
        return FALSE
    return Term(OP_XOR, (a, b), None, _BOOL)


def implies(a: Term, b: Term) -> Term:
    return or_(not_(a), b)


def eq(a: Term, b: Term) -> Term:
    """Equality over same-sort terms (bool or bitvector)."""
    if a.is_bool and b.is_bool:
        if a is b:
            return TRUE
        if a.op == OP_CONST and b.op == OP_CONST:
            return bool_const(a.payload == b.payload)
        if a is TRUE:
            return b
        if b is TRUE:
            return a
        if a is FALSE:
            return not_(b)
        if b is FALSE:
            return not_(a)
        return Term(OP_EQ, (a, b), None, _BOOL)
    _require_same_width(a, b, "eq")
    if a is b:
        return TRUE
    if a.op == OP_CONST and b.op == OP_CONST:
        return bool_const(a.payload == b.payload)
    return Term(OP_EQ, (a, b), None, _BOOL)


def ite(cond: Term, then: Term, els: Term) -> Term:
    """If-then-else over booleans or same-width bitvectors."""
    _require_bool(cond, "ite")
    if then.sort != els.sort:
        raise TypeError(f"ite branch sorts differ: {then.sort!r} vs {els.sort!r}")
    if cond is TRUE:
        return then
    if cond is FALSE:
        return els
    if then is els:
        return then
    if then.is_bool:
        # (ite c true false) == c, (ite c false true) == !c
        if then is TRUE and els is FALSE:
            return cond
        if then is FALSE and els is TRUE:
            return not_(cond)
        return Term(OP_ITE, (cond, then, els), None, _BOOL)
    return Term(OP_ITE, (cond, then, els), None, then.sort)


def concat(*parts: Term) -> Term:
    """Concatenation; the first argument holds the most-significant bits."""
    if not parts:
        raise ValueError("concat requires at least one part")
    for p in parts:
        if not p.is_bv:
            raise TypeError("concat expects bitvector terms")
    if len(parts) == 1:
        return parts[0]
    total = sum(p.width for p in parts)
    if all(p.op == OP_CONST for p in parts):
        value = 0
        for p in parts:
            value = (value << p.width) | p.payload
        return bv_const(value, total)
    return _mk_bv(OP_CONCAT, tuple(parts), total)


def extract(term: Term, hi: int, lo: int) -> Term:
    """Bits ``hi`` down to ``lo`` inclusive (LSB is bit 0)."""
    if not term.is_bv:
        raise TypeError("extract expects a bitvector term")
    if not (0 <= lo <= hi < term.width):
        raise ValueError(f"extract[{hi}:{lo}] out of range for width {term.width}")
    if lo == 0 and hi == term.width - 1:
        return term
    if term.op == OP_CONST:
        return bv_const(term.payload >> lo, hi - lo + 1)
    return _mk_bv(OP_EXTRACT, (term,), hi - lo + 1, payload=(hi, lo))


def zext(term: Term, extra: int) -> Term:
    """Zero-extend by ``extra`` bits."""
    if extra < 0:
        raise ValueError("zext amount must be non-negative")
    if extra == 0:
        return term
    if term.op == OP_CONST:
        return bv_const(term.payload, term.width + extra)
    return _mk_bv(OP_ZEXT, (term,), term.width + extra, payload=extra)


def sext(term: Term, extra: int) -> Term:
    """Sign-extend by ``extra`` bits."""
    if extra < 0:
        raise ValueError("sext amount must be non-negative")
    if extra == 0:
        return term
    if term.op == OP_CONST:
        sign = (term.payload >> (term.width - 1)) & 1
        if sign:
            ext = ((1 << extra) - 1) << term.width
            return bv_const(term.payload | ext, term.width + extra)
        return bv_const(term.payload, term.width + extra)
    return _mk_bv(OP_SEXT, (term,), term.width + extra, payload=extra)


def shl(term: Term, amount: int) -> Term:
    """Logical shift left by a constant amount."""
    if amount < 0:
        raise ValueError("shift amount must be non-negative")
    if amount == 0:
        return term
    if term.op == OP_CONST:
        return bv_const(term.payload << amount, term.width)
    return _mk_bv(OP_BVSHL, (term,), term.width, payload=amount)


def lshr(term: Term, amount: int) -> Term:
    """Logical shift right by a constant amount."""
    if amount < 0:
        raise ValueError("shift amount must be non-negative")
    if amount == 0:
        return term
    if term.op == OP_CONST:
        return bv_const(term.payload >> amount, term.width)
    return _mk_bv(OP_BVLSHR, (term,), term.width, payload=amount)


# ----------------------------------------------------------------------
# Concrete evaluation
# ----------------------------------------------------------------------


def _to_signed(value: int, width: int) -> int:
    if value >= 1 << (width - 1):
        return value - (1 << width)
    return value


def evaluate(term: Term, assignment: Mapping[str, int]) -> int:
    """Evaluate ``term`` under ``assignment`` (variable name -> int value).

    Booleans evaluate to 0/1.  Missing variables default to 0, matching the
    solver's model completion for don't-care variables.
    """
    cache: Dict[Term, int] = {}

    def go(t: Term) -> int:
        hit = cache.get(t)
        if hit is not None:
            return hit
        op = t.op
        if op == OP_CONST:
            result = t.payload
        elif op == OP_VAR:
            result = assignment.get(t.payload, 0)
            if t.is_bv:
                result &= (1 << t.width) - 1
            else:
                result = 1 if result else 0
        elif op == OP_NOT:
            result = 1 - go(t.args[0])
        elif op == OP_AND:
            result = 1 if all(go(a) for a in t.args) else 0
        elif op == OP_OR:
            result = 1 if any(go(a) for a in t.args) else 0
        elif op == OP_XOR:
            result = go(t.args[0]) ^ go(t.args[1])
        elif op == OP_EQ:
            result = 1 if go(t.args[0]) == go(t.args[1]) else 0
        elif op == OP_ITE:
            result = go(t.args[1]) if go(t.args[0]) else go(t.args[2])
        elif op == OP_BVNOT:
            result = ~go(t.args[0]) & ((1 << t.width) - 1)
        elif op == OP_BVAND:
            result = go(t.args[0]) & go(t.args[1])
        elif op == OP_BVOR:
            result = go(t.args[0]) | go(t.args[1])
        elif op == OP_BVXOR:
            result = go(t.args[0]) ^ go(t.args[1])
        elif op == OP_BVADD:
            result = (go(t.args[0]) + go(t.args[1])) & ((1 << t.width) - 1)
        elif op == OP_BVSUB:
            result = (go(t.args[0]) - go(t.args[1])) & ((1 << t.width) - 1)
        elif op == OP_BVNEG:
            result = (-go(t.args[0])) & ((1 << t.width) - 1)
        elif op == OP_BVMUL:
            result = (go(t.args[0]) * go(t.args[1])) & ((1 << t.width) - 1)
        elif op == OP_BVSHL:
            result = (go(t.args[0]) << t.payload) & ((1 << t.width) - 1)
        elif op == OP_BVLSHR:
            result = go(t.args[0]) >> t.payload
        elif op == OP_CONCAT:
            result = 0
            for part in t.args:
                result = (result << part.width) | go(part)
        elif op == OP_EXTRACT:
            hi, lo = t.payload
            result = (go(t.args[0]) >> lo) & ((1 << (hi - lo + 1)) - 1)
        elif op == OP_ZEXT:
            result = go(t.args[0])
        elif op == OP_SEXT:
            child = t.args[0]
            val = go(child)
            sign = (val >> (child.width - 1)) & 1
            if sign:
                val |= ((1 << t.payload) - 1) << child.width
            result = val
        elif op == OP_ULT:
            result = 1 if go(t.args[0]) < go(t.args[1]) else 0
        elif op == OP_ULE:
            result = 1 if go(t.args[0]) <= go(t.args[1]) else 0
        elif op == OP_SLT:
            w = t.args[0].width
            result = 1 if _to_signed(go(t.args[0]), w) < _to_signed(go(t.args[1]), w) else 0
        elif op == OP_SLE:
            w = t.args[0].width
            result = 1 if _to_signed(go(t.args[0]), w) <= _to_signed(go(t.args[1]), w) else 0
        else:  # pragma: no cover - defensive
            raise NotImplementedError(f"evaluate: unknown op {op}")
        cache[t] = result
        return result

    return go(term)


# Memoised free-variable sets.  Terms are hash-consed and immutable, so a
# term's variable set never changes; the packet generator queries the same
# (large) goal condition several times per goal, and across goals that share
# trace subterms, which makes the repeated DAG walks pure waste.  Keyed on
# term identity; entries live as long as the term cache itself.
_FREE_VARS_CACHE: Dict["Term", Dict[str, Sort]] = {}


def free_variables(term: Term) -> Dict[str, Sort]:
    """All free variables in ``term`` (name -> sort)."""
    cached = _FREE_VARS_CACHE.get(term)
    if cached is None:
        out: Dict[str, Sort] = {}
        seen = set()
        stack = [term]
        while stack:
            t = stack.pop()
            if t in seen:
                continue
            seen.add(t)
            if t.op == OP_VAR:
                out[t.payload] = t.sort
            stack.extend(t.args)
        _FREE_VARS_CACHE[term] = out
        cached = out
    # Callers may mutate the result; hand out a copy to keep the cache safe.
    return dict(cached)


# Structural digests.  Unlike ``hash()`` (randomised per process by
# PYTHONHASHSEED), these are stable across processes and runs, so they can
# key on-disk caches.  Computed bottom-up over the DAG with per-node
# memoisation: shared subterms are digested once, ever.
_DIGEST_CACHE: Dict["Term", str] = {}


def term_digest(term: Term) -> str:
    """A deterministic SHA-256 digest of the term's structure."""
    cached = _DIGEST_CACHE.get(term)
    if cached is not None:
        return cached
    stack = [(term, False)]
    while stack:
        t, ready = stack.pop()
        if t in _DIGEST_CACHE:
            continue
        if not ready:
            stack.append((t, True))
            stack.extend((a, False) for a in t.args if a not in _DIGEST_CACHE)
        else:
            h = hashlib.sha256()
            h.update(t.op.encode())
            h.update(repr(t.payload).encode())
            h.update(repr(t.sort).encode())
            for a in t.args:
                h.update(_DIGEST_CACHE[a].encode())
            _DIGEST_CACHE[t] = h.hexdigest()
    return _DIGEST_CACHE[term]


# Convenience alias used throughout the codebase.
BV = bv_const
