"""The user-facing BMv2 simulator: behaviour-set collection.

§5 "Hashing": to judge a switch against a model with black-box hashing,
SwitchV "configures the P4 simulator to use round-robin hashing, and runs
the test packet through it several times (i.e. until the same behavior
occurs twice) to build the set of all possible behaviors, and then checks
that it includes the observed switch behavior."  :meth:`Bmv2Simulator.behaviors`
implements exactly that loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.bmv2.entries import InstalledEntry
from repro.bmv2.interpreter import (
    HashProvider,
    Interpreter,
    PacketResult,
    RoundRobinHash,
)
from repro.bmv2.packet import Packet
from repro.p4.ast import P4Program


@dataclass(frozen=True)
class Behavior:
    """One admissible behaviour of the model for a given packet."""

    signature: Tuple
    result: PacketResult


class Bmv2Simulator:
    """Interprets a P4 program; enumerates admissible behaviour sets."""

    def __init__(
        self,
        program: P4Program,
        state: Mapping[str, Sequence[InstalledEntry]],
        max_rounds: int = 64,
        faults=None,
    ) -> None:
        self.program = program
        self.state = dict(state)
        self.max_rounds = max_rounds
        # Seeded simulator bugs (Cerberus found 4 BMv2 bugs, Table 1):
        # consulted from the shared fault registry when one is provided.
        self._faults = faults
        # Lookup indices for large tables, built once and shared by every
        # enumeration round (behaviors() spins up many interpreters over
        # this one frozen state).
        self._index_cache: Dict[str, Tuple] = {}

    def _fault(self, name: str) -> bool:
        return self._faults is not None and self._faults.enabled(name)

    def run(
        self,
        packet: Packet,
        ingress_port: int,
        hash_provider: Optional[HashProvider] = None,
        tie_break_round: int = 0,
    ) -> PacketResult:
        """A single interpretation (round-robin round 0 by default)."""
        interp = Interpreter(
            self.program,
            self.state,
            hash_provider or RoundRobinHash(0),
            optional_absent_matches_zero=self._fault("bmv2_optional_zero_match"),
            lpm_shortest_prefix_wins=self._fault("bmv2_lpm_shortest_prefix"),
            tie_break_round=tie_break_round,
            index_cache=self._index_cache,
        )
        return interp.run(packet.copy(), ingress_port)

    def behaviors(self, packet: Packet, ingress_port: int) -> List[Behavior]:
        """All admissible behaviours, via round-robin enumeration.

        Rounds rotate both the hash (WCMP member selection) and the
        equal-priority tie-break index — the P4Runtime specification leaves
        same-priority overlap undefined and switches reorder ties across
        entry modifications.  Enumeration stops after two consecutive
        fruitless rounds (the mixed rotation periods mean a single repeat
        does not prove exhaustion), or at ``max_rounds``.
        """
        seen: Dict[Tuple, Behavior] = {}
        max_tie_rounds = max(2, self.max_rounds // 8)
        for tie_round in range(max_tie_rounds):
            fresh_row = False
            fruitless = 0
            for hash_round in range(self.max_rounds):
                result = self.run(
                    packet, ingress_port, RoundRobinHash(hash_round), tie_round
                )
                signature = result.behavior_signature()
                if signature in seen:
                    fruitless += 1
                    if fruitless >= 2:
                        break
                else:
                    fruitless = 0
                    fresh_row = True
                    seen[signature] = Behavior(signature=signature, result=result)
            if tie_round > 0 and not fresh_row:
                break
        return list(seen.values())

    def admits(self, packet: Packet, ingress_port: int, observed_signature: Tuple) -> bool:
        """Whether the observed behaviour is in the model's admissible set."""
        return any(
            b.signature == observed_signature for b in self.behaviors(packet, ingress_port)
        )
