"""Decoded (model-level) table entries and wire → model conversion.

Wire-level :class:`~repro.p4rt.messages.TableEntry` objects carry raw bytes
and numeric IDs.  The interpreter and the symbolic executor want decoded
entries: names, integers, and per-key match semantics.  The decoder here is
the *reference* implementation of the P4Runtime syntactic-validity rules
(§4 "Valid and Invalid Requests") used by the fuzzer's oracle and the
simulator; the switch under test has its own independent validation path in
:mod:`repro.switch.p4rt_server`, so a disagreement between the two is a
detectable bug — in either side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.p4.ast import MatchKind
from repro.p4.p4info import P4Info, TableInfo
from repro.p4.constraints.evaluator import KeyValue
from repro.p4rt import codec
from repro.p4rt.messages import (
    ActionInvocation,
    ActionProfileActionSet,
    FieldMatch,
    TableEntry,
)


class EntryDecodeError(ValueError):
    """A wire entry failed P4Runtime syntactic validation.

    ``reason`` is a stable machine-readable tag; the fuzzer's oracle keys
    its expectations on these tags.
    """

    def __init__(self, reason: str, detail: str) -> None:
        super().__init__(f"{reason}: {detail}")
        self.reason = reason
        self.detail = detail


@dataclass(frozen=True)
class DecodedMatch:
    """One decoded match clause."""

    key_name: str
    kind: MatchKind
    value: int = 0
    mask: int = 0
    prefix_len: int = 0
    present: bool = True

    def to_key_value(self) -> KeyValue:
        return KeyValue(
            value=self.value, mask=self.mask, prefix_len=self.prefix_len, present=self.present
        )


@dataclass(frozen=True)
class DecodedAction:
    """A single decoded action invocation: name + named integer params."""

    name: str
    params: Tuple[Tuple[str, int], ...] = ()

    def param_map(self) -> Dict[str, int]:
        return dict(self.params)


@dataclass(frozen=True)
class DecodedActionSet:
    """A decoded one-shot action set: weighted members."""

    members: Tuple[Tuple[DecodedAction, int], ...] = ()  # (action, weight)


@dataclass(frozen=True)
class InstalledEntry:
    """A fully decoded entry as installed in a table."""

    table_name: str
    matches: Tuple[DecodedMatch, ...]
    action: Union[DecodedAction, DecodedActionSet]
    priority: int = 0

    def match(self, key_name: str) -> Optional[DecodedMatch]:
        for m in self.matches:
            if m.key_name == key_name:
                return m
        return None

    def key_values(self) -> Dict[str, KeyValue]:
        return {m.key_name: m.to_key_value() for m in self.matches}

    def identity(self) -> Tuple:
        """Identity per the P4Runtime spec: matches + priority, not action."""
        canon = tuple(
            sorted(
                (m.key_name, m.kind.value, m.value, m.mask, m.prefix_len, m.present)
                for m in self.matches
            )
        )
        return (self.table_name, canon, self.priority)


def decode_table_entry(p4info: P4Info, entry: TableEntry) -> InstalledEntry:
    """Decode and validate a wire entry against the catalogue.

    Raises :class:`EntryDecodeError` with a stable ``reason`` tag on any
    violation of the P4Runtime format rules:

    * ``unknown_table`` / ``unknown_match_field`` / ``unknown_action``
    * ``action_not_in_table`` — action exists but is not permitted here
    * ``default_only_action`` — @defaultonly action used in an entry
    * ``duplicate_match_field`` — two clauses for the same field id
    * ``missing_mandatory_match`` — an exact key was omitted
    * ``match_type_mismatch`` — clause kind differs from the declared kind
    * ``value_out_of_range`` / ``non_canonical_value``
    * ``invalid_prefix_length`` / ``invalid_mask``
    * ``missing_action`` / ``missing_action_param`` / ``unknown_action_param``
    * ``expects_action_set`` / ``expects_single_action`` — one-shot selector
      tables require action sets and vice versa (§4.2 Invalid Table
      Implementation)
    * ``invalid_weight`` — non-positive action-set weight
    * ``missing_priority`` / ``unexpected_priority``
    """
    table = p4info.tables.get(entry.table_id)
    if table is None:
        raise EntryDecodeError("unknown_table", f"table id 0x{entry.table_id:08x}")

    matches = _decode_matches(table, entry)
    _check_priority(table, entry)
    action = _decode_action(p4info, table, entry)
    return InstalledEntry(
        table_name=table.name,
        matches=tuple(matches),
        action=action,
        priority=entry.priority,
    )


def _decode_matches(table: TableInfo, entry: TableEntry) -> List[DecodedMatch]:
    seen_ids = set()
    matches: List[DecodedMatch] = []
    for fm in entry.matches:
        if fm.field_id in seen_ids:
            raise EntryDecodeError("duplicate_match_field", f"field id {fm.field_id}")
        seen_ids.add(fm.field_id)
        mf = table.match_field_by_id(fm.field_id)
        if mf is None:
            raise EntryDecodeError(
                "unknown_match_field", f"field id {fm.field_id} in table {table.name}"
            )
        if fm.kind != mf.match_type.value:
            raise EntryDecodeError(
                "match_type_mismatch",
                f"{table.name}.{mf.name} is {mf.match_type.value}, clause says {fm.kind}",
            )
        matches.append(_decode_one_match(table, mf, fm))
    # Mandatory (exact) fields must all be present; omitted lpm/ternary/
    # optional fields are wildcards — but a wildcard ("don't care") clause
    # must be *omitted*, not sent explicitly.
    for mf in table.match_fields:
        if mf.match_type is MatchKind.EXACT and mf.id not in seen_ids:
            raise EntryDecodeError(
                "missing_mandatory_match", f"{table.name}.{mf.name} (exact) omitted"
            )
        if mf.id not in seen_ids:
            matches.append(
                DecodedMatch(
                    key_name=mf.name,
                    kind=mf.match_type,
                    value=0,
                    mask=0,
                    prefix_len=0,
                    present=False,
                )
            )
    matches.sort(key=lambda m: m.key_name)
    return matches


def _decode_value(data: bytes, bitwidth: int, what: str) -> int:
    if not codec.is_canonical(data):
        raise EntryDecodeError("non_canonical_value", f"{what}: {data.hex()!r}")
    try:
        return codec.decode(data, bitwidth)
    except codec.CodecError as exc:
        raise EntryDecodeError("value_out_of_range", f"{what}: {exc}") from exc


def _decode_one_match(table: TableInfo, mf, fm: FieldMatch) -> DecodedMatch:
    what = f"{table.name}.{mf.name}"
    value = _decode_value(fm.value, mf.bitwidth, what)
    if mf.match_type is MatchKind.EXACT:
        return DecodedMatch(
            key_name=mf.name,
            kind=mf.match_type,
            value=value,
            mask=(1 << mf.bitwidth) - 1,
            prefix_len=mf.bitwidth,
        )
    if mf.match_type is MatchKind.LPM:
        if not 0 < fm.prefix_len <= mf.bitwidth:
            # prefix 0 means wildcard, which must be expressed by omission.
            raise EntryDecodeError(
                "invalid_prefix_length", f"{what}: /{fm.prefix_len} for {mf.bitwidth}-bit field"
            )
        mask = codec.mask_for_prefix(fm.prefix_len, mf.bitwidth)
        if value & ~mask:
            raise EntryDecodeError(
                "invalid_mask", f"{what}: value has bits outside /{fm.prefix_len}"
            )
        return DecodedMatch(
            key_name=mf.name,
            kind=mf.match_type,
            value=value,
            mask=mask,
            prefix_len=fm.prefix_len,
        )
    if mf.match_type is MatchKind.TERNARY:
        mask = _decode_value(fm.mask, mf.bitwidth, f"{what} mask")
        if mask == 0:
            raise EntryDecodeError("invalid_mask", f"{what}: zero mask must be omitted")
        if value & ~mask:
            raise EntryDecodeError("invalid_mask", f"{what}: value has bits outside mask")
        return DecodedMatch(key_name=mf.name, kind=mf.match_type, value=value, mask=mask)
    # OPTIONAL: behaves like exact-when-present.
    return DecodedMatch(
        key_name=mf.name,
        kind=mf.match_type,
        value=value,
        mask=(1 << mf.bitwidth) - 1,
    )


def _check_priority(table: TableInfo, entry: TableEntry) -> None:
    if table.requires_priority:
        if entry.priority <= 0:
            raise EntryDecodeError(
                "missing_priority", f"table {table.name} requires a positive priority"
            )
    else:
        if entry.priority != 0:
            raise EntryDecodeError(
                "unexpected_priority", f"table {table.name} does not use priorities"
            )


def _decode_invocation(p4info: P4Info, table: TableInfo, inv: ActionInvocation) -> DecodedAction:
    action = p4info.actions.get(inv.action_id)
    if action is None:
        raise EntryDecodeError("unknown_action", f"action id 0x{inv.action_id:08x}")
    if action.id not in table.action_ids:
        if action.id in table.default_only_action_ids:
            raise EntryDecodeError(
                "default_only_action", f"{action.name} is @defaultonly in {table.name}"
            )
        raise EntryDecodeError(
            "action_not_in_table", f"action {action.name} not allowed in {table.name}"
        )
    seen = set()
    params: List[Tuple[str, int]] = []
    for pid, data in inv.params:
        pinfo = action.param_by_id(pid)
        if pinfo is None:
            raise EntryDecodeError(
                "unknown_action_param", f"{action.name} has no param id {pid}"
            )
        if pid in seen:
            raise EntryDecodeError("duplicate_action_param", f"{action.name} param {pid}")
        seen.add(pid)
        value = _decode_value(data, pinfo.bitwidth, f"{action.name}.{pinfo.name}")
        params.append((pinfo.name, value))
    for pinfo in action.params:
        if pinfo.id not in seen:
            raise EntryDecodeError(
                "missing_action_param", f"{action.name}.{pinfo.name} omitted"
            )
    return DecodedAction(name=action.name, params=tuple(sorted(params)))


def _decode_action(
    p4info: P4Info, table: TableInfo, entry: TableEntry
) -> Union[DecodedAction, DecodedActionSet]:
    if entry.action is None:
        raise EntryDecodeError("missing_action", f"entry for {table.name} has no action")
    if table.implementation_id != 0:
        # One-shot action-selector table: requires an action set.
        if not isinstance(entry.action, ActionProfileActionSet):
            raise EntryDecodeError(
                "expects_action_set",
                f"{table.name} uses a selector; single actions not allowed",
            )
        if not entry.action.actions:
            raise EntryDecodeError("missing_action", f"empty action set for {table.name}")
        profile = p4info.action_profiles.get(table.implementation_id)
        members: List[Tuple[DecodedAction, int]] = []
        total_weight = 0
        for member in entry.action.actions:
            if member.weight <= 0:
                raise EntryDecodeError(
                    "invalid_weight", f"non-positive weight {member.weight} in action set"
                )
            total_weight += member.weight
            members.append((_decode_invocation(p4info, table, member.action), member.weight))
        if profile is not None and total_weight > profile.max_group_size:
            raise EntryDecodeError(
                "invalid_weight",
                f"total weight {total_weight} exceeds max group size {profile.max_group_size}",
            )
        return DecodedActionSet(members=tuple(members))
    if isinstance(entry.action, ActionProfileActionSet):
        raise EntryDecodeError(
            "expects_single_action", f"{table.name} is a direct table; action sets not allowed"
        )
    return _decode_invocation(p4info, table, entry.action)
