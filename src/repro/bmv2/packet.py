"""Concrete packets: field maps with wire encode/decode.

A :class:`Packet` is a mapping from dotted field paths (``"ipv4.dst_addr"``)
to unsigned integers, plus the set of valid headers and an opaque payload.
The parser patterns here are the "semi-hardcoded parser patterns of
interest" from §5: Ethernet, then IPv4 or IPv6 by ether type, then
ICMP/TCP/UDP by protocol.

The same encode/decode is used by the switch under test, the BMv2
simulator, and packet-io (PacketIn/PacketOut payloads), so a disagreement
between switch and simulator is never a serialization artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.p4.programs.common import (
    ETHERTYPE_IPV4,
    ETHERTYPE_IPV6,
    IP_PROTOCOL_ICMP,
    IP_PROTOCOL_TCP,
    IP_PROTOCOL_UDP,
    STANDARD_HEADERS,
)

_HEADERS_BY_NAME = {h.name: h for h in STANDARD_HEADERS}


class PacketError(ValueError):
    """Raised for malformed packets (truncated headers, bad versions)."""


@dataclass
class Packet:
    """A concrete packet: header fields, validity, and payload."""

    fields: Dict[str, int] = field(default_factory=dict)
    valid_headers: Set[str] = field(default_factory=set)
    payload: bytes = b""

    def get(self, path: str, default: int = 0) -> int:
        return self.fields.get(path, default)

    def set(self, path: str, value: int) -> None:
        self.fields[path] = value

    def is_valid(self, header: str) -> bool:
        return header in self.valid_headers

    def copy(self) -> "Packet":
        return Packet(
            fields=dict(self.fields),
            valid_headers=set(self.valid_headers),
            payload=self.payload,
        )

    def signature(self) -> Tuple:
        """A hashable identity of header contents (for behaviour comparison)."""
        return (
            tuple(sorted(self.valid_headers)),
            tuple(sorted(self.fields.items())),
            self.payload,
        )

    def __repr__(self) -> str:
        hdrs = "/".join(sorted(self.valid_headers)) or "raw"
        return f"Packet({hdrs}, {len(self.payload)}B payload)"


# ----------------------------------------------------------------------
# Bit-level encode/decode helpers
# ----------------------------------------------------------------------


class _BitReader:
    def __init__(self, data: bytes) -> None:
        self._data = data
        self._bitpos = 0

    @property
    def remaining_bits(self) -> int:
        return len(self._data) * 8 - self._bitpos

    def read(self, width: int) -> int:
        if width > self.remaining_bits:
            raise PacketError(f"truncated packet: wanted {width} bits, have {self.remaining_bits}")
        value = 0
        for _ in range(width):
            byte = self._data[self._bitpos // 8]
            bit = (byte >> (7 - (self._bitpos % 8))) & 1
            value = (value << 1) | bit
            self._bitpos += 1
        return value

    def rest(self) -> bytes:
        if self._bitpos % 8 != 0:
            raise PacketError("header stack not byte aligned")
        return self._data[self._bitpos // 8 :]


class _BitWriter:
    def __init__(self) -> None:
        self._bits: List[int] = []

    def write(self, value: int, width: int) -> None:
        self._bits.extend((value >> i) & 1 for i in range(width - 1, -1, -1))

    def finish(self) -> bytes:
        if len(self._bits) % 8 != 0:
            raise PacketError("header stack not byte aligned")
        out = bytearray()
        for i in range(0, len(self._bits), 8):
            byte = 0
            for bit in self._bits[i : i + 8]:
                byte = (byte << 1) | bit
            out.append(byte)
        return bytes(out)


def _read_header(reader: _BitReader, packet: Packet, header_name: str) -> None:
    header = _HEADERS_BY_NAME[header_name]
    for fname, width in header.fields:
        packet.fields[f"{header_name}.{fname}"] = reader.read(width)
    packet.valid_headers.add(header_name)


def _write_header(writer: _BitWriter, packet: Packet, header_name: str) -> None:
    header = _HEADERS_BY_NAME[header_name]
    for fname, width in header.fields:
        writer.write(packet.get(f"{header_name}.{fname}"), width)


# ----------------------------------------------------------------------
# Parser patterns (§5 "Limitations": semi-hardcoded parsers)
# ----------------------------------------------------------------------


def parse_packet(data: bytes, pattern: str = "ethernet_ipv4_ipv6") -> Packet:
    """Parse wire bytes into a :class:`Packet` using a registered pattern."""
    if pattern != "ethernet_ipv4_ipv6":
        raise PacketError(f"unknown parser pattern {pattern!r}")
    packet = Packet()
    reader = _BitReader(data)
    _read_header(reader, packet, "ethernet")
    ether_type = packet.get("ethernet.ether_type")
    protocol: Optional[int] = None
    if ether_type == ETHERTYPE_IPV4:
        _read_header(reader, packet, "ipv4")
        protocol = packet.get("ipv4.protocol")
    elif ether_type == ETHERTYPE_IPV6:
        _read_header(reader, packet, "ipv6")
        protocol = packet.get("ipv6.next_header")
    if protocol == IP_PROTOCOL_ICMP:
        _read_header(reader, packet, "icmp")
    elif protocol == IP_PROTOCOL_TCP:
        _read_header(reader, packet, "tcp")
    elif protocol == IP_PROTOCOL_UDP:
        _read_header(reader, packet, "udp")
    packet.payload = reader.rest()
    return packet


_DEPARSE_ORDER = ("ethernet", "ipv4", "ipv6", "icmp", "tcp", "udp")


def deparse_packet(packet: Packet) -> bytes:
    """Serialize a packet back to wire bytes (valid headers in order)."""
    writer = _BitWriter()
    for header in _DEPARSE_ORDER:
        if packet.is_valid(header):
            _write_header(writer, packet, header)
    return writer.finish() + packet.payload


# ----------------------------------------------------------------------
# Packet construction helpers
# ----------------------------------------------------------------------


def make_ipv4_packet(
    dst_addr: int,
    src_addr: int = 0x0A000001,
    ttl: int = 64,
    protocol: int = IP_PROTOCOL_UDP,
    dst_mac: int = 0x00AABBCCDDEE,
    src_mac: int = 0x001122334455,
    dscp: int = 0,
    l4_dst_port: int = 443,
    payload: bytes = b"payload",
) -> Packet:
    """A well-formed IPv4/UDP (or TCP/ICMP) packet for tests and examples."""
    packet = Packet(payload=payload)
    packet.valid_headers.add("ethernet")
    packet.fields.update(
        {
            "ethernet.dst_addr": dst_mac,
            "ethernet.src_addr": src_mac,
            "ethernet.ether_type": ETHERTYPE_IPV4,
        }
    )
    packet.valid_headers.add("ipv4")
    packet.fields.update(
        {
            "ipv4.version": 4,
            "ipv4.ihl": 5,
            "ipv4.dscp": dscp,
            "ipv4.ecn": 0,
            "ipv4.total_len": 20 + len(payload),
            "ipv4.identification": 0,
            "ipv4.flags": 0,
            "ipv4.frag_offset": 0,
            "ipv4.ttl": ttl,
            "ipv4.protocol": protocol,
            "ipv4.header_checksum": 0,
            "ipv4.src_addr": src_addr,
            "ipv4.dst_addr": dst_addr,
        }
    )
    if protocol == IP_PROTOCOL_UDP:
        packet.valid_headers.add("udp")
        packet.fields.update(
            {
                "udp.src_port": 10000,
                "udp.dst_port": l4_dst_port,
                "udp.hdr_length": 8 + len(payload),
                "udp.checksum": 0,
            }
        )
    elif protocol == IP_PROTOCOL_TCP:
        packet.valid_headers.add("tcp")
        packet.fields.update(
            {
                "tcp.src_port": 10000,
                "tcp.dst_port": l4_dst_port,
                "tcp.seq_no": 0,
                "tcp.ack_no": 0,
                "tcp.data_offset": 5,
                "tcp.res": 0,
                "tcp.flags": 0x02,
                "tcp.window": 0xFFFF,
                "tcp.checksum": 0,
                "tcp.urgent_ptr": 0,
            }
        )
    elif protocol == IP_PROTOCOL_ICMP:
        packet.valid_headers.add("icmp")
        packet.fields.update({"icmp.type": 8, "icmp.code": 0, "icmp.checksum": 0})
    return packet


def make_ipv6_packet(
    dst_addr: int,
    src_addr: int = 0x20010DB8_00000000_00000000_00000001,
    hop_limit: int = 64,
    next_header: int = IP_PROTOCOL_UDP,
    dst_mac: int = 0x00AABBCCDDEE,
    src_mac: int = 0x001122334455,
    payload: bytes = b"payload",
) -> Packet:
    packet = Packet(payload=payload)
    packet.valid_headers.add("ethernet")
    packet.fields.update(
        {
            "ethernet.dst_addr": dst_mac,
            "ethernet.src_addr": src_mac,
            "ethernet.ether_type": ETHERTYPE_IPV6,
        }
    )
    packet.valid_headers.add("ipv6")
    packet.fields.update(
        {
            "ipv6.version": 6,
            "ipv6.dscp": 0,
            "ipv6.ecn": 0,
            "ipv6.flow_label": 0,
            "ipv6.payload_length": len(payload),
            "ipv6.next_header": next_header,
            "ipv6.hop_limit": hop_limit,
            "ipv6.src_addr": src_addr,
            "ipv6.dst_addr": dst_addr,
        }
    )
    if next_header == IP_PROTOCOL_UDP:
        packet.valid_headers.add("udp")
        packet.fields.update(
            {
                "udp.src_port": 10000,
                "udp.dst_port": 443,
                "udp.hdr_length": 8 + len(payload),
                "udp.checksum": 0,
            }
        )
    return packet
