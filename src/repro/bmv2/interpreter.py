"""The single-packet P4 model interpreter.

Executes a :class:`~repro.p4.ast.P4Program` on a concrete packet given the
installed table entries, producing the packet's fate plus an execution
trace (which entries were hit, which branches taken) used for coverage
accounting and incident reports.

Match semantics follow the P4Runtime specification:

* a candidate entry must match on every *present* clause (omitted
  lpm/ternary/optional clauses are wildcards);
* in tables with ternary/optional keys, the highest numeric priority wins;
* otherwise, if the table has an LPM key, the longest prefix wins;
* exact-only tables have at most one candidate.

Hashing (WCMP member selection) is delegated to a :class:`HashProvider`:
the round-robin provider enumerates behaviours (§5 "Hashing"), the seeded
provider mimics a concrete ASIC hash.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field as dc_field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.bmv2.entries import DecodedAction, DecodedActionSet, InstalledEntry
from repro.bmv2.index import TableIndex
from repro.bmv2.packet import Packet
from repro.p4 import ast
from repro.p4.ast import (
    BinOp,
    BoolOp,
    Cmp,
    Const,
    FieldRef,
    HashExpr,
    If,
    IsValid,
    P4Program,
    Param,
    Seq,
    Statement,
    Table,
    TableApply,
)


class InterpreterError(RuntimeError):
    """An internal inconsistency while executing the model."""


# ----------------------------------------------------------------------
# Hash providers
# ----------------------------------------------------------------------


class HashProvider:
    """Strategy for resolving black-box hashes (member selection)."""

    def select_weighted(
        self, label: str, packet_fields: Mapping[str, int], weights: Sequence[int]
    ) -> int:
        """Pick a member index given per-member weights."""
        raise NotImplementedError

    def value(self, label: str, packet_fields: Mapping[str, int], width: int) -> int:
        raise NotImplementedError


class RoundRobinHash(HashProvider):
    """Deterministic rotation parameterised by a round index.

    Running the interpreter with round = 0, 1, 2, ... enumerates the set of
    possible behaviours of every non-deterministic construct.  Selection
    rotates over *distinct* members — weights shape a distribution, which is
    unobservable for a single packet, so enumerating members is what
    matters for the admissible-behaviour set.
    """

    def __init__(self, round_index: int = 0) -> None:
        self.round_index = round_index

    def select_weighted(
        self, label: str, packet_fields: Mapping[str, int], weights: Sequence[int]
    ) -> int:
        if not weights:
            raise InterpreterError("selection over an empty member set")
        return self.round_index % len(weights)

    def value(self, label: str, packet_fields: Mapping[str, int], width: int) -> int:
        return self.round_index & ((1 << width) - 1)


class SeededHash(HashProvider):
    """A concrete, vendor-style hash: CRC32 over selected field bytes.

    Models the real ASIC whose exact algorithm the P4 model deliberately
    does not specify.  Every field is framed at its declared width:
    minimal-length encoding would make distinct field tuples alias (e.g.
    src=0x01,dst=0x02 vs src=0x0102,dst=0) and collapse WCMP spreading at
    scale.  Widths default to the canonical 5-tuple fields and are bound
    from the program by the interpreter; unknown fields fall back to a
    length-prefixed encoding, which is alias-free as well.
    """

    DEFAULT_WIDTHS = {
        "ipv4.src_addr": 32,
        "ipv4.dst_addr": 32,
        "ipv4.protocol": 8,
        "ipv6.src_addr": 128,
        "ipv6.dst_addr": 128,
    }

    def __init__(
        self,
        seed: int = 0,
        fields: Sequence[str] = (),
        field_widths: Optional[Mapping[str, int]] = None,
    ) -> None:
        self.seed = seed
        self.fields = tuple(fields) or (
            "ipv4.src_addr",
            "ipv4.dst_addr",
            "ipv4.protocol",
            "ipv6.src_addr",
            "ipv6.dst_addr",
        )
        self.field_widths: Dict[str, int] = dict(self.DEFAULT_WIDTHS)
        if field_widths:
            self.field_widths.update(field_widths)

    def bind_widths(self, width_of) -> None:
        """Fill in missing field widths from a program's declarations."""
        for name in self.fields:
            if name in self.field_widths:
                continue
            try:
                self.field_widths[name] = width_of(name)
            except KeyError:
                continue  # unknown to this program: length-prefixed fallback

    def _digest(self, packet_fields: Mapping[str, int]) -> int:
        material = bytearray(self.seed.to_bytes(4, "big"))
        for name in self.fields:
            value = packet_fields.get(name, 0)
            width = self.field_widths.get(name)
            if width is None:
                # No declared width: frame with an explicit length so
                # adjacent fields can never alias.
                encoded = value.to_bytes((value.bit_length() + 7) // 8 or 1, "big")
                material += len(encoded).to_bytes(2, "big")
                material += encoded
            else:
                material += value.to_bytes((width + 7) // 8, "big")
        return zlib.crc32(bytes(material))

    def select_weighted(
        self, label: str, packet_fields: Mapping[str, int], weights: Sequence[int]
    ) -> int:
        if not weights:
            raise InterpreterError("selection over an empty member set")
        total = sum(weights)
        point = self._digest(packet_fields) % total
        for index, weight in enumerate(weights):
            point -= weight
            if point < 0:
                return index
        return len(weights) - 1  # pragma: no cover - arithmetic guarantee

    def value(self, label: str, packet_fields: Mapping[str, int], width: int) -> int:
        return self._digest(packet_fields) & ((1 << width) - 1)


# ----------------------------------------------------------------------
# Execution results
# ----------------------------------------------------------------------


@dataclass
class ExecutionTrace:
    """What happened during one interpretation, for coverage/incidents."""

    # (table name, entry identity or None for miss/default, action name)
    table_hits: List[Tuple[str, Optional[Tuple], str]] = dc_field(default_factory=list)
    # (branch label, taken?)
    branches: List[Tuple[str, bool]] = dc_field(default_factory=list)

    def entries_hit(self) -> List[Tuple[str, Tuple]]:
        return [(t, e) for t, e, _a in self.table_hits if e is not None]


@dataclass
class PacketResult:
    """The fate of one packet."""

    packet: Packet  # final (possibly rewritten) packet
    egress_port: Optional[int]  # None when dropped
    punted: bool
    mirror_copies: List[Tuple[int, Packet]] = dc_field(default_factory=list)
    trace: ExecutionTrace = dc_field(default_factory=ExecutionTrace)

    @property
    def dropped(self) -> bool:
        return self.egress_port is None

    def behavior_signature(self) -> Tuple:
        """A hashable summary for behaviour-set comparison (§5 "Hashing").

        Deliberately excludes the trace: two executions with the same
        externally visible outcome are the same behaviour.  A packet that is
        dropped without being punted or mirrored has no observable contents,
        so its signature normalises them away.
        """
        if self.egress_port is None and not self.punted and not self.mirror_copies:
            return (None, False, None, ())
        return (
            self.egress_port,
            self.punted,
            self.packet.signature(),
            tuple(sorted((port, pkt.signature()) for port, pkt in self.mirror_copies)),
        )

    def __repr__(self) -> str:
        fate = "DROP" if self.dropped else f"port {self.egress_port}"
        extra = " +punt" if self.punted else ""
        if self.mirror_copies:
            extra += f" +{len(self.mirror_copies)} mirror"
        return f"PacketResult({fate}{extra})"


# ----------------------------------------------------------------------
# The interpreter
# ----------------------------------------------------------------------

TableState = Mapping[str, Sequence[InstalledEntry]]


class Interpreter:
    """Executes a P4 program on packets against a table state.

    The two boolean knobs reproduce real BMv2 defects from the paper's
    Cerberus campaign (Table 1 lists 4 simulator bugs); they are only ever
    enabled through fault injection:

    * ``optional_absent_matches_zero`` — an omitted optional match is
      treated as "must equal zero" instead of wildcard;
    * ``lpm_shortest_prefix_wins`` — the LPM comparator is inverted.
    """

    # Below this many installed entries a linear scan beats index
    # construction; standalone interpreters only auto-build above it.
    INDEX_MIN_ENTRIES = 33

    def __init__(
        self,
        program: P4Program,
        state: TableState,
        hash_provider: Optional[HashProvider] = None,
        optional_absent_matches_zero: bool = False,
        lpm_shortest_prefix_wins: bool = False,
        tie_break_round: int = 0,
        table_indices: Optional[Mapping[str, "TableIndex"]] = None,
        index_cache: Optional[Dict[str, Tuple[Sequence[InstalledEntry], "TableIndex"]]] = None,
    ) -> None:
        self.program = program
        self.state = state
        self.hash_provider = hash_provider or SeededHash()
        if isinstance(self.hash_provider, SeededHash):
            self.hash_provider.bind_widths(program.field_width)
        self.optional_absent_matches_zero = optional_absent_matches_zero
        self.lpm_shortest_prefix_wins = lpm_shortest_prefix_wins
        # Among same-priority candidates the P4Runtime spec does not fix a
        # winner, and real switches reorder ties when entries are modified
        # (remove + re-add in the agent).  The behaviour-set enumeration
        # rotates this index to visit every tied candidate.
        self.tie_break_round = tie_break_round
        self._tables_by_name = {t.name: t for t in program.tables()}
        # Externally maintained indices (e.g. a switch's persistent state)
        # take precedence; otherwise large tables get a lazily built index,
        # shareable across interpreter instances via ``index_cache`` (the
        # behaviour-set enumeration runs many rounds over one fixed state).
        self._table_indices = dict(table_indices) if table_indices else {}
        self._index_cache = index_cache if index_cache is not None else {}

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(self, packet: Packet, ingress_port: int) -> PacketResult:
        fields: Dict[str, int] = {path: 0 for path in self.program.all_field_paths()}
        fields.update(packet.fields)
        fields["standard.ingress_port"] = ingress_port
        valid = set(packet.valid_headers)
        trace = ExecutionTrace()

        self._run_block(self.program.ingress, fields, valid, trace)
        dropped = bool(fields.get("standard.drop"))
        if not dropped:
            self._run_block(self.program.egress, fields, valid, trace)
            dropped = bool(fields.get("standard.drop"))

        out_packet = Packet(
            fields={
                path: value
                for path, value in fields.items()
                if "." in path and path.split(".", 1)[0] in valid
            },
            valid_headers=valid,
            payload=packet.payload,
        )
        punted = bool(fields.get("standard.punt"))
        egress: Optional[int] = None
        if not dropped:
            egress = fields.get("standard.egress_port", 0)
            if egress == 0:
                # No forwarding decision was made: the model drops.
                egress = None
        mirror_copies: List[Tuple[int, Packet]] = []
        mirror_port = fields.get("standard.mirror_port", 0)
        if mirror_port:
            mirror_copies.append((mirror_port, out_packet.copy()))
        return PacketResult(
            packet=out_packet,
            egress_port=egress,
            punted=punted,
            mirror_copies=mirror_copies,
            trace=trace,
        )

    # ------------------------------------------------------------------
    # Control flow
    # ------------------------------------------------------------------
    def _run_block(self, block: Seq, fields, valid, trace) -> None:
        for node in block:
            if isinstance(node, TableApply):
                self._apply_table(node.table, fields, valid, trace)
            elif isinstance(node, If):
                taken = self._eval_bool(node.cond, fields, valid)
                trace.branches.append((node.label or repr(node.cond), taken))
                self._run_block(node.then_block if taken else node.else_block, fields, valid, trace)
            elif isinstance(node, Statement):
                self._execute_statement(node, fields, valid, params={})
            else:  # pragma: no cover - defensive
                raise InterpreterError(f"unknown control node {node!r}")

    # ------------------------------------------------------------------
    # Table application
    # ------------------------------------------------------------------
    def _apply_table(self, table: Table, fields, valid, trace) -> None:
        entries = self.state.get(table.name, ())
        winner = self._match(table, entries, fields)
        if winner is None:
            trace.table_hits.append((table.name, None, table.default_action.name))
            self._execute_action_body(table.default_action.body, fields, valid, params={})
            return
        action = winner.action
        if isinstance(action, DecodedActionSet):
            weights = [weight for _member, weight in action.members]
            index = self.hash_provider.select_weighted(
                f"selector:{table.name}", fields, weights
            )
            chosen, _weight = action.members[index]
            trace.table_hits.append((table.name, winner.identity(), chosen.name))
            self._invoke_named_action(table, chosen, fields, valid)
        else:
            trace.table_hits.append((table.name, winner.identity(), action.name))
            self._invoke_named_action(table, action, fields, valid)

    def _match(
        self, table: Table, entries: Sequence[InstalledEntry], fields
    ) -> Optional[InstalledEntry]:
        candidates = self._candidates(table, entries, fields)
        if not candidates:
            return None
        if table.requires_priority:
            # Highest priority wins; equal-priority ties are under-specified
            # (see tie_break_round) — rotate among the tied candidates.
            top = max(entry.priority for _order, entry in candidates)
            tied = [entry for _order, entry in candidates if entry.priority == top]
            return tied[self.tie_break_round % len(tied)]
        lpm_keys = [k.key_name for k in table.keys if k.kind is ast.MatchKind.LPM]
        if lpm_keys:
            key_name = lpm_keys[0]

            def prefix_of(entry: InstalledEntry) -> int:
                m = entry.match(key_name)
                length = m.prefix_len if m is not None and m.present else -1
                if self.lpm_shortest_prefix_wins:
                    return -length  # seeded simulator bug: inverted order
                return length

            return max(candidates, key=lambda item: (prefix_of(item[1]), -item[0]))[1]
        return candidates[0][1]

    def _candidates(
        self, table: Table, entries: Sequence[InstalledEntry], fields
    ) -> List[Tuple[int, InstalledEntry]]:
        """Matching (order, entry) pairs, ascending by installation order.

        An index (externally maintained, or lazily built for large states)
        narrows the scan to the probed buckets; every candidate it yields is
        re-verified with the same predicate the linear scan uses, so the
        result — and with it every downstream priority/LPM/tie-break
        decision — is identical entry-for-entry.
        """
        index = self._index_for(table, entries)
        if index is not None:
            return index.candidates(
                fields, lambda entry: self._entry_matches(table, entry, fields)
            )
        return [
            (order, entry)
            for order, entry in enumerate(entries)
            if self._entry_matches(table, entry, fields)
        ]

    def _index_for(
        self, table: Table, entries: Sequence[InstalledEntry]
    ) -> Optional[TableIndex]:
        index = self._table_indices.get(table.name)
        if index is not None:
            return index
        if len(entries) < self.INDEX_MIN_ENTRIES:
            return None
        cached = self._index_cache.get(table.name)
        if cached is not None and cached[0] is entries:
            return cached[1]
        index = TableIndex.build(table, entries)
        self._index_cache[table.name] = (entries, index)
        return index

    def _entry_matches(self, table: Table, entry: InstalledEntry, fields) -> bool:
        for key in table.keys:
            m = entry.match(key.key_name)
            if m is None or not m.present:
                if (
                    self.optional_absent_matches_zero
                    and key.kind is ast.MatchKind.OPTIONAL
                    and fields.get(key.field.path, 0) != 0
                ):
                    return False  # seeded simulator bug
                continue  # wildcard
            value = fields.get(key.field.path, 0)
            if m.mask:
                if (value & m.mask) != (m.value & m.mask):
                    return False
            elif value != m.value:
                return False
        return True

    def _invoke_named_action(self, table: Table, decoded: DecodedAction, fields, valid) -> None:
        action = table.action(decoded.name) if decoded.name in table.action_names else None
        if action is None:
            if decoded.name == table.default_action.name:
                action = table.default_action
            else:
                raise InterpreterError(
                    f"entry in {table.name} references unknown action {decoded.name}"
                )
        self._execute_action_body(action.body, fields, valid, params=decoded.param_map())

    def _execute_action_body(self, body, fields, valid, params) -> None:
        for stmt in body:
            self._execute_statement(stmt, fields, valid, params)

    def _execute_statement(self, stmt: Statement, fields, valid, params) -> None:
        value = self._eval_expr(stmt.value, fields, valid, params)
        width = self.program.field_width(stmt.dest.path)
        fields[stmt.dest.path] = value & ((1 << width) - 1)

    # ------------------------------------------------------------------
    # Expression evaluation
    # ------------------------------------------------------------------
    def _eval_expr(self, expr, fields, valid, params) -> int:
        if isinstance(expr, Const):
            return expr.value & ((1 << expr.width) - 1)
        if isinstance(expr, FieldRef):
            return fields.get(expr.path, 0)
        if isinstance(expr, Param):
            if expr.name not in params:
                raise InterpreterError(f"unbound action parameter {expr.name}")
            return params[expr.name]
        if isinstance(expr, BinOp):
            left = self._eval_expr(expr.left, fields, valid, params)
            right = self._eval_expr(expr.right, fields, valid, params)
            width = self._expr_width(expr.left, params)
            mask = (1 << width) - 1
            if expr.op == "+":
                return (left + right) & mask
            if expr.op == "-":
                return (left - right) & mask
            if expr.op == "&":
                return left & right
            if expr.op == "|":
                return left | right
            if expr.op == "^":
                return left ^ right
            raise InterpreterError(f"unknown binary op {expr.op}")
        if isinstance(expr, HashExpr):
            return self.hash_provider.value(expr.label, fields, expr.width)
        raise InterpreterError(f"unknown expression {expr!r}")

    def _expr_width(self, expr, params) -> int:
        if isinstance(expr, Const):
            return expr.width
        if isinstance(expr, FieldRef):
            return self.program.field_width(expr.path)
        if isinstance(expr, BinOp):
            return self._expr_width(expr.left, params)
        if isinstance(expr, HashExpr):
            return expr.width
        if isinstance(expr, Param):
            return 64  # parameters carry their declared width at decode time
        raise InterpreterError(f"cannot determine width of {expr!r}")

    def _eval_bool(self, cond, fields, valid) -> bool:
        if isinstance(cond, IsValid):
            return cond.header in valid
        if isinstance(cond, Cmp):
            left = self._eval_expr(cond.left, fields, valid, {})
            right = self._eval_expr(cond.right, fields, valid, {})
            return {
                "==": left == right,
                "!=": left != right,
                "<": left < right,
                "<=": left <= right,
                ">": left > right,
                ">=": left >= right,
            }[cond.op]
        if isinstance(cond, BoolOp):
            if cond.op == "and":
                return all(self._eval_bool(a, fields, valid) for a in cond.args)
            if cond.op == "or":
                return any(self._eval_bool(a, fields, valid) for a in cond.args)
            return not self._eval_bool(cond.args[0], fields, valid)
        raise InterpreterError(f"unknown condition {cond!r}")
