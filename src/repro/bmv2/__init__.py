"""repro.bmv2 — a behavioral-model P4 simulator.

Plays the role of the BMv2 simple_switch in the paper: an independent
interpreter of the P4 model that SwitchV uses as the data-plane reference.
Given a program, installed table entries and an input packet, it produces
the packet's fate (egress port / drop / punt / mirror copies and the
rewritten header fields).

Hashing is handled per §5: the simulator supports a *round-robin* hash mode
used to enumerate the full set of admissible behaviours for
non-deterministic constructs (WCMP member selection), and a *seeded* mode
that mimics a concrete ASIC hash.

* :mod:`repro.bmv2.packet` — concrete packets: field maps plus wire
  encode/decode for the supported parser patterns.
* :mod:`repro.bmv2.entries` — decoded, model-level table entries and the
  wire → model conversion (shared with the switch stack).
* :mod:`repro.bmv2.interpreter` — the single-packet interpreter.
* :mod:`repro.bmv2.simulator` — behaviour-set collection and the
  user-facing ``Bmv2Simulator``.
"""

from repro.bmv2.entries import DecodedAction, DecodedActionSet, DecodedMatch, InstalledEntry, decode_table_entry
from repro.bmv2.packet import Packet, parse_packet, deparse_packet
from repro.bmv2.simulator import Behavior, Bmv2Simulator

__all__ = [
    "Behavior",
    "Bmv2Simulator",
    "DecodedAction",
    "DecodedActionSet",
    "DecodedMatch",
    "InstalledEntry",
    "Packet",
    "decode_table_entry",
    "deparse_packet",
    "parse_packet",
]
