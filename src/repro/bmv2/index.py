"""Per-table lookup indices for the model interpreter.

The interpreter's original match loop scans every installed entry per
table application — fine for the paper's 798/1314-entry workloads, hopeless
at production scale (a million-route LPM table makes every packet a
million-entry scan).  A :class:`TableIndex` holds the same entries in
shape-aware buckets so one lookup touches O(key bits) of state:

* exact-only tables — a hash map keyed by the tuple of key values;
* LPM tables — per exact-key group, a prefix map keyed by (mask, masked
  value), one probe per distinct installed prefix length (<= key bits);
* ternary/optional (priority) tables — tuple-space buckets keyed by the
  signature of present clauses and their masks, one probe per distinct
  installed mask shape.

Verdict identity is structural, not hoped-for: the buckets are *sound
over-approximations* (an entry the linear scan would match is always in
the probed buckets — absent clauses are wildcards, and any entry whose
shape does not fit its table's scheme goes to a residual list that is
always scanned), and every candidate is re-verified with the interpreter's
own match predicate before selection.  Candidates come back sorted by
installation order, so priority ties, LPM tie-breaks, and first-candidate
selection behave bit-identically to the linear scan — including under the
seeded simulator faults, whose predicates only ever *shrink* the match set.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.bmv2.entries import InstalledEntry
from repro.p4 import ast
from repro.p4.ast import Table

# A candidate: (installation order, entry).  Order numbers need only be
# monotonic in installation order — the match loop compares them, never
# uses them as positions.
Candidate = Tuple[int, InstalledEntry]


class TableIndex:
    """An incrementally maintained lookup index over one table's entries."""

    def __init__(self, table: Table) -> None:
        self.table = table
        self._paths: Dict[str, str] = {k.key_name: k.field.path for k in table.keys}
        self._exact_keys: Tuple[str, ...] = tuple(
            k.key_name for k in table.keys if k.kind is ast.MatchKind.EXACT
        )
        lpm_keys = [k.key_name for k in table.keys if k.kind is ast.MatchKind.LPM]
        self._lpm_key: Optional[str] = lpm_keys[0] if lpm_keys else None
        self._priority = table.requires_priority
        # Priority tables: signature (sorted (key, mask-or-None) of present
        # clauses) -> masked-value tuple -> candidates.
        self._tuple_space: Dict[Tuple, Dict[Tuple, List[Candidate]]] = {}
        # LPM tables: exact values -> mask -> masked value -> candidates,
        # plus per-group wildcard (absent LPM clause) candidates.
        self._lpm_groups: Dict[Tuple, Dict[int, Dict[int, List[Candidate]]]] = {}
        self._lpm_wild: Dict[Tuple, List[Candidate]] = {}
        # Exact-only tables: values tuple -> candidates.
        self._exact: Dict[Tuple, List[Candidate]] = {}
        # Entries whose shape does not fit the table's scheme (hand-built
        # states, mislabeled clauses): always scanned.
        self._residual: List[Candidate] = []
        self._size = 0

    @classmethod
    def build(cls, table: Table, entries: Sequence[InstalledEntry]) -> "TableIndex":
        index = cls(table)
        for order, entry in enumerate(entries):
            index.add(order, entry)
        return index

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def add(self, order: int, entry: InstalledEntry) -> None:
        self._bucket_for(entry).append((order, entry))
        self._size += 1

    def remove(self, entry: InstalledEntry) -> None:
        bucket = self._bucket_for(entry)
        identity = entry.identity()
        for i, (_order, existing) in enumerate(bucket):
            if existing is entry or existing.identity() == identity:
                del bucket[i]
                self._size -= 1
                return
        raise KeyError(f"entry not indexed in {self.table.name}: {identity!r}")

    def replace(self, old: InstalledEntry, order: int, new: InstalledEntry) -> None:
        """MODIFY: same identity (same bucket shape), new action/object."""
        self.remove(old)
        self.add(order, new)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def candidates(
        self,
        fields: Mapping[str, int],
        predicate: Callable[[InstalledEntry], bool],
    ) -> List[Candidate]:
        """All entries matching the packet, verified and in install order."""
        raw: List[Candidate] = []
        if self._priority:
            for signature, buckets in self._tuple_space.items():
                probe = tuple(
                    (fields.get(self._paths[name], 0) & mask)
                    if mask is not None
                    else fields.get(self._paths[name], 0)
                    for name, mask in signature
                )
                hit = buckets.get(probe)
                if hit:
                    raw.extend(hit)
        elif self._lpm_key is not None:
            exact_values = tuple(
                fields.get(self._paths[name], 0) for name in self._exact_keys
            )
            group = self._lpm_groups.get(exact_values)
            if group:
                value = fields.get(self._paths[self._lpm_key], 0)
                for mask, buckets in group.items():
                    hit = buckets.get(value & mask)
                    if hit:
                        raw.extend(hit)
            wild = self._lpm_wild.get(exact_values)
            if wild:
                raw.extend(wild)
        else:
            values = tuple(
                fields.get(self._paths[name], 0) for name in self._exact_keys
            )
            hit = self._exact.get(values)
            if hit:
                raw.extend(hit)
        if self._residual:
            raw.extend(self._residual)
        out = [item for item in raw if predicate(item[1])]
        out.sort(key=lambda item: item[0])
        return out

    # ------------------------------------------------------------------
    # Bucketing
    # ------------------------------------------------------------------
    def _bucket_for(self, entry: InstalledEntry) -> List[Candidate]:
        if self._priority:
            return self._tuple_space_bucket(entry)
        if self._lpm_key is not None:
            return self._lpm_bucket(entry)
        return self._exact_bucket(entry)

    def _tuple_space_bucket(self, entry: InstalledEntry) -> List[Candidate]:
        clauses: List[Tuple[str, Optional[int], int]] = []
        for key in self.table.keys:
            m = entry.match(key.key_name)
            if m is None or not m.present:
                continue  # wildcard: not part of the signature
            if m.mask:
                clauses.append((key.key_name, m.mask, m.value & m.mask))
            else:
                clauses.append((key.key_name, None, m.value))
        clauses.sort(key=lambda c: c[0])
        signature = tuple((name, mask) for name, mask, _value in clauses)
        probe = tuple(value for _name, _mask, value in clauses)
        return self._tuple_space.setdefault(signature, {}).setdefault(probe, [])

    def _lpm_bucket(self, entry: InstalledEntry) -> List[Candidate]:
        exact_values = []
        for name in self._exact_keys:
            m = entry.match(name)
            if m is None or not m.present:
                return self._residual
            exact_values.append(m.value)
        group_key = tuple(exact_values)
        m = entry.match(self._lpm_key)
        if m is None or not m.present:
            return self._lpm_wild.setdefault(group_key, [])
        # Bucket by the entry's own mask (one bucket per installed prefix
        # length); the packet probe recomputes value & mask per bucket.
        return (
            self._lpm_groups.setdefault(group_key, {})
            .setdefault(m.mask, {})
            .setdefault(m.value & m.mask, [])
        )

    def _exact_bucket(self, entry: InstalledEntry) -> List[Candidate]:
        values = []
        for name in self._exact_keys:
            m = entry.match(name)
            if m is None or not m.present:
                return self._residual
            values.append(m.value)
        # Keys of other kinds on a no-priority table (unusual): any present
        # clause beyond the exact tuple still narrows the match, which the
        # verify predicate handles; the bucket only needs to be sound.
        return self._exact.setdefault(tuple(values), [])
