"""repro.analysis — static lints for P4 models (the spec's own spec check).

SwitchV treats the P4 model as the switch's formal specification; this
package checks the specification itself, in milliseconds at load time,
before a malformed model can crash — or silently skew — a fuzzing or
symbolic-execution campaign hours in.

* :mod:`repro.analysis.structural` — pure AST walks: dangling references,
  undefined fields, width mismatches, duplicate/colliding ids, key-shape
  problems, malformed restrictions, name/field drift.
* :mod:`repro.analysis.semantic` — SMT-backed proofs on the havoc
  abstraction: unsatisfiable restrictions, dead branches/tables, tables no
  packet can hit, actions no entry can fire, reads of unparsed headers.
* :mod:`repro.analysis.contract` — cross-program role-contract alignment:
  same-named tables/actions across role instantiations must agree on key
  shapes, signatures, @refers_to edges, and entry restrictions.
* :mod:`repro.analysis.witness` — minimal concrete evidence (bit-minimized
  packets/entries, minimal unsat cores) attached to findings.
* :mod:`repro.analysis.diagnostics` — the structured findings all layers
  emit, and the report container.

``analyze_program`` / ``analyze_contract`` are the façades everything
(harness gate, CLI, tests, benchmarks) goes through; ``python -m
repro.analysis`` lints the shipped programs or ``.p4`` files.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Tuple

from repro.p4.ast import P4Program
from repro.analysis.contract import CONTRACT_PASS_NAMES, analyze_contract
from repro.analysis.diagnostics import AnalysisReport, Diagnostic, Severity
from repro.analysis.semantic import (
    SEMANTIC_PASS_NAMES,
    analysis_pool,
    reset_analysis_pool,
    run_semantic_passes,
)
from repro.analysis.structural import (
    STRUCTURAL_PASS_NAMES,
    STRUCTURAL_PASSES,
    run_structural_passes,
)


def list_passes() -> List[Tuple[str, str]]:
    """Every selectable pass as (name, layer) — the ``--list-passes`` view."""
    return (
        [(name, "structural") for name in STRUCTURAL_PASS_NAMES]
        + [(name, "semantic") for name in SEMANTIC_PASS_NAMES]
        + [(name, "contract") for name in CONTRACT_PASS_NAMES]
    )


def _resolve_selection(
    only: Optional[Sequence[str]], skip: Optional[Sequence[str]]
) -> List[str]:
    """The single-program pass names to run, honoring --only/--skip."""
    known = tuple(STRUCTURAL_PASS_NAMES) + tuple(SEMANTIC_PASS_NAMES)
    for name in list(only or ()) + list(skip or ()):
        if name not in known and name not in CONTRACT_PASS_NAMES:
            raise ValueError(
                f"unknown pass {name!r}; see --list-passes for the registry"
            )
    selected = [n for n in known if n in only] if only else list(known)
    if skip:
        selected = [n for n in selected if n not in skip]
    return selected


def analyze_program(
    program: P4Program,
    semantic: bool = True,
    witnesses: bool = False,
    only: Optional[Sequence[str]] = None,
    skip: Optional[Sequence[str]] = None,
) -> AnalysisReport:
    """Run the lint passes over ``program``.

    Structural passes always gate the semantic layer: even when
    deselected from the *report*, they re-run silently before any SMT
    encoding — encoding a program with dangling fields or unparseable
    restrictions would crash or, worse, prove properties about a different
    program than the one shipped.  ``witnesses=True`` attaches minimal
    concrete evidence to semantic findings.  Diagnostics are sorted
    deterministically regardless of pass execution order.
    """
    selected = _resolve_selection(only, skip)
    structural_selected = [n for n in STRUCTURAL_PASS_NAMES if n in selected]
    semantic_selected = [n for n in SEMANTIC_PASS_NAMES if n in selected]

    report = AnalysisReport(program_name=program.name)
    start = time.perf_counter()
    report.extend(run_structural_passes(program, structural_selected))
    report.structural_seconds = time.perf_counter() - start
    if semantic and semantic_selected:
        gate_clean = (
            not report.has_errors
            if len(structural_selected) == len(STRUCTURAL_PASS_NAMES)
            else not any(d.is_error for d in run_structural_passes(program))
        )
        if gate_clean:
            start = time.perf_counter()
            diagnostics, summary = run_semantic_passes(
                program, semantic_selected, witnesses=witnesses
            )
            report.extend(diagnostics)
            report.summary.update(summary)
            report.semantic_seconds = time.perf_counter() - start
            report.semantic_ran = True
    report.sort()
    return report


__all__ = [
    "AnalysisReport",
    "CONTRACT_PASS_NAMES",
    "Diagnostic",
    "SEMANTIC_PASS_NAMES",
    "STRUCTURAL_PASSES",
    "STRUCTURAL_PASS_NAMES",
    "Severity",
    "analysis_pool",
    "analyze_contract",
    "analyze_program",
    "list_passes",
    "reset_analysis_pool",
    "run_semantic_passes",
    "run_structural_passes",
]
