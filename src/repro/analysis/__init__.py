"""repro.analysis — static lints for P4 models (the spec's own spec check).

SwitchV treats the P4 model as the switch's formal specification; this
package checks the specification itself, in milliseconds at load time,
before a malformed model can crash — or silently skew — a fuzzing or
symbolic-execution campaign hours in.

* :mod:`repro.analysis.structural` — pure AST walks: dangling references,
  undefined fields, width mismatches, duplicate/colliding ids, key-shape
  problems, malformed restrictions, name/field drift.
* :mod:`repro.analysis.semantic` — SMT-backed proofs on the havoc
  abstraction: unsatisfiable restrictions, dead branches/tables, tables no
  packet can hit, reads of unparsed headers.
* :mod:`repro.analysis.diagnostics` — the structured findings both layers
  emit, and the report container.

``analyze_program`` is the façade everything (harness gate, CLI, tests,
benchmarks) goes through; ``python -m repro.analysis`` lints the shipped
programs or ``.p4`` files.
"""

from __future__ import annotations

import time

from repro.p4.ast import P4Program
from repro.analysis.diagnostics import AnalysisReport, Diagnostic, Severity
from repro.analysis.semantic import run_semantic_passes
from repro.analysis.structural import STRUCTURAL_PASSES, run_structural_passes


def analyze_program(program: P4Program, semantic: bool = True) -> AnalysisReport:
    """Run every lint pass over ``program``.

    Structural passes always run.  Semantic passes run only when requested
    *and* the structural layer found no errors — encoding a program with
    dangling fields or unparseable restrictions would crash or, worse,
    prove properties about a different program than the one shipped.
    """
    report = AnalysisReport(program_name=program.name)
    start = time.perf_counter()
    report.extend(run_structural_passes(program))
    report.structural_seconds = time.perf_counter() - start
    if semantic and not report.has_errors:
        start = time.perf_counter()
        report.extend(run_semantic_passes(program))
        report.semantic_seconds = time.perf_counter() - start
        report.semantic_ran = True
    return report


__all__ = [
    "AnalysisReport",
    "Diagnostic",
    "STRUCTURAL_PASSES",
    "Severity",
    "analyze_program",
    "run_semantic_passes",
    "run_structural_passes",
]
