"""Cross-program role-contract analysis.

§3: one SAI-shaped P4 model is *instantiated per switch role* (ToR, WAN,
Cerberus) from a common component library, while the controller code
driving all of them is shared.  The controller's view of a table is its
p4info entry — match-field names/kinds/widths and their positional ids,
action signatures, ``@refers_to`` edges, ``@entry_restriction`` — so any
same-named object whose p4info quietly diverges between roles is an API
drift bug: controller code tested against one role corrupts another.
P4R-Type (PAPERS.md) makes the same point from the type-system side.

This pass suite aligns two or more role programs through their p4info
catalogues (the wire contract, not the implementation):

* **key-align** — same-named tables must agree on match-field names,
  kinds, and widths.  Roles legitimately instantiate different ACL key
  *combinations* (§3 "Role Specific Instantiations"), so tables with
  different key counts are compared only on the keys they share, by name;
  tables with the same key count are also held to positional agreement
  (p4info match-field ids are positions, so a reorder silently remaps
  every controller write).
* **action-align** — same-named actions must agree on parameter names,
  widths, and positions.  Action *sets* per table are not compared: a
  role adding an action (Cerberus's tunnel route) widens its API without
  breaking shared controller code.
* **ref-align** — ``@refers_to`` edges on shared keys/params must agree,
  but only when every referenced table exists in both roles (the toy
  program legitimately drops the edge along with the table).
* **restriction-compat** — for shared tables with *identical* key
  shapes, the entry restrictions must accept the same entries.  Checked
  by SMT in both directions: a SAT ``wellformed ∧ r_A ∧ ¬r_B`` means
  some concrete entry is accepted by role A and rejected by role B — and
  that minimized entry **is** the witness attached to the finding.

Every contract finding is an ERROR: the model pair cannot both be the
specification the shared controller assumes.
"""

from __future__ import annotations

import hashlib
import time
from itertools import combinations
from typing import Dict, List, Optional, Sequence, Tuple

from repro.p4.ast import P4Program
from repro.p4.constraints.lang import (
    ConstraintSyntaxError,
    normalize_constraint_text,
    parse_constraint,
)
from repro.p4.constraints.symbolic import SymbolicKeySet, encode_constraint
from repro.p4.p4info import ActionInfo, P4Info, TableInfo, build_p4info
from repro.smt import Result
from repro.smt import terms as T
from repro.analysis.diagnostics import (
    AnalysisReport,
    CONTRACT_ACTION_DRIFT,
    CONTRACT_ID_DRIFT,
    CONTRACT_KEY_DRIFT,
    CONTRACT_REF_DRIFT,
    CONTRACT_RESTRICTION_DRIFT,
    Diagnostic,
    Severity,
)
from repro.analysis.semantic import analysis_pool
from repro.analysis.witness import (
    KIND_ENTRY,
    Witness,
    input_variables,
    packet_witness,
)

# Names the CLI uses to select contract passes (--only/--skip).
CONTRACT_PASS_NAMES = (
    "key-align",
    "action-align",
    "ref-align",
    "restriction-compat",
)


def _loc(role_a: str, role_b: str, detail: str) -> str:
    return f"{role_a}<->{role_b}: {detail}"


def _width_drift_witness(
    var_name: str, width_a: int, width_b: int, role_a: str, role_b: str
) -> Witness:
    """The smallest concrete value representable under the wider role but
    out of range for the narrower one — a replayable demonstration that
    the two signatures accept different value sets."""
    narrow, wide = sorted((width_a, width_b))
    value = 1 << narrow
    term = T.bv_var(var_name, wide).uge(T.bv_const(value, wide))
    wide_role = role_a if width_a > width_b else role_b
    narrow_role = role_b if width_a > width_b else role_a
    return Witness(
        kind=KIND_ENTRY,
        values=((var_name, value),),
        note=f"valid for {wide_role} ({wide} bits) but unrepresentable "
        f"for {narrow_role} ({narrow} bits)",
        term=term,
    )


# ----------------------------------------------------------------------
# key-align / action-align: positional and per-name signature agreement
# ----------------------------------------------------------------------


def _align_table_keys(
    role_a: str, role_b: str, ta: TableInfo, tb: TableInfo
) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    by_name_a = {m.name: m for m in ta.match_fields}
    by_name_b = {m.name: m for m in tb.match_fields}
    names_a = [m.name for m in ta.match_fields]
    names_b = [m.name for m in tb.match_fields]
    if len(names_a) == len(names_b) and names_a != names_b:
        if sorted(names_a) == sorted(names_b):
            moved = sorted(
                n for n in by_name_a if by_name_a[n].id != by_name_b[n].id
            )
            out.append(
                Diagnostic(
                    code=CONTRACT_ID_DRIFT,
                    severity=Severity.ERROR,
                    location=_loc(role_a, role_b, f"table {ta.name}"),
                    message=f"same match fields at different p4info ids: "
                    f"{', '.join(moved)}; positional controller writes "
                    "target different fields per role",
                    fix_hint="declare the keys in the same order in both "
                    "instantiations",
                    table_name=ta.name,
                )
            )
        else:
            out.extend(
                Diagnostic(
                    code=CONTRACT_KEY_DRIFT,
                    severity=Severity.ERROR,
                    location=_loc(role_a, role_b, f"table {ta.name}, key {na}"),
                    message=f"match field {position} is named "
                    f"{na!r} in {role_a} but {nb!r} in {role_b}",
                    fix_hint="rename one side (or both) so the "
                    "shared controller code sees one field name",
                    table_name=ta.name,
                )
                for position, (na, nb) in enumerate(
                    zip(names_a, names_b, strict=True), start=1
                )
                if na != nb and (na not in by_name_b or nb not in by_name_a)
            )
    for name in sorted(set(by_name_a) & set(by_name_b)):
        ma, mb = by_name_a[name], by_name_b[name]
        if ma.match_type is not mb.match_type:
            out.append(
                Diagnostic(
                    code=CONTRACT_KEY_DRIFT,
                    severity=Severity.ERROR,
                    location=_loc(role_a, role_b, f"table {ta.name}, key {name}"),
                    message=f"match kind is {ma.match_type.value} in "
                    f"{role_a} but {mb.match_type.value} in {role_b}",
                    fix_hint="a shared flow-programming path cannot encode "
                    "both kinds; align the match kinds",
                    table_name=ta.name,
                )
            )
        if ma.bitwidth != mb.bitwidth:
            out.append(
                Diagnostic(
                    code=CONTRACT_KEY_DRIFT,
                    severity=Severity.ERROR,
                    location=_loc(role_a, role_b, f"table {ta.name}, key {name}"),
                    message=f"match field width is {ma.bitwidth} bits in "
                    f"{role_a} but {mb.bitwidth} bits in {role_b}",
                    fix_hint="align the widths; out-of-range values are "
                    "rejected by one role and installed by the other",
                    table_name=ta.name,
                    witness=_width_drift_witness(
                        f"{ta.name}.{name}::value",
                        ma.bitwidth,
                        mb.bitwidth,
                        role_a,
                        role_b,
                    ),
                )
            )
    return out


def _align_actions(
    role_a: str, role_b: str, aa: ActionInfo, ab: ActionInfo
) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    location = _loc(role_a, role_b, f"action {aa.name}")
    by_name_a = {p.name: p for p in aa.params}
    by_name_b = {p.name: p for p in ab.params}
    names_a = [p.name for p in aa.params]
    names_b = [p.name for p in ab.params]
    if len(names_a) != len(names_b):
        out.append(
            Diagnostic(
                code=CONTRACT_ACTION_DRIFT,
                severity=Severity.ERROR,
                location=location,
                message=f"takes {len(names_a)} parameter(s) in {role_a} "
                f"but {len(names_b)} in {role_b}",
                fix_hint="shared controller code builds one parameter "
                "list; align the signatures",
            )
        )
    elif names_a != names_b:
        if sorted(names_a) == sorted(names_b):
            moved = sorted(
                n for n in by_name_a if by_name_a[n].id != by_name_b[n].id
            )
            out.append(
                Diagnostic(
                    code=CONTRACT_ID_DRIFT,
                    severity=Severity.ERROR,
                    location=location,
                    message=f"same parameters at different p4info ids: "
                    f"{', '.join(moved)}; positional writes swap arguments "
                    "between roles",
                    fix_hint="declare the parameters in the same order in "
                    "both instantiations",
                )
            )
        else:
            out.extend(
                Diagnostic(
                    code=CONTRACT_ACTION_DRIFT,
                    severity=Severity.ERROR,
                    location=location,
                    message=f"parameter {position} is named {na!r} "
                    f"in {role_a} but {nb!r} in {role_b}",
                    fix_hint="rename one side so the shared "
                    "controller code sees one parameter name",
                )
                for position, (na, nb) in enumerate(
                    zip(names_a, names_b, strict=True), start=1
                )
                if na != nb and (na not in by_name_b or nb not in by_name_a)
            )
    for name in sorted(set(by_name_a) & set(by_name_b)):
        pa, pb = by_name_a[name], by_name_b[name]
        if pa.bitwidth != pb.bitwidth:
            out.append(
                Diagnostic(
                    code=CONTRACT_ACTION_DRIFT,
                    severity=Severity.ERROR,
                    location=_loc(
                        role_a, role_b, f"action {aa.name}, param {name}"
                    ),
                    message=f"parameter width is {pa.bitwidth} bits in "
                    f"{role_a} but {pb.bitwidth} bits in {role_b}",
                    fix_hint="align the widths; one role rejects values "
                    "the other installs",
                    witness=_width_drift_witness(
                        f"{aa.name}.{name}::value",
                        pa.bitwidth,
                        pb.bitwidth,
                        role_a,
                        role_b,
                    ),
                )
            )
    return out


# ----------------------------------------------------------------------
# ref-align: @refers_to edge agreement
# ----------------------------------------------------------------------


def _align_refs(
    role_a: str,
    role_b: str,
    info_a: P4Info,
    info_b: P4Info,
    owner_kind: str,
    owner: str,
    member: str,
    refs_a: Tuple[Tuple[str, str], ...],
    refs_b: Tuple[Tuple[str, str], ...],
) -> Optional[Diagnostic]:
    if set(refs_a) == set(refs_b):
        return None
    # A role that drops a table legitimately drops the edges into it (the
    # toy program has no nexthop_tbl, so its set_nexthop_id carries no
    # @refers_to) — only diverging edges between *shared* targets drift.
    mentioned = {table for table, _key in refs_a} | {t for t, _k in refs_b}
    for target in mentioned:
        if info_a.table_by_name(target) is None or info_b.table_by_name(target) is None:
            return None

    def show(refs: Tuple[Tuple[str, str], ...]) -> str:
        if not refs:
            return "no reference"
        return ", ".join(f"@refers_to({t}, {k})" for t, k in sorted(refs))

    return Diagnostic(
        code=CONTRACT_REF_DRIFT,
        severity=Severity.ERROR,
        location=_loc(role_a, role_b, f"{owner_kind} {owner}, {member}"),
        message=f"{show(refs_a)} in {role_a} but {show(refs_b)} in "
        f"{role_b}; one role's controller skips a dependency check the "
        "other relies on",
        fix_hint="annotate both instantiations with the same "
        "@refers_to edges",
        table_name=owner if owner_kind == "table" else "",
    )


# ----------------------------------------------------------------------
# restriction-compat: SMT equivalence of entry restrictions
# ----------------------------------------------------------------------


def _shape_digest(table: TableInfo) -> str:
    raw = repr(
        (
            table.name,
            tuple(
                (m.name, m.match_type.value, m.bitwidth)
                for m in table.match_fields
            ),
        )
    )
    return hashlib.sha256(raw.encode()).hexdigest()[:16]


def _encode_restriction(
    table: TableInfo, text: Optional[str], keys: SymbolicKeySet
) -> Optional[T.Term]:
    if not text:
        return T.TRUE
    try:
        return encode_constraint(parse_constraint(text), keys)
    except (ConstraintSyntaxError, KeyError):
        return None  # malformed: the structural passes own that report


def _check_restriction_compat(
    role_a: str,
    role_b: str,
    ta: TableInfo,
    tb: TableInfo,
    witnesses: bool,
) -> List[Diagnostic]:
    """Both directions of ``wellformed ∧ r_one ∧ ¬r_other``; each SAT
    direction yields a finding whose witness is the minimized accepted/
    rejected entry itself."""
    shape_a = {(m.name, m.match_type, m.bitwidth) for m in ta.match_fields}
    shape_b = {(m.name, m.match_type, m.bitwidth) for m in tb.match_fields}
    if shape_a != shape_b:
        return []  # different key shapes: no common entry space to compare
    if normalize_constraint_text(ta.entry_restriction or "") == (
        normalize_constraint_text(tb.entry_restriction or "")
    ):
        return []
    keys = SymbolicKeySet(ta)
    ra = _encode_restriction(ta, ta.entry_restriction, keys)
    rb = _encode_restriction(tb, tb.entry_restriction, keys)
    if ra is None or rb is None:
        return []
    solver = analysis_pool().solver(("contract", _shape_digest(ta)))
    out: List[Diagnostic] = []
    directions = (
        (role_a, role_b, ra, rb),
        (role_b, role_a, rb, ra),
    )
    for accepts, rejects, r_acc, r_rej in directions:
        formula = T.and_(keys.wellformedness(), r_acc, T.not_(r_rej))
        if solver.check(formula) is not Result.SAT:
            continue
        witness = None
        if witnesses:
            witness = packet_witness(
                solver,
                [formula],
                input_variables(formula),
                note=f"this entry is accepted by {accepts} and rejected "
                f"by {rejects}",
                kind=KIND_ENTRY,
            )
        out.append(
            Diagnostic(
                code=CONTRACT_RESTRICTION_DRIFT,
                severity=Severity.ERROR,
                location=_loc(
                    accepts, rejects, f"table {ta.name}, @entry_restriction"
                ),
                message=f"some well-formed entry satisfies {accepts}'s "
                f"restriction but violates {rejects}'s; shared controller "
                "code cannot install one flow on both roles",
                fix_hint="align the restrictions (or rename the table if "
                "the semantics genuinely differ per role)",
                table_name=ta.name,
                witness=witness,
            )
        )
    return out


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------


def analyze_contract(
    programs: Sequence[P4Program],
    witnesses: bool = True,
    selected: Optional[Sequence[str]] = None,
) -> AnalysisReport:
    """Pairwise contract comparison of two or more role programs.

    Returns an :class:`AnalysisReport` (same container as the
    single-program analyzer, so rendering, gating, and the incident
    pipeline work unchanged) named after the compared roles, with
    diagnostics sorted deterministically.
    """
    if len(programs) < 2:
        raise ValueError("contract analysis needs at least two programs")
    passes = set(CONTRACT_PASS_NAMES if selected is None else selected)
    start = time.perf_counter()
    roles = [p.name for p in programs]
    infos = [build_p4info(p) for p in programs]
    report = AnalysisReport(program_name=f"contract({', '.join(roles)})")
    tables_aligned = actions_aligned = compat_checks = 0

    for (role_a, info_a), (role_b, info_b) in combinations(
        zip(roles, infos, strict=True), 2
    ):
        shared_tables = sorted(
            {t.name for t in info_a.tables.values()}
            & {t.name for t in info_b.tables.values()}
        )
        for name in shared_tables:
            ta = info_a.table_by_name(name)
            tb = info_b.table_by_name(name)
            tables_aligned += 1
            if "key-align" in passes:
                report.extend(_align_table_keys(role_a, role_b, ta, tb))
            if "ref-align" in passes:
                shared_keys = {m.name for m in ta.match_fields} & {
                    m.name for m in tb.match_fields
                }
                for key in sorted(shared_keys):
                    ref_a = info_a.references.get((name, key))
                    ref_b = info_b.references.get((name, key))
                    drift = _align_refs(
                        role_a,
                        role_b,
                        info_a,
                        info_b,
                        "table",
                        name,
                        f"key {key}",
                        (ref_a,) if ref_a else (),
                        (ref_b,) if ref_b else (),
                    )
                    if drift:
                        report.diagnostics.append(drift)
            if "restriction-compat" in passes:
                compat_checks += 1
                report.extend(
                    _check_restriction_compat(role_a, role_b, ta, tb, witnesses)
                )
        if passes & {"action-align", "ref-align"}:
            shared_actions = sorted(
                {a.name for a in info_a.actions.values()}
                & {a.name for a in info_b.actions.values()}
            )
            for name in shared_actions:
                aa = info_a.action_by_name(name)
                ab = info_b.action_by_name(name)
                actions_aligned += 1
                if "action-align" in passes:
                    report.extend(_align_actions(role_a, role_b, aa, ab))
                if "ref-align" in passes:
                    shared_params = {p.name for p in aa.params} & {
                        p.name for p in ab.params
                    }
                    by_name_a = {p.name: p for p in aa.params}
                    by_name_b = {p.name: p for p in ab.params}
                    for param in sorted(shared_params):
                        drift = _align_refs(
                            role_a,
                            role_b,
                            info_a,
                            info_b,
                            "action",
                            name,
                            f"param {param}",
                            by_name_a[param].refers_to,
                            by_name_b[param].refers_to,
                        )
                        if drift:
                            report.diagnostics.append(drift)

    report.summary = {
        "pairs": len(roles) * (len(roles) - 1) // 2,
        "tables_aligned": tables_aligned,
        "actions_aligned": actions_aligned,
        "restriction_checks": compat_checks,
    }
    report.semantic_ran = True
    report.semantic_seconds = time.perf_counter() - start
    report.sort()
    return report
