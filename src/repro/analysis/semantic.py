"""Semantic lint passes: SMT-backed proofs over the model, no entries needed.

Where the symbolic executor (:mod:`repro.symbolic.executor`) answers "what
does the program do to *this* table state", these passes answer "can the
program ever do X under *any* table state" — so instead of encoding
installed entries, table applications **havoc** every field their actions
could write (a fresh unconstrained variable, conditionally merged).  A
property proven UNSAT under havoc is UNSAT under every concrete table
state, which is what makes these passes safe to gate campaigns on: an
``unreachable-branch`` or ``table-never-hits`` finding cannot be an
artifact of the abstraction.

Two walker modes share one implementation:

* **havoc-entry** — metadata and standard fields start as fresh variables
  (any preceding pipeline could have produced them).  Used for the
  dead-code passes: a branch/table unreachable even with arbitrary
  metadata is genuinely dead.
* **zero-entry** — metadata starts at zero, exactly like the concrete
  interpreter with no entries installed.  Used for the invalid-header-read
  pass: a SAT read witness is then a real packet through the real empty
  pipeline, never an artifact of havocked classification metadata.

Header validity is concrete per parser profile (§5's "semi-hardcoded"
parser patterns), so ``IsValid`` folds to TRUE/FALSE and reads of header
fields are checked against the profile that leaves the header unparsed.

Solving is pooled: every pass queries long-lived per-(program digest,
profile, mode) solvers from a module-level
:class:`repro.smt.pool.SolverPool` through assumption-based
``Solver.check(*assumptions)`` — nothing query-specific is ever asserted
permanently, so semantic, reachability, contract, and witness queries all
share bit-blasting caches and learned clauses.  Verdicts and witnesses
are pure functions of the formulas (never of pool warmth), so a warm
pool only changes wall time.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.p4.ast import (
    BinOp,
    BoolOp,
    Cmp,
    Const,
    FieldRef,
    HashExpr,
    If,
    IsValid,
    MatchKind,
    P4Program,
    Param,
    Seq,
    Statement,
    Table,
    TableApply,
)
from repro.p4.constraints.lang import (
    CAnd,
    ConstraintSyntaxError,
    parse_constraint,
)
from repro.p4.constraints.symbolic import SymbolicKeySet, encode_constraint
from repro.p4.p4info import P4Info, build_p4info
from repro.smt import Result, Solver
from repro.smt import terms as T
from repro.smt.compile import compile_term
from repro.smt.pool import SolverPool
from repro.symbolic.profiles import ParserProfile, profiles_for_pattern
from repro.analysis.diagnostics import (
    ACTION_NEVER_FIRES,
    Diagnostic,
    INVALID_HEADER_READ,
    PARSER_PATTERN,
    RESTRICTION_UNSAT,
    Severity,
    TABLE_NEVER_HITS,
    UNREACHABLE_BRANCH,
    UNREACHABLE_TABLE,
    branch_location,
    table_location,
)
from repro.analysis.witness import (
    input_variables,
    packet_witness,
    unsat_core_witness,
)

# The names CLI/CI use to select semantic passes (--only/--skip).
SEMANTIC_PASS_NAMES = (
    "restriction-sat",
    "dead-branches",
    "dead-tables",
    "table-hits",
    "action-reach",
    "invalid-reads",
)

# ----------------------------------------------------------------------
# The analysis solver pool
# ----------------------------------------------------------------------

# One process-wide pool shared by the semantic, reachability, and contract
# passes.  Keys embed a structural program digest, so two different
# programs (even with the same name, e.g. test programs all called
# "synthetic") can never poison each other's solvers; only the
# profile-exclusion constraints are asserted permanently, every
# query-specific term flows through ``check(*assumptions)``.
_POOL = SolverPool()


def analysis_pool() -> SolverPool:
    """The module-level pool (exposed for stats and benchmarks)."""
    return _POOL


def reset_analysis_pool() -> None:
    """Drop every pooled solver (tests and cold-start benchmarks)."""
    _POOL.clear()


def _program_digest(program: P4Program) -> str:
    """A structural digest keying pooled solvers.

    Covers everything that determines the walker's variable namespace and
    widths: the name, the parser pattern, every field path and width, and
    the full control structure (dataclass reprs are deterministic and
    address-free).  Programs with equal digests produce identical
    constraint encodings, so sharing a solver between them is sound.
    """
    paths = tuple(
        sorted((p, program.field_width(p)) for p in program.all_field_paths())
    )
    raw = repr(
        (
            program.name,
            program.parser.pattern,
            paths,
            repr(program.ingress),
            repr(program.egress),
        )
    )
    return hashlib.sha256(raw.encode()).hexdigest()[:16]


@dataclass
class _ProfileRun:
    """Everything one walk of one profile learned."""

    profile: ParserProfile
    constraints: List[T.Term]
    # (label, taken) -> condition under which that direction executes.
    branch_reach: Dict[Tuple[str, bool], T.Term] = field(default_factory=dict)
    # table name -> condition under which the table is applied.
    table_reach: Dict[str, T.Term] = field(default_factory=dict)
    # table name -> [(ctx, key field path -> term at apply time)]
    key_states: Dict[str, List[Tuple[T.Term, Dict[str, T.Term]]]] = field(
        default_factory=dict
    )
    # (location, field path) -> condition under which a field of an
    # unparsed header is read (If conditions and exact/LPM keys only).
    header_reads: Dict[Tuple[str, str], T.Term] = field(default_factory=dict)


class _Walker:
    """One symbolic walk of the pipeline for one profile and entry mode."""

    def __init__(
        self, program: P4Program, profile: ParserProfile, havoc_entry: bool
    ) -> None:
        self.program = program
        self.profile = profile
        self.run = _ProfileRun(profile=profile, constraints=[])
        self._fresh_counter = 0
        self._state: Dict[str, T.Term] = {}

        pins = profile.pin_map()
        prefix = profile.name
        for path in program.all_field_paths():
            width = program.field_width(path)
            header = path.split(".", 1)[0]
            if header in profile.valid_headers:
                self._state[path] = (
                    T.bv_const(pins[path], width)
                    if path in pins
                    else T.bv_var(f"{prefix}::{path}", width)
                )
            elif path == "standard.ingress_port":
                self._state[path] = T.bv_var(f"{prefix}::{path}", width)
            elif header in ("meta", "standard") and havoc_entry:
                self._state[path] = T.bv_var(f"{prefix}::entry::{path}", width)
            else:
                # Unparsed headers (and, in zero-entry mode, metadata)
                # start at zero, matching the concrete interpreter.
                self._state[path] = T.bv_const(0, width)
        for path, excluded in profile.exclusions:
            term = self._state[path]
            self.run.constraints.extend(term.ne(value) for value in excluded)

    def walk(self) -> _ProfileRun:
        self._run_block(self.program.ingress, T.TRUE)
        not_dropped = self._state["standard.drop"].eq(T.bv_const(0, 1))
        self._run_block(self.program.egress, not_dropped)
        return self.run

    # ------------------------------------------------------------------
    # Control flow
    # ------------------------------------------------------------------
    def _fresh_var(self, name: str, width: int) -> T.Term:
        self._fresh_counter += 1
        return T.bv_var(f"{self.profile.name}::{name}#{self._fresh_counter}", width)

    def _fresh_bool(self, name: str) -> T.Term:
        self._fresh_counter += 1
        return T.bool_var(f"{self.profile.name}::{name}#{self._fresh_counter}")

    def _run_block(self, block: Seq, ctx: T.Term) -> None:
        for node in block:
            if isinstance(node, TableApply):
                self._apply_table(node.table, ctx)
            elif isinstance(node, If):
                label = node.label or repr(node.cond)
                cond = self._eval_bool(node.cond, ctx, T.TRUE, branch_location(label))
                then_ctx = T.and_(ctx, cond)
                else_ctx = T.and_(ctx, T.not_(cond))
                reach = self.run.branch_reach
                reach[(label, True)] = T.or_(
                    reach.get((label, True), T.FALSE), then_ctx
                )
                reach[(label, False)] = T.or_(
                    reach.get((label, False), T.FALSE), else_ctx
                )
                self._run_block(node.then_block, then_ctx)
                self._run_block(node.else_block, else_ctx)
            elif isinstance(node, Statement):
                value = self._eval_expr(
                    node.value, self.program.field_width(node.dest.path)
                )
                old = self._state[node.dest.path]
                self._state[node.dest.path] = T.ite(ctx, value, old)

    def _apply_table(self, table: Table, ctx: T.Term) -> None:
        reach = self.run.table_reach
        reach[table.name] = T.or_(reach.get(table.name, T.FALSE), ctx)
        self.run.key_states.setdefault(table.name, []).append(
            (ctx, {k.field.path: self._state[k.field.path] for k in table.keys})
        )
        # Reads through exact/LPM keys are unconditional header reads; a
        # ternary/optional key can be wildcarded, so the model never *has*
        # to look at the field.
        for key in table.keys:
            if key.kind in (MatchKind.EXACT, MatchKind.LPM):
                self._record_read(
                    key.field.path,
                    ctx,
                    table_location(table.name, f"key {key.key_name}"),
                )
        # Havoc: any of the table's actions may fire (for some entry set)
        # and write any value to the fields it assigns.
        assigned: Set[str] = set()
        for ref in table.actions:
            for stmt in ref.action.body:
                assigned.add(stmt.dest.path)
        for stmt in table.default_action.body:
            assigned.add(stmt.dest.path)
        for path in sorted(assigned):
            width = self.program.field_width(path)
            fired = self._fresh_bool(f"havoc:{table.name}:{path}")
            value = self._fresh_var(f"havoc:{table.name}:{path}", width)
            self._state[path] = T.ite(
                T.and_(ctx, fired), value, self._state[path]
            )

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _record_read(self, path: str, reach: T.Term, location: str) -> None:
        header = path.split(".", 1)[0]
        if header in ("meta", "standard") or header in self.profile.valid_headers:
            return
        reads = self.run.header_reads
        key = (location, path)
        reads[key] = T.or_(reads.get(key, T.FALSE), reach)

    def _record_expr_reads(self, expr, reach: T.Term, location: str) -> None:
        if isinstance(expr, FieldRef):
            self._record_read(expr.path, reach, location)
        elif isinstance(expr, BinOp):
            self._record_expr_reads(expr.left, reach, location)
            self._record_expr_reads(expr.right, reach, location)
        # HashExpr inputs are free (§5): hashing an unparsed field is not a
        # read the model depends on.

    def _eval_expr(self, expr, width_hint: int) -> T.Term:
        if isinstance(expr, Const):
            return T.bv_const(expr.value, expr.width if expr.width else width_hint)
        if isinstance(expr, FieldRef):
            return self._state[expr.path]
        if isinstance(expr, BinOp):
            left = self._eval_expr(expr.left, width_hint)
            right = self._eval_expr(expr.right, left.width)
            if left.width != right.width:
                if right.width < left.width:
                    right = T.zext(right, left.width - right.width)
                else:
                    left = T.zext(left, right.width - left.width)
            ops = {
                "+": lambda a, b: a + b,
                "-": lambda a, b: a - b,
                "&": lambda a, b: a & b,
                "|": lambda a, b: a | b,
                "^": lambda a, b: a ^ b,
            }
            return ops[expr.op](left, right)
        if isinstance(expr, (HashExpr, Param)):
            # Hash outputs are free; a raw Param outside an action body has
            # no binding — both havoc to a fresh variable.
            width = expr.width if isinstance(expr, HashExpr) else width_hint
            return self._fresh_var("free", width or width_hint or 1)
        raise TypeError(f"unknown expression {expr!r}")

    def _eval_bool(self, cond, ctx: T.Term, guard: T.Term, location: str) -> T.Term:
        """Evaluate a condition, threading the short-circuit ``guard``:
        inside ``a && b``, ``b``'s field reads only happen when ``a`` held
        (this is what keeps ``IsValid(h) && h.f == v`` read-safe)."""
        if isinstance(cond, IsValid):
            return T.TRUE if cond.header in self.profile.valid_headers else T.FALSE
        if isinstance(cond, Cmp):
            read_reach = T.and_(ctx, guard)
            self._record_expr_reads(cond.left, read_reach, location)
            self._record_expr_reads(cond.right, read_reach, location)
            left = self._eval_expr(cond.left, 0)
            right = self._eval_expr(cond.right, left.width)
            if left.width != right.width:
                if right.width < left.width:
                    right = T.zext(right, left.width - right.width)
                else:
                    left = T.zext(left, right.width - left.width)
            if cond.op == "==":
                return left.eq(right)
            if cond.op == "!=":
                return left.ne(right)
            if cond.op == "<":
                return left.ult(right)
            if cond.op == "<=":
                return left.ule(right)
            if cond.op == ">":
                return right.ult(left)
            return right.ule(left)
        if isinstance(cond, BoolOp):
            if cond.op == "not":
                return T.not_(self._eval_bool(cond.args[0], ctx, guard, location))
            terms: List[T.Term] = []
            running = guard
            for arg in cond.args:
                term = self._eval_bool(arg, ctx, running, location)
                terms.append(term)
                running = T.and_(
                    running, term if cond.op == "and" else T.not_(term)
                )
            return T.and_(*terms) if cond.op == "and" else T.or_(*terms)
        raise TypeError(f"unknown condition {cond!r}")


def _walk_all(
    program: P4Program, profiles: List[ParserProfile], havoc_entry: bool
) -> List[_ProfileRun]:
    return [_Walker(program, p, havoc_entry).walk() for p in profiles]


def _profile_solver(run: _ProfileRun, digest: str, mode: str) -> Solver:
    """The pooled solver for one (program, profile, mode).

    Only the profile's exclusion constraints are asserted permanently —
    they are state-independent and identical (hash-consed) across repeated
    analyses of the same program, so a warm pool asserts nothing and every
    reach query reuses the existing encoding and learned clauses.
    """
    return _POOL.solver(("analysis", digest, mode, run.profile.name), run.constraints)


def _witness_solver(digest: str) -> Solver:
    """The pooled assumption-only solver for witness/restriction queries."""
    return _POOL.solver(("analysis", digest, "witness"))


class _ReachChecker:
    """SAT oracle for reach queries under one profile run's constraints.

    Most reach conditions in a real pipeline are satisfiable, and the
    packets that witness them overlap heavily (reach terms share guard
    structure).  So before paying for a SAT check, compile the full
    formula ``and(run.constraints, *terms)`` to bytecode and evaluate it
    under cheap concrete candidates: witnesses recovered from earlier SAT
    answers in this run, then all-zeros, then all-ones.  Any candidate
    that evaluates true *is* a model — the answer is SAT with no solver
    work.  Only queries every candidate misses (including every UNSAT
    one) reach the solver, so verdicts are unchanged.

    The witness cache is LRU: a hit moves the witness to the front, so
    hot witnesses that keep answering reach queries are the last evicted
    (eviction pops the least recently *useful* witness off the tail).
    """

    _MAX_WITNESSES = 8

    def __init__(self, run: _ProfileRun, solver: Solver) -> None:
        self.run = run
        self.solver = solver
        self._witnesses: List[Dict[str, int]] = []
        self.cache_hits = 0

    def sat(self, *terms: T.Term) -> bool:
        if any(t is T.FALSE for t in terms):
            return False
        compiled = compile_term(T.and_(*self.run.constraints, *terms))
        for index, witness in enumerate(self._witnesses):
            if compiled.evaluate(witness):
                self.cache_hits += 1
                if index:
                    self._witnesses.insert(0, self._witnesses.pop(index))
                return True
        if compiled.evaluate({}):  # all-zeros
            return True
        if compiled.evaluate(compiled.var_masks):  # all-ones
            return True
        if self.solver.check(*terms) is not Result.SAT:
            return False
        witness = dict(self.solver.model(compiled.variables))
        self._witnesses.insert(0, witness)
        if len(self._witnesses) > self._MAX_WITNESSES:
            self._witnesses.pop()
        return True


# ----------------------------------------------------------------------
# Restriction encoding helpers (shared with the witness construction)
# ----------------------------------------------------------------------


def _restriction_terms(
    table: Table, info: P4Info
) -> Optional[Tuple[SymbolicKeySet, Optional[T.Term], List[Tuple[str, T.Term]]]]:
    """(key set, encoded restriction or None, top-level conjuncts).

    Returns ``None`` when the table is not in the catalogue or its
    restriction fails to parse/encode (reported structurally)."""
    table_info = info.table_by_name(table.name)
    if table_info is None:  # pragma: no cover - programmable implies listed
        return None
    keys = SymbolicKeySet(table_info)
    if not table.entry_restriction:
        return keys, None, []
    try:
        expr = parse_constraint(table.entry_restriction)
    except ConstraintSyntaxError:
        return None
    parts = expr.args if isinstance(expr, CAnd) else (expr,)
    try:
        conjuncts = [(repr(p), encode_constraint(p, keys)) for p in parts]
        constraint = encode_constraint(expr, keys)
    except KeyError:
        return None  # unknown key, reported structurally
    return keys, constraint, conjuncts


def _restriction_core_witness(table: Table, info: P4Info, solver: Solver, note: str):
    """Minimal unsat core of a table's restriction conjuncts, given
    well-formedness — the evidence payload for restriction-unsat and for
    findings caused by it (blocked references)."""
    encoded = _restriction_terms(table, info)
    if encoded is None:
        return None
    keys, _constraint, conjuncts = encoded
    return unsat_core_witness(solver, [keys.wellformedness()], conjuncts, note=note)


# ----------------------------------------------------------------------
# Pass: unsatisfiable entry restrictions
# ----------------------------------------------------------------------


def check_restriction_sat(
    program: P4Program,
    info: P4Info,
    digest: str,
    witnesses: bool = False,
) -> Tuple[List[Diagnostic], Set[str]]:
    """Tables whose @entry_restriction admits no well-formed entry at all.

    Such a table can never hold an entry — the fuzzer's constraint-aware
    generator would spin forever looking for a compliant one.  Returns the
    diagnostics plus the set of offending table names so downstream passes
    do not also assert the contradiction.
    """
    out: List[Diagnostic] = []
    unsat: Set[str] = set()
    for table in program.programmable_tables():
        if not table.entry_restriction:
            continue
        encoded = _restriction_terms(table, info)
        if encoded is None:
            continue
        keys, constraint, conjuncts = encoded
        solver = _witness_solver(digest)
        if solver.check(keys.wellformedness(), constraint) is Result.UNSAT:
            unsat.add(table.name)
            witness = None
            if witnesses:
                witness = unsat_core_witness(
                    solver,
                    [keys.wellformedness()],
                    conjuncts,
                    note="these conjuncts are jointly unsatisfiable for "
                    "well-formed entries",
                )
            out.append(
                Diagnostic(
                    code=RESTRICTION_UNSAT,
                    severity=Severity.ERROR,
                    location=table_location(table.name, "@entry_restriction"),
                    message="no well-formed entry satisfies the restriction; "
                    "the table can never hold an entry",
                    fix_hint="the restriction contradicts itself or the "
                    "match kinds; relax it",
                    table_name=table.name,
                    witness=witness,
                )
            )
    return out, unsat


# ----------------------------------------------------------------------
# Passes: dead control flow (havoc-entry runs)
# ----------------------------------------------------------------------


def check_dead_branches(
    runs: List[_ProfileRun], checkers: List[_ReachChecker]
) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    labels: Dict[Tuple[str, bool], None] = {}
    for run in runs:
        for key in run.branch_reach:
            labels.setdefault(key, None)
    for label, taken in labels:
        reachable = any(
            checker.sat(run.branch_reach.get((label, taken), T.FALSE))
            for run, checker in zip(runs, checkers, strict=True)
        )
        if not reachable:
            direction = "then" if taken else "else"
            out.append(
                Diagnostic(
                    code=UNREACHABLE_BRANCH,
                    severity=Severity.WARNING,
                    location=branch_location(label),
                    message=f"the {direction} direction is unreachable in "
                    "every parser profile, for every table state",
                    fix_hint="the condition is decided by the parser/guards; "
                    "delete the dead arm or fix the condition",
                )
            )
    return out


def check_dead_tables(
    runs: List[_ProfileRun], checkers: List[_ReachChecker]
) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    names: Dict[str, None] = {}
    for run in runs:
        for name in run.table_reach:
            names.setdefault(name, None)
    for name in names:
        reachable = any(
            checker.sat(run.table_reach.get(name, T.FALSE))
            for run, checker in zip(runs, checkers, strict=True)
        )
        if not reachable:
            out.append(
                Diagnostic(
                    code=UNREACHABLE_TABLE,
                    severity=Severity.WARNING,
                    location=table_location(name),
                    message="no packet reaches this table in any parser "
                    "profile, for any table state",
                    fix_hint="its guards are contradictory; entries "
                    "installed here are dead weight",
                    table_name=name,
                )
            )
    return out


def check_table_hits(
    program: P4Program,
    info: P4Info,
    digest: str,
    runs: List[_ProfileRun],
    checkers: List[_ReachChecker],
    skip: Set[str],
    witnesses: bool = False,
) -> Tuple[List[Diagnostic], Set[str]]:
    """Tables where no reachable packet can match any well-formed,
    restriction-compliant entry.  Returns (diagnostics, never-hit names)
    so the action-reachability pass can suppress per-action findings the
    table-level verdict already covers."""
    out: List[Diagnostic] = []
    never: Set[str] = set()
    for table in program.programmable_tables():
        if table.name in skip or not table.keys:
            continue
        encoded = _restriction_terms(table, info)
        if encoded is None:
            continue
        keys, constraint, conjuncts = encoded
        side = [keys.wellformedness()]
        if constraint is not None:
            side.append(constraint)
        hittable = False
        reach_arms: List[T.Term] = []
        for run, checker in zip(runs, checkers, strict=True):
            arms = []
            for ctx, state in run.key_states.get(table.name, ()):
                conj = [ctx]
                for key in table.keys:
                    value = state[key.field.path]
                    mask = keys.mask_vars[key.key_name]
                    conj.append(
                        (value & mask).eq(keys.value_vars[key.key_name])
                    )
                arms.append(T.and_(*conj))
            if arms:
                reach_arms.append(
                    T.and_(*run.constraints, T.or_(*arms))
                    if run.constraints
                    else T.or_(*arms)
                )
            if arms and checker.sat(T.or_(*arms), *side):
                hittable = True
                break
        if not hittable:
            never.add(table.name)
            witness = None
            if witnesses:
                # Which restriction conjuncts (if any) are to blame, given
                # that some reachable packet must also match the entry?
                fixed = [keys.wellformedness()]
                if reach_arms:
                    fixed.append(T.or_(*reach_arms))
                witness = unsat_core_witness(
                    _witness_solver(digest),
                    fixed,
                    conjuncts,
                    note=(
                        "minimal restriction subset excluding every "
                        "reachable packet"
                        if conjuncts
                        else "no reachable packet matches any well-formed "
                        "entry, restriction aside"
                    ),
                )
            out.append(
                Diagnostic(
                    code=TABLE_NEVER_HITS,
                    severity=Severity.WARNING,
                    location=table_location(table.name),
                    message="no reachable packet matches any well-formed "
                    "entry; only the default action can ever fire",
                    fix_hint="the keys/restriction exclude every packet "
                    "the guards let through",
                    table_name=table.name,
                    witness=witness,
                )
            )
    return out, never


# ----------------------------------------------------------------------
# Pass: action-level reachability (havoc-entry runs)
# ----------------------------------------------------------------------


def check_action_reach(
    program: P4Program,
    info: P4Info,
    digest: str,
    unsat_restrictions: Set[str],
    never_hits: Set[str],
    witnesses: bool,
    summary: Dict[str, int],
) -> List[Diagnostic]:
    """Per (table, action): can some packet + installed entry execute it?

    In this IR any entry may name any non-``@defaultonly`` action, so a
    hittable table fires an action iff an entry *naming that action* is
    installable — and installability is transitive through ``@refers_to``:
    an entry whose action parameter references table X needs a live entry
    in X first, so an action pointing (directly or through a chain) at a
    table that can never hold an entry (unsat restriction) can never
    fire, while its sibling actions on the same table still can.  That
    per-action refinement is exactly what the table/branch granularity of
    the other passes cannot see.

    Tables already flagged (never-hit, unsat restriction) are suppressed:
    the table-level finding covers every action at once.
    """
    out: List[Diagnostic] = []
    tables = {t.name: t for t in program.programmable_tables()}
    blocked = dict.fromkeys(unsat_restrictions, None)  # name -> root cause
    memo: Dict[str, Optional[str]] = {}

    def blocking_table(name: str, stack: Tuple[str, ...] = ()) -> Optional[str]:
        """The table that stops entries from being installed in ``name``
        (possibly itself), or None when installable.  The reference graph
        is acyclic here (cycles are structural errors that stop the
        semantic stage); the stack guard is belt and braces."""
        if name in memo:
            return memo[name]
        if name in stack:
            return name
        table = tables.get(name)
        result: Optional[str] = None
        if table is None or not table.keys:
            result = name  # dangling or keyless: cannot hold entries
        elif name in unsat_restrictions:
            result = name
        else:
            for key in table.keys:
                if key.refers_to is not None:
                    result = blocking_table(key.refers_to[0], stack + (name,))
                    if result is not None:
                        break
        memo[name] = result
        return result

    total = reachable = 0
    for table in program.programmable_tables():
        if not table.keys:
            continue
        suppressed = table.name in never_hits or table.name in blocked
        for ref in table.actions:
            if ref.default_only:
                continue
            total += 1
            if suppressed:
                continue  # the table-level finding covers every action
            cause: Optional[str] = blocking_table(table.name)
            if cause is None:
                for param in ref.action.params:
                    for target_table, _key in param.references():
                        cause = blocking_table(target_table)
                        if cause is not None:
                            break
                    if cause is not None:
                        break
            if cause is None:
                reachable += 1
                continue
            witness = None
            if witnesses and cause in tables:
                witness = _restriction_core_witness(
                    tables[cause],
                    info,
                    _witness_solver(digest),
                    note=f"entries naming this action need a live entry in "
                    f"table {cause}, whose restriction admits none",
                )
            out.append(
                Diagnostic(
                    code=ACTION_NEVER_FIRES,
                    severity=Severity.WARNING,
                    location=table_location(table.name, f"action {ref.action.name}"),
                    message=f"no installable entry can name this action: its "
                    f"@refers_to chain requires an entry in table {cause}, "
                    "which can never hold one",
                    fix_hint="fix the referenced table's restriction or drop "
                    "the reference",
                    table_name=table.name,
                    witness=witness,
                )
            )
    summary["actions_total"] = summary.get("actions_total", 0) + total
    summary["actions_reachable"] = summary.get("actions_reachable", 0) + reachable
    return out


# ----------------------------------------------------------------------
# Pass: reads of unparsed header fields (zero-entry runs)
# ----------------------------------------------------------------------


def check_invalid_reads(
    runs: List[_ProfileRun],
    checkers: List[_ReachChecker],
    witnesses: bool = False,
) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    flagged: Set[Tuple[str, str]] = set()
    for run, checker in zip(runs, checkers, strict=True):
        for (location, path), reach in run.header_reads.items():
            if (location, path) in flagged:
                continue
            if checker.sat(reach):
                flagged.add((location, path))
                header = path.split(".", 1)[0]
                witness = None
                if witnesses:
                    formula = T.and_(*run.constraints, reach)
                    witness = packet_witness(
                        checker.solver,
                        [formula],
                        input_variables(formula),
                        note=f"profile {run.profile.name}: this packet "
                        f"reaches the read with {header} unparsed",
                    )
                out.append(
                    Diagnostic(
                        code=INVALID_HEADER_READ,
                        severity=Severity.ERROR,
                        location=location,
                        message=f"reads {path} on a path where {header} "
                        f"is not parsed (e.g. profile {run.profile.name}); "
                        "the model sees zero, the switch sees garbage",
                        fix_hint=f"guard the read with isValid({header}) "
                        "or a ternary key",
                        witness=witness,
                    )
                )
    return out


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------


def run_semantic_passes(
    program: P4Program,
    selected: Optional[Sequence[str]] = None,
    witnesses: bool = False,
) -> Tuple[List[Diagnostic], Dict[str, int]]:
    """The SMT-backed passes named by ``selected`` (default: all).

    Assumes the structural passes found no errors (callers gate on that):
    fields resolve, restrictions parse.  Returns the findings plus the
    pass-level counters (reach-cache hits, action totals) merged into the
    report summary."""
    summary: Dict[str, int] = {}
    try:
        profiles = profiles_for_pattern(program.parser.pattern)
    except ValueError:
        return [
            Diagnostic(
                code=PARSER_PATTERN,
                severity=Severity.ERROR,
                location="parser",
                message=f"unknown parser pattern "
                f"{program.parser.pattern!r}; no profiles to analyze",
                fix_hint="use a registered pattern (ethernet_ipv4_ipv6)",
            )
        ], summary

    passes = set(SEMANTIC_PASS_NAMES if selected is None else selected)
    digest = _program_digest(program)
    info = build_p4info(program)
    out: List[Diagnostic] = []
    checkers: List[_ReachChecker] = []

    # restriction-sat's unsat set feeds table-hits and action-reach even
    # when the pass itself is deselected (its verdict, not its findings).
    unsat_restrictions: Set[str] = set()
    if passes & {"restriction-sat", "table-hits", "action-reach"}:
        diags, unsat_restrictions = check_restriction_sat(
            program, info, digest, witnesses=witnesses
        )
        if "restriction-sat" in passes:
            out.extend(diags)

    never_hits: Set[str] = set()
    if passes & {"dead-branches", "dead-tables", "table-hits", "action-reach"}:
        havoc_runs = _walk_all(program, profiles, havoc_entry=True)
        havoc_checkers = [
            _ReachChecker(r, _profile_solver(r, digest, "havoc")) for r in havoc_runs
        ]
        checkers.extend(havoc_checkers)
        if "dead-branches" in passes:
            out.extend(check_dead_branches(havoc_runs, havoc_checkers))
        if "dead-tables" in passes:
            out.extend(check_dead_tables(havoc_runs, havoc_checkers))
        if passes & {"table-hits", "action-reach"}:
            hit_diags, never_hits = check_table_hits(
                program,
                info,
                digest,
                havoc_runs,
                havoc_checkers,
                unsat_restrictions,
                witnesses=witnesses,
            )
            if "table-hits" in passes:
                out.extend(hit_diags)
        if "action-reach" in passes:
            out.extend(
                check_action_reach(
                    program,
                    info,
                    digest,
                    unsat_restrictions,
                    never_hits,
                    witnesses,
                    summary,
                )
            )

    if "invalid-reads" in passes:
        zero_runs = _walk_all(program, profiles, havoc_entry=False)
        zero_checkers = [
            _ReachChecker(r, _profile_solver(r, digest, "zero")) for r in zero_runs
        ]
        checkers.extend(zero_checkers)
        out.extend(check_invalid_reads(zero_runs, zero_checkers, witnesses=witnesses))

    summary["reach_cache_hits"] = sum(c.cache_hits for c in checkers)
    return out, summary
