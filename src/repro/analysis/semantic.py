"""Semantic lint passes: SMT-backed proofs over the model, no entries needed.

Where the symbolic executor (:mod:`repro.symbolic.executor`) answers "what
does the program do to *this* table state", these passes answer "can the
program ever do X under *any* table state" — so instead of encoding
installed entries, table applications **havoc** every field their actions
could write (a fresh unconstrained variable, conditionally merged).  A
property proven UNSAT under havoc is UNSAT under every concrete table
state, which is what makes these passes safe to gate campaigns on: an
``unreachable-branch`` or ``table-never-hits`` finding cannot be an
artifact of the abstraction.

Two walker modes share one implementation:

* **havoc-entry** — metadata and standard fields start as fresh variables
  (any preceding pipeline could have produced them).  Used for the
  dead-code passes: a branch/table unreachable even with arbitrary
  metadata is genuinely dead.
* **zero-entry** — metadata starts at zero, exactly like the concrete
  interpreter with no entries installed.  Used for the invalid-header-read
  pass: a SAT read witness is then a real packet through the real empty
  pipeline, never an artifact of havocked classification metadata.

Header validity is concrete per parser profile (§5's "semi-hardcoded"
parser patterns), so ``IsValid`` folds to TRUE/FALSE and reads of header
fields are checked against the profile that leaves the header unparsed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.p4.ast import (
    BinOp,
    BoolOp,
    Cmp,
    Const,
    FieldRef,
    HashExpr,
    If,
    IsValid,
    MatchKind,
    P4Program,
    Param,
    Seq,
    Statement,
    Table,
    TableApply,
)
from repro.p4.constraints.lang import ConstraintSyntaxError, parse_constraint
from repro.p4.constraints.symbolic import SymbolicKeySet, encode_constraint
from repro.p4.p4info import build_p4info
from repro.smt import Result, Solver
from repro.smt import terms as T
from repro.smt.compile import compile_term
from repro.symbolic.profiles import ParserProfile, profiles_for_pattern
from repro.analysis.diagnostics import (
    Diagnostic,
    INVALID_HEADER_READ,
    PARSER_PATTERN,
    RESTRICTION_UNSAT,
    Severity,
    TABLE_NEVER_HITS,
    UNREACHABLE_BRANCH,
    UNREACHABLE_TABLE,
    branch_location,
    table_location,
)


@dataclass
class _ProfileRun:
    """Everything one walk of one profile learned."""

    profile: ParserProfile
    constraints: List[T.Term]
    # (label, taken) -> condition under which that direction executes.
    branch_reach: Dict[Tuple[str, bool], T.Term] = field(default_factory=dict)
    # table name -> condition under which the table is applied.
    table_reach: Dict[str, T.Term] = field(default_factory=dict)
    # table name -> [(ctx, key field path -> term at apply time)]
    key_states: Dict[str, List[Tuple[T.Term, Dict[str, T.Term]]]] = field(
        default_factory=dict
    )
    # (location, field path) -> condition under which a field of an
    # unparsed header is read (If conditions and exact/LPM keys only).
    header_reads: Dict[Tuple[str, str], T.Term] = field(default_factory=dict)


class _Walker:
    """One symbolic walk of the pipeline for one profile and entry mode."""

    def __init__(
        self, program: P4Program, profile: ParserProfile, havoc_entry: bool
    ) -> None:
        self.program = program
        self.profile = profile
        self.run = _ProfileRun(profile=profile, constraints=[])
        self._fresh_counter = 0
        self._state: Dict[str, T.Term] = {}

        pins = profile.pin_map()
        prefix = profile.name
        for path in program.all_field_paths():
            width = program.field_width(path)
            header = path.split(".", 1)[0]
            if header in profile.valid_headers:
                if path in pins:
                    self._state[path] = T.bv_const(pins[path], width)
                else:
                    self._state[path] = T.bv_var(f"{prefix}::{path}", width)
            elif path == "standard.ingress_port":
                self._state[path] = T.bv_var(f"{prefix}::{path}", width)
            elif header in ("meta", "standard") and havoc_entry:
                self._state[path] = T.bv_var(f"{prefix}::entry::{path}", width)
            else:
                # Unparsed headers (and, in zero-entry mode, metadata)
                # start at zero, matching the concrete interpreter.
                self._state[path] = T.bv_const(0, width)
        for path, excluded in profile.exclusions:
            term = self._state[path]
            for value in excluded:
                self.run.constraints.append(term.ne(value))

    def walk(self) -> _ProfileRun:
        self._run_block(self.program.ingress, T.TRUE)
        not_dropped = self._state["standard.drop"].eq(T.bv_const(0, 1))
        self._run_block(self.program.egress, not_dropped)
        return self.run

    # ------------------------------------------------------------------
    # Control flow
    # ------------------------------------------------------------------
    def _fresh_var(self, name: str, width: int) -> T.Term:
        self._fresh_counter += 1
        return T.bv_var(f"{self.profile.name}::{name}#{self._fresh_counter}", width)

    def _fresh_bool(self, name: str) -> T.Term:
        self._fresh_counter += 1
        return T.bool_var(f"{self.profile.name}::{name}#{self._fresh_counter}")

    def _run_block(self, block: Seq, ctx: T.Term) -> None:
        for node in block:
            if isinstance(node, TableApply):
                self._apply_table(node.table, ctx)
            elif isinstance(node, If):
                label = node.label or repr(node.cond)
                cond = self._eval_bool(node.cond, ctx, T.TRUE, branch_location(label))
                then_ctx = T.and_(ctx, cond)
                else_ctx = T.and_(ctx, T.not_(cond))
                reach = self.run.branch_reach
                reach[(label, True)] = T.or_(
                    reach.get((label, True), T.FALSE), then_ctx
                )
                reach[(label, False)] = T.or_(
                    reach.get((label, False), T.FALSE), else_ctx
                )
                self._run_block(node.then_block, then_ctx)
                self._run_block(node.else_block, else_ctx)
            elif isinstance(node, Statement):
                value = self._eval_expr(
                    node.value, self.program.field_width(node.dest.path)
                )
                old = self._state[node.dest.path]
                self._state[node.dest.path] = T.ite(ctx, value, old)

    def _apply_table(self, table: Table, ctx: T.Term) -> None:
        reach = self.run.table_reach
        reach[table.name] = T.or_(reach.get(table.name, T.FALSE), ctx)
        self.run.key_states.setdefault(table.name, []).append(
            (ctx, {k.field.path: self._state[k.field.path] for k in table.keys})
        )
        # Reads through exact/LPM keys are unconditional header reads; a
        # ternary/optional key can be wildcarded, so the model never *has*
        # to look at the field.
        for key in table.keys:
            if key.kind in (MatchKind.EXACT, MatchKind.LPM):
                self._record_read(
                    key.field.path,
                    ctx,
                    table_location(table.name, f"key {key.key_name}"),
                )
        # Havoc: any of the table's actions may fire (for some entry set)
        # and write any value to the fields it assigns.
        assigned: Set[str] = set()
        for ref in table.actions:
            for stmt in ref.action.body:
                assigned.add(stmt.dest.path)
        for stmt in table.default_action.body:
            assigned.add(stmt.dest.path)
        for path in sorted(assigned):
            width = self.program.field_width(path)
            fired = self._fresh_bool(f"havoc:{table.name}:{path}")
            value = self._fresh_var(f"havoc:{table.name}:{path}", width)
            self._state[path] = T.ite(
                T.and_(ctx, fired), value, self._state[path]
            )

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _record_read(self, path: str, reach: T.Term, location: str) -> None:
        header = path.split(".", 1)[0]
        if header in ("meta", "standard") or header in self.profile.valid_headers:
            return
        reads = self.run.header_reads
        key = (location, path)
        reads[key] = T.or_(reads.get(key, T.FALSE), reach)

    def _record_expr_reads(self, expr, reach: T.Term, location: str) -> None:
        if isinstance(expr, FieldRef):
            self._record_read(expr.path, reach, location)
        elif isinstance(expr, BinOp):
            self._record_expr_reads(expr.left, reach, location)
            self._record_expr_reads(expr.right, reach, location)
        # HashExpr inputs are free (§5): hashing an unparsed field is not a
        # read the model depends on.

    def _eval_expr(self, expr, width_hint: int) -> T.Term:
        if isinstance(expr, Const):
            return T.bv_const(expr.value, expr.width if expr.width else width_hint)
        if isinstance(expr, FieldRef):
            return self._state[expr.path]
        if isinstance(expr, BinOp):
            left = self._eval_expr(expr.left, width_hint)
            right = self._eval_expr(expr.right, left.width)
            if left.width != right.width:
                if right.width < left.width:
                    right = T.zext(right, left.width - right.width)
                else:
                    left = T.zext(left, right.width - left.width)
            ops = {
                "+": lambda a, b: a + b,
                "-": lambda a, b: a - b,
                "&": lambda a, b: a & b,
                "|": lambda a, b: a | b,
                "^": lambda a, b: a ^ b,
            }
            return ops[expr.op](left, right)
        if isinstance(expr, (HashExpr, Param)):
            # Hash outputs are free; a raw Param outside an action body has
            # no binding — both havoc to a fresh variable.
            width = expr.width if isinstance(expr, HashExpr) else width_hint
            return self._fresh_var("free", width or width_hint or 1)
        raise TypeError(f"unknown expression {expr!r}")

    def _eval_bool(self, cond, ctx: T.Term, guard: T.Term, location: str) -> T.Term:
        """Evaluate a condition, threading the short-circuit ``guard``:
        inside ``a && b``, ``b``'s field reads only happen when ``a`` held
        (this is what keeps ``IsValid(h) && h.f == v`` read-safe)."""
        if isinstance(cond, IsValid):
            return T.TRUE if cond.header in self.profile.valid_headers else T.FALSE
        if isinstance(cond, Cmp):
            read_reach = T.and_(ctx, guard)
            self._record_expr_reads(cond.left, read_reach, location)
            self._record_expr_reads(cond.right, read_reach, location)
            left = self._eval_expr(cond.left, 0)
            right = self._eval_expr(cond.right, left.width)
            if left.width != right.width:
                if right.width < left.width:
                    right = T.zext(right, left.width - right.width)
                else:
                    left = T.zext(left, right.width - left.width)
            if cond.op == "==":
                return left.eq(right)
            if cond.op == "!=":
                return left.ne(right)
            if cond.op == "<":
                return left.ult(right)
            if cond.op == "<=":
                return left.ule(right)
            if cond.op == ">":
                return right.ult(left)
            return right.ule(left)
        if isinstance(cond, BoolOp):
            if cond.op == "not":
                return T.not_(self._eval_bool(cond.args[0], ctx, guard, location))
            terms: List[T.Term] = []
            running = guard
            for arg in cond.args:
                term = self._eval_bool(arg, ctx, running, location)
                terms.append(term)
                if cond.op == "and":
                    running = T.and_(running, term)
                else:
                    running = T.and_(running, T.not_(term))
            return T.and_(*terms) if cond.op == "and" else T.or_(*terms)
        raise TypeError(f"unknown condition {cond!r}")


def _walk_all(
    program: P4Program, profiles: List[ParserProfile], havoc_entry: bool
) -> List[_ProfileRun]:
    return [_Walker(program, p, havoc_entry).walk() for p in profiles]


def _profile_solver(run: _ProfileRun) -> Solver:
    solver = Solver()
    solver.add(*run.constraints)
    return solver


class _ReachChecker:
    """SAT oracle for reach queries under one profile run's constraints.

    Most reach conditions in a real pipeline are satisfiable, and the
    packets that witness them overlap heavily (reach terms share guard
    structure).  So before paying for a SAT check, compile the full
    formula ``and(run.constraints, *terms)`` to bytecode and evaluate it
    under cheap concrete candidates: witnesses recovered from earlier SAT
    answers in this run, then all-zeros, then all-ones.  Any candidate
    that evaluates true *is* a model — the answer is SAT with no solver
    work.  Only queries every candidate misses (including every UNSAT
    one) reach the solver, so verdicts are unchanged.
    """

    _MAX_WITNESSES = 8

    def __init__(self, run: _ProfileRun, solver: Solver) -> None:
        self.run = run
        self.solver = solver
        self._witnesses: List[Dict[str, int]] = []

    def sat(self, *terms: T.Term) -> bool:
        if any(t is T.FALSE for t in terms):
            return False
        compiled = compile_term(T.and_(*self.run.constraints, *terms))
        for witness in self._witnesses:
            if compiled.evaluate(witness):
                return True
        if compiled.evaluate({}):  # all-zeros
            return True
        if compiled.evaluate(compiled.var_masks):  # all-ones
            return True
        if self.solver.check(*terms) is not Result.SAT:
            return False
        witness = dict(self.solver.model(compiled.variables))
        self._witnesses.append(witness)
        if len(self._witnesses) > self._MAX_WITNESSES:
            self._witnesses.pop(0)
        return True


# ----------------------------------------------------------------------
# Pass: unsatisfiable entry restrictions
# ----------------------------------------------------------------------


def check_restriction_sat(program: P4Program) -> Tuple[List[Diagnostic], Set[str]]:
    """Tables whose @entry_restriction admits no well-formed entry at all.

    Such a table can never hold an entry — the fuzzer's constraint-aware
    generator would spin forever looking for a compliant one.  Returns the
    diagnostics plus the set of offending table names so downstream passes
    do not also assert the contradiction.
    """
    out: List[Diagnostic] = []
    unsat: Set[str] = set()
    info = build_p4info(program)
    for table in program.programmable_tables():
        if not table.entry_restriction:
            continue
        try:
            expr = parse_constraint(table.entry_restriction)
        except ConstraintSyntaxError:
            continue  # reported by the structural restriction pass
        table_info = info.table_by_name(table.name)
        if table_info is None:  # pragma: no cover - programmable implies listed
            continue
        keys = SymbolicKeySet(table_info)
        try:
            constraint = encode_constraint(expr, keys)
        except KeyError:
            continue  # unknown key, reported structurally
        solver = Solver()
        solver.add(keys.wellformedness(), constraint)
        if solver.check() is Result.UNSAT:
            unsat.add(table.name)
            out.append(
                Diagnostic(
                    code=RESTRICTION_UNSAT,
                    severity=Severity.ERROR,
                    location=table_location(table.name, "@entry_restriction"),
                    message="no well-formed entry satisfies the restriction; "
                    "the table can never hold an entry",
                    fix_hint="the restriction contradicts itself or the "
                    "match kinds; relax it",
                    table_name=table.name,
                )
            )
    return out, unsat


# ----------------------------------------------------------------------
# Passes: dead control flow (havoc-entry runs)
# ----------------------------------------------------------------------


def check_dead_branches(
    runs: List[_ProfileRun], checkers: List[_ReachChecker]
) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    labels: Dict[Tuple[str, bool], None] = {}
    for run in runs:
        for key in run.branch_reach:
            labels.setdefault(key, None)
    for label, taken in labels:
        reachable = any(
            checker.sat(run.branch_reach.get((label, taken), T.FALSE))
            for run, checker in zip(runs, checkers, strict=True)
        )
        if not reachable:
            direction = "then" if taken else "else"
            out.append(
                Diagnostic(
                    code=UNREACHABLE_BRANCH,
                    severity=Severity.WARNING,
                    location=branch_location(label),
                    message=f"the {direction} direction is unreachable in "
                    "every parser profile, for every table state",
                    fix_hint="the condition is decided by the parser/guards; "
                    "delete the dead arm or fix the condition",
                )
            )
    return out


def check_dead_tables(
    runs: List[_ProfileRun], checkers: List[_ReachChecker]
) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    names: Dict[str, None] = {}
    for run in runs:
        for name in run.table_reach:
            names.setdefault(name, None)
    for name in names:
        reachable = any(
            checker.sat(run.table_reach.get(name, T.FALSE))
            for run, checker in zip(runs, checkers, strict=True)
        )
        if not reachable:
            out.append(
                Diagnostic(
                    code=UNREACHABLE_TABLE,
                    severity=Severity.WARNING,
                    location=table_location(name),
                    message="no packet reaches this table in any parser "
                    "profile, for any table state",
                    fix_hint="its guards are contradictory; entries "
                    "installed here are dead weight",
                    table_name=name,
                )
            )
    return out


def check_table_hits(
    program: P4Program,
    runs: List[_ProfileRun],
    checkers: List[_ReachChecker],
    skip: Set[str],
) -> List[Diagnostic]:
    """Tables where no reachable packet can match any well-formed,
    restriction-compliant entry."""
    out: List[Diagnostic] = []
    info = build_p4info(program)
    for table in program.programmable_tables():
        if table.name in skip or not table.keys:
            continue
        table_info = info.table_by_name(table.name)
        if table_info is None:  # pragma: no cover - programmable implies listed
            continue
        keys = SymbolicKeySet(table_info)
        side = [keys.wellformedness()]
        if table.entry_restriction:
            try:
                side.append(
                    encode_constraint(
                        parse_constraint(table.entry_restriction), keys
                    )
                )
            except (ConstraintSyntaxError, KeyError):
                pass  # reported structurally
        hittable = False
        for run, checker in zip(runs, checkers, strict=True):
            arms = []
            for ctx, state in run.key_states.get(table.name, ()):
                conjuncts = [ctx]
                for key in table.keys:
                    value = state[key.field.path]
                    mask = keys.mask_vars[key.key_name]
                    conjuncts.append(
                        (value & mask).eq(keys.value_vars[key.key_name])
                    )
                arms.append(T.and_(*conjuncts))
            if arms and checker.sat(T.or_(*arms), *side):
                hittable = True
                break
        if not hittable:
            out.append(
                Diagnostic(
                    code=TABLE_NEVER_HITS,
                    severity=Severity.WARNING,
                    location=table_location(table.name),
                    message="no reachable packet matches any well-formed "
                    "entry; only the default action can ever fire",
                    fix_hint="the keys/restriction exclude every packet "
                    "the guards let through",
                    table_name=table.name,
                )
            )
    return out


# ----------------------------------------------------------------------
# Pass: reads of unparsed header fields (zero-entry runs)
# ----------------------------------------------------------------------


def check_invalid_reads(
    runs: List[_ProfileRun], checkers: List[_ReachChecker]
) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    flagged: Set[Tuple[str, str]] = set()
    for run, checker in zip(runs, checkers, strict=True):
        for (location, path), reach in run.header_reads.items():
            if (location, path) in flagged:
                continue
            if checker.sat(reach):
                flagged.add((location, path))
                header = path.split(".", 1)[0]
                out.append(
                    Diagnostic(
                        code=INVALID_HEADER_READ,
                        severity=Severity.ERROR,
                        location=location,
                        message=f"reads {path} on a path where {header} "
                        f"is not parsed (e.g. profile {run.profile.name}); "
                        "the model sees zero, the switch sees garbage",
                        fix_hint=f"guard the read with isValid({header}) "
                        "or a ternary key",
                    )
                )
    return out


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------


def run_semantic_passes(program: P4Program) -> List[Diagnostic]:
    """All SMT-backed passes.  Assumes the structural passes found no
    errors (callers gate on that): fields resolve, restrictions parse."""
    try:
        profiles = profiles_for_pattern(program.parser.pattern)
    except ValueError:
        return [
            Diagnostic(
                code=PARSER_PATTERN,
                severity=Severity.ERROR,
                location="parser",
                message=f"unknown parser pattern "
                f"{program.parser.pattern!r}; no profiles to analyze",
                fix_hint="use a registered pattern (ethernet_ipv4_ipv6)",
            )
        ]
    out, unsat_restrictions = check_restriction_sat(program)

    havoc_runs = _walk_all(program, profiles, havoc_entry=True)
    havoc_checkers = [
        _ReachChecker(r, _profile_solver(r)) for r in havoc_runs
    ]
    out.extend(check_dead_branches(havoc_runs, havoc_checkers))
    out.extend(check_dead_tables(havoc_runs, havoc_checkers))
    out.extend(
        check_table_hits(program, havoc_runs, havoc_checkers, unsat_restrictions)
    )

    zero_runs = _walk_all(program, profiles, havoc_entry=False)
    zero_checkers = [
        _ReachChecker(r, _profile_solver(r)) for r in zero_runs
    ]
    out.extend(check_invalid_reads(zero_runs, zero_checkers))
    return out
