"""``python -m repro.analysis`` — lint P4 models from the command line.

Each argument is either the name of a shipped program (``toy``, ``tor``,
``wan``, ``cerberus``) or a path to a ``.p4`` source file in the project
dialect (e.g. ``p4src/sai_tor.p4``).  With no arguments, all shipped
programs are linted — that is what the CI ``lint-model`` job runs.

Exit status is non-zero when any linted program has a finding at or above
``--fail-on`` (default: error), so the command slots directly into CI and
pre-commit hooks.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List

from repro.p4.ast import P4Program
from repro.p4.parser import P4ParseError, parse_program
from repro.p4.programs import (
    build_cerberus_program,
    build_tor_program,
    build_toy_program,
    build_wan_program,
)
from repro.switchv.report import render_diagnostics
from repro.analysis import analyze_program

SHIPPED: Dict[str, Callable[[], P4Program]] = {
    "toy": build_toy_program,
    "tor": build_tor_program,
    "wan": build_wan_program,
    "cerberus": build_cerberus_program,
}


def _load(spec: str) -> P4Program:
    if spec in SHIPPED:
        return SHIPPED[spec]()
    with open(spec, "r", encoding="utf-8") as handle:
        return parse_program(handle.read())


def main(argv: List[str] = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="statically lint P4 models before they reach a campaign",
    )
    ap.add_argument(
        "specs",
        nargs="*",
        default=list(SHIPPED),
        help="shipped program names (toy/tor/wan/cerberus) or .p4 paths "
        "(default: all shipped programs)",
    )
    ap.add_argument(
        "--no-semantic",
        action="store_true",
        help="skip the SMT-backed passes (structural lints only)",
    )
    ap.add_argument(
        "--fail-on",
        choices=("error", "warning"),
        default="error",
        help="exit non-zero when a finding at or above this severity "
        "exists (default: error)",
    )
    args = ap.parse_args(argv)

    failed = False
    for spec in args.specs:
        try:
            program = _load(spec)
        except FileNotFoundError:
            print(f"error: {spec}: no such shipped program or file")
            return 2
        except P4ParseError as exc:
            print(f"error: {spec}: does not parse: {exc}")
            failed = True
            continue
        report = analyze_program(program, semantic=not args.no_semantic)
        print(render_diagnostics(report))
        print(
            f"  timing: structural {report.structural_seconds * 1e3:.1f}ms, "
            f"semantic {report.semantic_seconds * 1e3:.1f}ms"
        )
        if report.has_errors or (args.fail_on == "warning" and report.warnings):
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
