"""``python -m repro.analysis`` — lint P4 models from the command line.

Each argument is either the name of a shipped program (``toy``, ``tor``,
``wan``, ``cerberus``) or a path to a ``.p4`` source file in the project
dialect (e.g. ``p4src/sai_tor.p4``).  With no arguments, all shipped
programs are linted — that is what the CI ``lint-model`` job runs.

``--contract`` switches to cross-program mode: the named programs are
compared pairwise as role instantiations of one controller API
(``python -m repro.analysis --contract tor wan``).  ``--witnesses``
attaches minimal concrete evidence to findings, ``--format json`` emits
the machine-facing report CI archives, and ``--only``/``--skip``/
``--list-passes`` select individual passes by name.

Exit status is non-zero when any linted program has a finding at or above
``--fail-on`` (default: error), so the command slots directly into CI and
pre-commit hooks.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict, List, Optional

from repro.p4.ast import P4Program
from repro.p4.parser import P4ParseError, parse_program
from repro.p4.programs import (
    build_cerberus_program,
    build_tor_program,
    build_toy_program,
    build_wan_program,
)
from repro.switchv.report import diagnostics_to_json, render_diagnostics
from repro.analysis import analyze_contract, analyze_program, list_passes

SHIPPED: Dict[str, Callable[[], P4Program]] = {
    "toy": build_toy_program,
    "tor": build_tor_program,
    "wan": build_wan_program,
    "cerberus": build_cerberus_program,
}


def _load(spec: str) -> P4Program:
    if spec in SHIPPED:
        return SHIPPED[spec]()
    with open(spec, "r", encoding="utf-8") as handle:
        return parse_program(handle.read())


def _split_names(values: Optional[List[str]]) -> Optional[List[str]]:
    if not values:
        return None
    out: List[str] = []
    for value in values:
        out.extend(name for name in value.split(",") if name)
    return out


def main(argv: List[str] = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="statically lint P4 models before they reach a campaign",
    )
    ap.add_argument(
        "specs",
        nargs="*",
        default=list(SHIPPED),
        help="shipped program names (toy/tor/wan/cerberus) or .p4 paths "
        "(default: all shipped programs)",
    )
    ap.add_argument(
        "--contract",
        action="store_true",
        help="cross-program mode: compare the named programs pairwise as "
        "role instantiations of one controller API (needs >= 2 programs)",
    )
    ap.add_argument(
        "--witnesses",
        action="store_true",
        help="attach minimal concrete evidence (packets, entries, unsat "
        "cores) to semantic findings",
    )
    ap.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (json is what CI archives; deterministic)",
    )
    ap.add_argument(
        "--only",
        action="append",
        metavar="PASS[,PASS...]",
        help="run only these passes (repeatable or comma-separated)",
    )
    ap.add_argument(
        "--skip",
        action="append",
        metavar="PASS[,PASS...]",
        help="run all passes except these (repeatable or comma-separated)",
    )
    ap.add_argument(
        "--list-passes",
        action="store_true",
        help="list every selectable pass name and exit",
    )
    ap.add_argument(
        "--no-semantic",
        action="store_true",
        help="skip the SMT-backed passes (structural lints only)",
    )
    ap.add_argument(
        "--fail-on",
        choices=("error", "warning"),
        default="error",
        help="exit non-zero when a finding at or above this severity "
        "exists (default: error)",
    )
    args = ap.parse_args(argv)

    if args.list_passes:
        for name, layer in list_passes():
            print(f"{name:24s} [{layer}]")
        return 0

    only = _split_names(args.only)
    skip = _split_names(args.skip)

    programs: List[P4Program] = []
    for spec in args.specs:
        try:
            programs.append(_load(spec))
        except FileNotFoundError:
            print(f"error: {spec}: no such shipped program or file")
            return 2
        except P4ParseError as exc:
            print(f"error: {spec}: does not parse: {exc}")
            return 1

    reports = []
    if args.contract:
        if len(programs) < 2:
            print("error: --contract needs at least two programs")
            return 2
        from repro.analysis import CONTRACT_PASS_NAMES

        selected = [n for n in CONTRACT_PASS_NAMES if only is None or n in only]
        if skip:
            selected = [n for n in selected if n not in skip]
        reports.append(analyze_contract(programs, witnesses=True, selected=selected))
    else:
        for program in programs:
            try:
                reports.append(
                    analyze_program(
                        program,
                        semantic=not args.no_semantic,
                        witnesses=args.witnesses,
                        only=only,
                        skip=skip,
                    )
                )
            except ValueError as exc:  # unknown pass name
                print(f"error: {exc}")
                return 2

    failed = False
    for report in reports:
        if report.has_errors or (args.fail_on == "warning" and report.warnings):
            failed = True

    if args.format == "json":
        print(
            json.dumps(
                [diagnostics_to_json(r) for r in reports],
                indent=2,
                sort_keys=True,
            )
        )
    else:
        for report in reports:
            print(render_diagnostics(report))
            print(
                f"  timing: structural {report.structural_seconds * 1e3:.1f}ms, "
                f"semantic {report.semantic_seconds * 1e3:.1f}ms"
            )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
