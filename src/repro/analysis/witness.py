"""Minimal concrete witnesses for semantic and contract findings.

P4Testgen's lesson (PAPERS.md) is that a verdict without a replayable
artifact is a verdict nobody trusts.  Every SAT-flavoured finding here
ships the *smallest* concrete object that exhibits it, and every
UNSAT-flavoured finding ships the smallest subset of restriction
conjuncts that is already contradictory:

* ``packet`` — a field assignment that drives execution to the finding
  (e.g. a read of an unparsed header).  Bit-minimized: every variable is
  pinned, in sorted-name order, to the smallest value still consistent
  with the finding formula — the same greedy MSB-first prefer-zero
  descent as the canonical-witness machinery in
  :mod:`repro.symbolic.packets`, computed segment-wise by binary search.
  The result is the lexicographically minimal model of the formula, a
  pure function of the formula — never of solver history or pool warmth.
* ``entry`` — a concrete table entry (value/mask/prefix assignments per
  key), minimized the same way.  Contract restriction drift uses this:
  the entry is accepted by one role's ``@entry_restriction`` and
  rejected by the other's.
* ``unsat-core`` — a minimal subset of restriction conjuncts that is
  unsatisfiable together with the fixed side conditions (deletion-based
  reduction: every conjunct in the core is necessary).

``Witness.term`` carries the finding formula itself so tests (and users)
can replay: evaluating the compiled term under ``values`` must yield 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.smt import Result, Solver
from repro.smt import terms as T
from repro.smt.compile import compile_term

KIND_PACKET = "packet"
KIND_ENTRY = "entry"
KIND_UNSAT_CORE = "unsat-core"


def input_variables(term: T.Term) -> Dict[str, T.Term]:
    """Free variables of ``term`` as name -> variable term (hash-consing
    returns the identical objects the formula was built from)."""
    out: Dict[str, T.Term] = {}
    for name, sort in T.free_variables(term).items():
        out[name] = (
            T.bool_var(name)
            if isinstance(sort, T.BoolSort)
            else T.bv_var(name, sort.width)
        )
    return out


@dataclass(frozen=True)
class Witness:
    """Concrete evidence attached to a :class:`Diagnostic`.

    ``values`` is a sorted tuple of (variable name, value) pairs — the
    full minimized assignment for packet/entry kinds, empty for unsat
    cores.  ``conjuncts`` is the minimal core's conjunct texts (unsat
    cores only).  ``term`` is the finding formula for replay (``None``
    for unsat cores: there is nothing satisfiable to replay).
    """

    kind: str
    values: Tuple[Tuple[str, int], ...] = ()
    conjuncts: Tuple[str, ...] = ()
    note: str = ""
    term: Optional[T.Term] = None

    def assignment(self) -> Dict[str, int]:
        return dict(self.values)

    def replays(self) -> bool:
        """True when the stored assignment still satisfies the finding
        formula (vacuously true for unsat cores, which carry no model)."""
        if self.term is None:
            return self.kind == KIND_UNSAT_CORE
        return bool(compile_term(self.term).evaluate(self.assignment()))

    def render(self, indent: str = "      ") -> List[str]:
        """Human-facing lines, one per field/conjunct."""
        lines: List[str] = []
        if self.kind == KIND_UNSAT_CORE:
            label = "minimal unsat core" if self.conjuncts else "unsat core"
            lines.append(f"{indent}witness ({label}):")
            lines.extend(f"{indent}    {text}" for text in self.conjuncts)
            if not self.conjuncts:
                lines.append(f"{indent}    (empty: the side conditions alone are unsat)")
        else:
            label = "minimal packet" if self.kind == KIND_PACKET else "table entry"
            lines.append(f"{indent}witness ({label}):")
            for name, value in self.values:
                display = name.split("::", 1)[1] if "::" in name else name
                lines.append(f"{indent}    {display} = 0x{value:x}")
        if self.note:
            lines.append(f"{indent}    note: {self.note}")
        return lines

    def to_json(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "values": [[name, value] for name, value in self.values],
            "conjuncts": list(self.conjuncts),
            "note": self.note,
        }


# ----------------------------------------------------------------------
# Bit-minimized models
# ----------------------------------------------------------------------


def _minimal_value(
    solver: Solver, assumptions: Sequence[T.Term], pins: List[T.Term], term: T.Term
) -> int:
    """The smallest value of ``term`` consistent with the assumptions and
    the pins fixed so far.

    Greedy MSB-first prefer-zero descent, computed segment-wise: try the
    whole remaining run of zero bits in one check; on failure
    binary-search the longest satisfiable zero prefix (prefix
    satisfiability is monotone), after which the next bit is forced to 1.
    With a zero background the greedy walk *is* unsigned minimization, so
    the result is the unique minimum — independent of solver history.

    Precondition: the caller established that value 0 is unsatisfiable
    and that the assumption set itself is satisfiable.
    """
    width = term.width
    value = 0
    bit_pins: List[T.Term] = []

    def zero_pins(msb: int, count: int) -> List[T.Term]:
        return [
            T.extract(term, b, b).eq(T.bv_const(0, 1))
            for b in range(msb, msb - count, -1)
        ]

    def sat_with(extra: List[T.Term]) -> bool:
        return (
            solver.check(*assumptions, *pins, *bit_pins, *extra) is Result.SAT
        )

    bit = width - 1
    first = True
    while bit >= 0:
        remaining = bit + 1
        if not first and sat_with(zero_pins(bit, remaining)):
            # The whole suffix can be zero; the value so far is minimal.
            break
        first = False
        lo, hi = 0, remaining  # lo known-SAT run length, hi known-UNSAT
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if sat_with(zero_pins(bit, mid)):
                lo = mid
            else:
                hi = mid
        if lo:
            bit_pins.extend(zero_pins(bit, lo))
            bit -= lo
        # The next bit cannot be zero: every model has it set.
        bit_pins.append(T.extract(term, bit, bit).eq(T.bv_const(1, 1)))
        value |= 1 << bit
        bit -= 1
    return value


def minimal_assignment(
    solver: Solver,
    assumptions: Sequence[T.Term],
    variables: Dict[str, T.Term],
) -> Optional[Dict[str, int]]:
    """The lexicographically minimal model of ``assumptions`` over
    ``variables`` (name -> bitvector term), pinning variables in sorted
    name order and minimizing each given the pins before it.

    Returns ``None`` when the assumption set is unsatisfiable.  All
    queries flow through ``Solver.check(*assumptions)``, so pooled warm
    solvers are safe and the result is history-independent.
    """
    if solver.check(*assumptions) is not Result.SAT:
        return None
    formula = T.and_(*assumptions) if assumptions else T.TRUE
    compiled = compile_term(formula)
    # One valid completion seeds the concrete fast path: if the current
    # model already has a variable at zero (or at the candidate minimum),
    # no solver query is needed to accept it.
    model = dict(solver.model(compiled.variables))
    out: Dict[str, int] = {}
    pins: List[T.Term] = []
    for name in sorted(variables):
        term = variables[name]
        if name not in compiled.variables:
            out[name] = 0  # unconstrained: minimum is trivially zero
            continue
        is_bool = isinstance(term.sort, T.BoolSort)
        zero_pin = T.not_(term) if is_bool else term.eq(T.bv_const(0, term.width))
        chosen: Optional[int] = None
        # {**model, **out} is a known model of assumptions ∧ pins (out
        # overrides keep it aligned with every pin accepted so far), so a
        # true evaluation here is a proof — no solver query needed.
        if compiled.evaluate({**model, **out, name: 0}):
            chosen = 0
        elif solver.check(*assumptions, *pins, zero_pin) is Result.SAT:
            chosen = 0
            model = dict(solver.model(compiled.variables))
        if chosen is None:
            # For booleans, zero (false) is unsat, so true is forced.
            chosen = (
                1 if is_bool else _minimal_value(solver, assumptions, pins, term)
            )
            pin = term if is_bool else term.eq(T.bv_const(chosen, term.width))
            solver.check(*assumptions, *pins, pin)
            model = dict(solver.model(compiled.variables))
        out[name] = chosen
        pins.append(
            zero_pin
            if chosen == 0
            else (term if is_bool else term.eq(T.bv_const(chosen, term.width)))
        )
    return out


def packet_witness(
    solver: Solver,
    assumptions: Sequence[T.Term],
    variables: Dict[str, T.Term],
    note: str = "",
    kind: str = KIND_PACKET,
) -> Optional[Witness]:
    """A bit-minimized satisfying assignment packaged as a witness, or
    ``None`` when the finding formula is unsatisfiable."""
    assignment = minimal_assignment(solver, assumptions, variables)
    if assignment is None:
        return None
    formula = T.and_(*assumptions) if assumptions else T.TRUE
    return Witness(
        kind=kind,
        values=tuple(sorted(assignment.items())),
        note=note,
        term=formula,
    )


# ----------------------------------------------------------------------
# Minimal unsat cores
# ----------------------------------------------------------------------


def unsat_core_witness(
    solver: Solver,
    fixed: Sequence[T.Term],
    conjuncts: Sequence[Tuple[str, T.Term]],
    note: str = "",
) -> Witness:
    """A minimal subset of ``conjuncts`` (text, term) that is UNSAT
    together with ``fixed``, by deletion-based reduction.

    Every surviving conjunct is necessary: dropping any one of them makes
    the remainder satisfiable.  When ``fixed`` alone is already UNSAT the
    core is empty (the conjuncts are not the contradiction).
    """
    if solver.check(*fixed) is not Result.SAT:
        return Witness(
            kind=KIND_UNSAT_CORE,
            conjuncts=(),
            note=note or "the side conditions are contradictory on their own",
        )
    kept = list(conjuncts)
    index = 0
    while index < len(kept):
        trial = kept[:index] + kept[index + 1:]
        trial_terms = [term for _text, term in trial]
        if solver.check(*fixed, *trial_terms) is not Result.SAT:
            kept = trial  # the dropped conjunct was redundant
        else:
            index += 1  # necessary: keep it, try the next
    return Witness(
        kind=KIND_UNSAT_CORE,
        conjuncts=tuple(text for text, _term in kept),
        note=note,
    )
