"""Minimal concrete witnesses for semantic and contract findings.

P4Testgen's lesson (PAPERS.md) is that a verdict without a replayable
artifact is a verdict nobody trusts.  Every SAT-flavoured finding here
ships the *smallest* concrete object that exhibits it, and every
UNSAT-flavoured finding ships the smallest subset of restriction
conjuncts that is already contradictory:

* ``packet`` — a field assignment that drives execution to the finding
  (e.g. a read of an unparsed header).  Bit-minimized: every variable is
  pinned, in sorted-name order, to the smallest value still consistent
  with the finding formula — the same greedy MSB-first prefer-zero
  descent as the canonical-witness machinery in
  :mod:`repro.symbolic.packets`, computed segment-wise by binary search.
  The result is the lexicographically minimal model of the formula, a
  pure function of the formula — never of solver history or pool warmth.
* ``entry`` — a concrete table entry (value/mask/prefix assignments per
  key), minimized the same way.  Contract restriction drift uses this:
  the entry is accepted by one role's ``@entry_restriction`` and
  rejected by the other's.
* ``unsat-core`` — a minimal subset of restriction conjuncts that is
  unsatisfiable together with the fixed side conditions (deletion-based
  reduction: every conjunct in the core is necessary).

``Witness.term`` carries the finding formula itself so tests (and users)
can replay: evaluating the compiled term under ``values`` must yield 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.smt import Result, Solver
from repro.smt import terms as T
from repro.smt.compile import compile_term
from repro.smt.minmodel import minimal_assignment

KIND_PACKET = "packet"
KIND_ENTRY = "entry"
KIND_UNSAT_CORE = "unsat-core"


def input_variables(term: T.Term) -> Dict[str, T.Term]:
    """Free variables of ``term`` as name -> variable term (hash-consing
    returns the identical objects the formula was built from)."""
    out: Dict[str, T.Term] = {}
    for name, sort in T.free_variables(term).items():
        out[name] = (
            T.bool_var(name)
            if isinstance(sort, T.BoolSort)
            else T.bv_var(name, sort.width)
        )
    return out


@dataclass(frozen=True)
class Witness:
    """Concrete evidence attached to a :class:`Diagnostic`.

    ``values`` is a sorted tuple of (variable name, value) pairs — the
    full minimized assignment for packet/entry kinds, empty for unsat
    cores.  ``conjuncts`` is the minimal core's conjunct texts (unsat
    cores only).  ``term`` is the finding formula for replay (``None``
    for unsat cores: there is nothing satisfiable to replay).
    """

    kind: str
    values: Tuple[Tuple[str, int], ...] = ()
    conjuncts: Tuple[str, ...] = ()
    note: str = ""
    term: Optional[T.Term] = None

    def assignment(self) -> Dict[str, int]:
        return dict(self.values)

    def replays(self) -> bool:
        """True when the stored assignment still satisfies the finding
        formula (vacuously true for unsat cores, which carry no model)."""
        if self.term is None:
            return self.kind == KIND_UNSAT_CORE
        return bool(compile_term(self.term).evaluate(self.assignment()))

    def render(self, indent: str = "      ") -> List[str]:
        """Human-facing lines, one per field/conjunct."""
        lines: List[str] = []
        if self.kind == KIND_UNSAT_CORE:
            label = "minimal unsat core" if self.conjuncts else "unsat core"
            lines.append(f"{indent}witness ({label}):")
            lines.extend(f"{indent}    {text}" for text in self.conjuncts)
            if not self.conjuncts:
                lines.append(f"{indent}    (empty: the side conditions alone are unsat)")
        else:
            label = "minimal packet" if self.kind == KIND_PACKET else "table entry"
            lines.append(f"{indent}witness ({label}):")
            for name, value in self.values:
                display = name.split("::", 1)[1] if "::" in name else name
                lines.append(f"{indent}    {display} = 0x{value:x}")
        if self.note:
            lines.append(f"{indent}    note: {self.note}")
        return lines

    def to_json(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "values": [[name, value] for name, value in self.values],
            "conjuncts": list(self.conjuncts),
            "note": self.note,
        }


# ----------------------------------------------------------------------
# Bit-minimized models
# ----------------------------------------------------------------------
# The minimization core (``minimal_assignment`` and its MSB-first
# descent) moved to :mod:`repro.smt.minmodel` so the fuzzer's
# constraint-model sampling shares the same canonical extraction; it is
# re-imported above for existing callers of this module.


def packet_witness(
    solver: Solver,
    assumptions: Sequence[T.Term],
    variables: Dict[str, T.Term],
    note: str = "",
    kind: str = KIND_PACKET,
) -> Optional[Witness]:
    """A bit-minimized satisfying assignment packaged as a witness, or
    ``None`` when the finding formula is unsatisfiable."""
    assignment = minimal_assignment(solver, assumptions, variables)
    if assignment is None:
        return None
    formula = T.and_(*assumptions) if assumptions else T.TRUE
    return Witness(
        kind=kind,
        values=tuple(sorted(assignment.items())),
        note=note,
        term=formula,
    )


# ----------------------------------------------------------------------
# Minimal unsat cores
# ----------------------------------------------------------------------


def unsat_core_witness(
    solver: Solver,
    fixed: Sequence[T.Term],
    conjuncts: Sequence[Tuple[str, T.Term]],
    note: str = "",
) -> Witness:
    """A minimal subset of ``conjuncts`` (text, term) that is UNSAT
    together with ``fixed``, by deletion-based reduction.

    Every surviving conjunct is necessary: dropping any one of them makes
    the remainder satisfiable.  When ``fixed`` alone is already UNSAT the
    core is empty (the conjuncts are not the contradiction).
    """
    if solver.check(*fixed) is not Result.SAT:
        return Witness(
            kind=KIND_UNSAT_CORE,
            conjuncts=(),
            note=note or "the side conditions are contradictory on their own",
        )
    kept = list(conjuncts)
    index = 0
    while index < len(kept):
        trial = kept[:index] + kept[index + 1:]
        trial_terms = [term for _text, term in trial]
        if solver.check(*fixed, *trial_terms) is not Result.SAT:
            kept = trial  # the dropped conjunct was redundant
        else:
            index += 1  # necessary: keep it, try the next
    return Witness(
        kind=KIND_UNSAT_CORE,
        conjuncts=tuple(text for text, _term in kept),
        note=note,
    )
