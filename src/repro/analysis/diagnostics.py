"""Structured findings produced by the model linter.

Every analysis pass reports :class:`Diagnostic` values — never free-form
strings — so the harness can gate campaigns on severity, tests can assert
exact codes, and the text renderer in :mod:`repro.switchv.report` can format
them uniformly.  Locations use the same vocabulary as the IR's
constructor-time errors (``table <name>``, ``action <name>``, ``if <label>``)
so a finding and a runtime crash point at the same place.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List


class Severity(enum.Enum):
    """How a finding gates the pipeline.

    ``ERROR`` findings make the model unusable as a specification (the
    fuzzer, symbolic executor or simulator would crash or silently judge
    against garbage); the harness's ``lint_model`` gate refuses to start a
    campaign on them.  ``WARNING`` findings are suspicious but the model is
    still executable (e.g. the key-name/field drift heuristic).
    """

    ERROR = "error"
    WARNING = "warning"


# ----------------------------------------------------------------------
# Diagnostic codes (the stable contract asserted by tests)
# ----------------------------------------------------------------------

# Structural passes (AST walks, no solver).
UNDEFINED_FIELD = "undefined-field"
WIDTH_MISMATCH = "width-mismatch"
DANGLING_REF = "dangling-ref"
REF_WIDTH_MISMATCH = "ref-width-mismatch"
REF_CYCLE = "ref-cycle"
DUPLICATE_TABLE = "duplicate-table"
DUPLICATE_ACTION = "duplicate-action"
DUPLICATE_KEY = "duplicate-key"
ID_COLLISION = "id-collision"
KEY_SHAPE = "key-shape"
ACTION_SCOPE = "action-scope"
UNREACHABLE_ACTION = "unreachable-action"
RESTRICTION_SYNTAX = "restriction-syntax"
RESTRICTION_UNKNOWN_KEY = "restriction-unknown-key"
RESTRICTION_ACCESSOR = "restriction-accessor"
KEY_NAME_DRIFT = "key-name-drift"
PARSER_PATTERN = "parser-pattern"

# Semantic passes (SMT-backed, repro.smt).
RESTRICTION_UNSAT = "restriction-unsat"
UNREACHABLE_BRANCH = "unreachable-branch"
UNREACHABLE_TABLE = "unreachable-table"
TABLE_NEVER_HITS = "table-never-hits"
INVALID_HEADER_READ = "invalid-header-read"
ACTION_NEVER_FIRES = "action-never-fires"

# Contract passes (cross-program, repro.analysis.contract).
CONTRACT_KEY_DRIFT = "contract-key-drift"
CONTRACT_ID_DRIFT = "contract-id-drift"
CONTRACT_ACTION_DRIFT = "contract-action-drift"
CONTRACT_REF_DRIFT = "contract-ref-drift"
CONTRACT_RESTRICTION_DRIFT = "contract-restriction-drift"


@dataclass(frozen=True)
class Diagnostic:
    """One linter finding.

    ``location`` is human-oriented (``table acl_ingress_tbl, key icmp_type``);
    ``table_name`` carries the structured attribution the incident pipeline
    uses (empty when no single table applies).
    """

    code: str
    severity: Severity
    location: str
    message: str
    fix_hint: str = ""
    table_name: str = ""
    # Concrete evidence for the finding (a repro.analysis.witness.Witness:
    # a minimized packet, a table entry, or a minimal unsat core).  Typed
    # loosely to keep this module dependency-free; excluded from equality
    # so a finding with and without its witness compares equal.
    witness: object = field(default=None, compare=False)

    @property
    def is_error(self) -> bool:
        return self.severity is Severity.ERROR

    def sort_key(self):
        """Deterministic ordering: errors first, then by code and place.

        Pass execution order (and within the semantic passes, dict/set
        iteration) must never leak into rendered output — CI diffs two
        runs' ``--format json`` artifacts byte for byte.
        """
        return (
            0 if self.is_error else 1,
            self.code,
            self.location,
            self.message,
        )

    def __repr__(self) -> str:
        return f"{self.severity.value}[{self.code}] {self.location}: {self.message}"


@dataclass
class AnalysisReport:
    """Everything one analyzer run over one program produced."""

    program_name: str
    diagnostics: List[Diagnostic] = field(default_factory=list)
    # True when the semantic (SMT) passes ran; False when structural errors
    # made the program unsafe to encode (or the caller disabled them).
    semantic_ran: bool = False
    # Wall-clock attribution, for the fail-fast budget benchmark.
    structural_seconds: float = 0.0
    semantic_seconds: float = 0.0
    # Pass-level counters (reach-checker cache hits, solver checks,
    # action reachability totals) surfaced by the renderer and the CLI.
    summary: Dict[str, int] = field(default_factory=dict)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.is_error]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if not d.is_error]

    @property
    def has_errors(self) -> bool:
        return any(d.is_error for d in self.diagnostics)

    def codes(self) -> List[str]:
        return [d.code for d in self.diagnostics]

    def by_code(self, code: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    def extend(self, diagnostics: List[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def sort(self) -> None:
        """Order findings by (severity, code, location, message)."""
        self.diagnostics.sort(key=Diagnostic.sort_key)

    def __bool__(self) -> bool:
        return bool(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)


def table_location(table_name: str, detail: str = "") -> str:
    base = f"table {table_name}"
    return f"{base}, {detail}" if detail else base


def action_location(action_name: str, detail: str = "") -> str:
    base = f"action {action_name}"
    return f"{base}, {detail}" if detail else base


def branch_location(label: str) -> str:
    return f"if {label}"
