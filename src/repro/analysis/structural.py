"""Structural lint passes: pure AST walks over a :class:`P4Program`.

These passes need no solver and run in microseconds; they catch the model
defects that would otherwise crash (or silently skew) the fuzzer, the
symbolic executor or the BMv2 simulator deep into a campaign:

* ``FieldRef``s naming fields no header/metadata declares;
* width mismatches in assignments, comparisons and binary operations;
* dangling ``@refers_to`` targets, reference cycles, and reference edges
  whose two ends disagree on bit width;
* duplicate table/action definitions and stable-ID collisions;
* match-kind/key-shape inconsistencies (duplicate key names, multiple LPM
  keys — the executor's priority order is defined for at most one);
* ``@entry_restriction`` strings that fail to parse, name unknown keys, or
  use accessors their key's match kind does not have;
* action references that can never fire (``@defaultonly`` + ``@tableonly``,
  or ``@defaultonly`` behind a different const default);
* the key-name/field drift heuristic that catches a key like ``icmp_type``
  bound to ``icmp.code`` (the paper's wrong-field model-bug class).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.p4 import ast
from repro.p4.ast import (
    Action,
    BinOp,
    BoolOp,
    Cmp,
    Const,
    FieldRef,
    HashExpr,
    If,
    MatchKind,
    P4Program,
    Param,
    Seq,
    Statement,
    STANDARD_FIELDS,
    Table,
)
from repro.p4.constraints.lang import (
    CAnd,
    CCmp,
    CKey,
    CNot,
    COr,
    ConstraintSyntaxError,
    parse_constraint,
)
from repro.p4.p4info import ACTION_PREFIX, TABLE_PREFIX, _stable_id
from repro.analysis.diagnostics import (
    ACTION_SCOPE,
    DANGLING_REF,
    DUPLICATE_ACTION,
    DUPLICATE_KEY,
    DUPLICATE_TABLE,
    Diagnostic,
    ID_COLLISION,
    KEY_NAME_DRIFT,
    KEY_SHAPE,
    REF_CYCLE,
    REF_WIDTH_MISMATCH,
    RESTRICTION_ACCESSOR,
    RESTRICTION_SYNTAX,
    RESTRICTION_UNKNOWN_KEY,
    Severity,
    UNDEFINED_FIELD,
    UNREACHABLE_ACTION,
    WIDTH_MISMATCH,
    action_location,
    branch_location,
    table_location,
)


def _field_width(program: P4Program, path: str) -> Optional[int]:
    try:
        return program.field_width(path)
    except KeyError:
        return None


def _expr_width(
    program: P4Program,
    expr,
    params: Dict[str, int],
    out: List[Diagnostic],
    location: str,
    table_name: str,
) -> Optional[int]:
    """Static width of an expression; ``None`` when not derivable (e.g. the
    expression references an undefined field, reported elsewhere)."""
    if isinstance(expr, Const):
        return expr.width or None
    if isinstance(expr, FieldRef):
        return _field_width(program, expr.path)
    if isinstance(expr, Param):
        return params.get(expr.name)
    if isinstance(expr, HashExpr):
        return expr.width
    if isinstance(expr, BinOp):
        left = _expr_width(program, expr.left, params, out, location, table_name)
        right = _expr_width(program, expr.right, params, out, location, table_name)
        if left is not None and right is not None and left != right:
            out.append(
                Diagnostic(
                    code=WIDTH_MISMATCH,
                    severity=Severity.ERROR,
                    location=location,
                    message=f"operands of {expr!r} have widths {left} and {right}",
                    fix_hint="make both operands the same bit width "
                    "(the executor would zero-extend, the switch will not)",
                    table_name=table_name,
                )
            )
        return left if left is not None else right
    return None


def _walk_exprs(expr) -> Iterable:
    """Every sub-expression, including ``expr`` itself."""
    yield expr
    if isinstance(expr, BinOp):
        yield from _walk_exprs(expr.left)
        yield from _walk_exprs(expr.right)
    elif isinstance(expr, HashExpr):
        yield from expr.fields


def _walk_conds(cond) -> Iterable:
    yield cond
    if isinstance(cond, BoolOp):
        for arg in cond.args:
            yield from _walk_conds(arg)
    elif isinstance(cond, Cmp):
        yield from _walk_exprs(cond.left)
        yield from _walk_exprs(cond.right)


def _control_nodes(program: P4Program) -> Iterable[Tuple[str, object]]:
    """(location, node) pairs for every control-flow node, in order."""

    def walk(block: Seq, where: str):
        for node in block:
            if isinstance(node, If):
                label = node.label or repr(node.cond)
                yield branch_location(label), node
                yield from walk(node.then_block, where)
                yield from walk(node.else_block, where)
            else:
                yield where, node

    yield from walk(program.ingress, "ingress")
    yield from walk(program.egress, "egress")


# ----------------------------------------------------------------------
# Pass: undefined fields
# ----------------------------------------------------------------------


def check_fields(program: P4Program) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    seen: Set[Tuple[str, str]] = set()

    def check(path: str, location: str, table_name: str = "") -> None:
        if (path, location) in seen:
            return
        seen.add((path, location))
        if _field_width(program, path) is None:
            out.append(
                Diagnostic(
                    code=UNDEFINED_FIELD,
                    severity=Severity.ERROR,
                    location=location,
                    message=f"field {path} is not declared by any header, "
                    "metadata or standard field",
                    fix_hint="declare the field or fix the dotted path",
                    table_name=table_name,
                )
            )

    def check_expr(expr, location: str, table_name: str = "") -> None:
        for sub in _walk_exprs(expr):
            if isinstance(sub, FieldRef):
                check(sub.path, location, table_name)

    def check_action(action: Action, table: Table) -> None:
        location = action_location(action.name)
        for stmt in action.body:
            check(stmt.dest.path, location, table.name)
            check_expr(stmt.value, location, table.name)

    for table in program.tables():
        for key in table.keys:
            check(
                key.field.path,
                table_location(table.name, f"key {key.key_name}"),
                table.name,
            )
        for ref in table.actions:
            check_action(ref.action, table)
        check_action(table.default_action, table)
        if table.implementation is not None:
            for f in table.implementation.selector_fields:
                check(
                    f.path,
                    table_location(table.name, "action selector"),
                    table.name,
                )
    for location, node in _control_nodes(program):
        if isinstance(node, If):
            for sub in _walk_conds(node.cond):
                if isinstance(sub, FieldRef):
                    check(sub.path, location)
        elif isinstance(node, Statement):
            check(node.dest.path, location)
            check_expr(node.value, location)
    return out


# ----------------------------------------------------------------------
# Pass: width mismatches
# ----------------------------------------------------------------------


def check_widths(program: P4Program) -> List[Diagnostic]:
    out: List[Diagnostic] = []

    def check_stmt(stmt: Statement, params: Dict[str, int], location: str, table: str):
        dest = _field_width(program, stmt.dest.path)
        value = _expr_width(program, stmt.value, params, out, location, table)
        if dest is not None and value is not None and dest != value:
            out.append(
                Diagnostic(
                    code=WIDTH_MISMATCH,
                    severity=Severity.ERROR,
                    location=location,
                    message=f"assignment {stmt!r}: destination is {dest} bits, "
                    f"value is {value} bits",
                    fix_hint="match the value width to the destination field",
                    table_name=table,
                )
            )

    def check_cond(cond, location: str, table: str = "") -> None:
        for sub in _walk_conds(cond):
            if isinstance(sub, Cmp):
                left = _expr_width(program, sub.left, {}, out, location, table)
                right = _expr_width(program, sub.right, {}, out, location, table)
                if left is not None and right is not None and left != right:
                    out.append(
                        Diagnostic(
                            code=WIDTH_MISMATCH,
                            severity=Severity.ERROR,
                            location=location,
                            message=f"comparison {sub!r} compares a {left}-bit "
                            f"operand with a {right}-bit operand",
                            fix_hint="compare same-width operands",
                            table_name=table,
                        )
                    )

    seen_actions: Set[str] = set()
    for table in program.tables():
        for ref in tuple(table.actions) + (ast.ActionRef(table.default_action),):
            action = ref.action
            if action.name in seen_actions:
                continue
            seen_actions.add(action.name)
            params = {p.name: p.width for p in action.params}
            for stmt in action.body:
                check_stmt(stmt, params, action_location(action.name), table.name)
    for location, node in _control_nodes(program):
        if isinstance(node, If):
            check_cond(node.cond, location)
        elif isinstance(node, Statement):
            check_stmt(node, {}, location, "")
    return out


# ----------------------------------------------------------------------
# Pass: duplicate definitions and ID collisions
# ----------------------------------------------------------------------


def check_duplicates(program: P4Program) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    tables = program.tables()

    by_name: Dict[str, List[Table]] = {}
    for table in tables:
        by_name.setdefault(table.name, []).append(table)
    out.extend(
        Diagnostic(
            code=DUPLICATE_TABLE,
            severity=Severity.ERROR,
            location=table_location(name),
            message=f"table {name} is defined {len(defs)} times "
            "(P4Info IDs derive from names; duplicates collide)",
            fix_hint="rename one definition or apply a single instance",
            table_name=name,
        )
        for name, defs in by_name.items()
        if len(defs) > 1
    )

    actions_by_name: Dict[str, List[Action]] = {}
    for table in tables:
        for ref in tuple(table.actions) + (ast.ActionRef(table.default_action),):
            defs = actions_by_name.setdefault(ref.action.name, [])
            if all(existing != ref.action for existing in defs):
                defs.append(ref.action)
    out.extend(
        Diagnostic(
            code=DUPLICATE_ACTION,
            severity=Severity.ERROR,
            location=action_location(name),
            message=f"action {name} has {len(defs)} conflicting "
            "definitions across tables",
            fix_hint="share one Action value or rename",
        )
        for name, defs in actions_by_name.items()
        if len(defs) > 1
    )

    ids: Dict[int, str] = {}
    for kind, prefix, names in (
        ("table", TABLE_PREFIX, sorted(by_name)),
        ("action", ACTION_PREFIX, sorted(actions_by_name)),
    ):
        for name in names:
            oid = _stable_id(prefix, name)
            other = ids.get(oid)
            if other is not None and other != name:
                out.append(
                    Diagnostic(
                        code=ID_COLLISION,
                        severity=Severity.ERROR,
                        location=f"{kind} {name}",
                        message=f"stable ID 0x{oid:08x} collides with {other}",
                        fix_hint="rename either object",
                    )
                )
            ids[oid] = name
    return out


# ----------------------------------------------------------------------
# Pass: key shapes
# ----------------------------------------------------------------------


def check_keys(program: P4Program) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for table in program.tables():
        seen: Set[str] = set()
        for key in table.keys:
            if key.key_name in seen:
                out.append(
                    Diagnostic(
                        code=DUPLICATE_KEY,
                        severity=Severity.ERROR,
                        location=table_location(table.name, f"key {key.key_name}"),
                        message=f"key name {key.key_name} appears more than once",
                        fix_hint="give every key a unique @name",
                        table_name=table.name,
                    )
                )
            seen.add(key.key_name)
        lpm = [k.key_name for k in table.keys if k.kind is MatchKind.LPM]
        if len(lpm) > 1:
            out.append(
                Diagnostic(
                    code=KEY_SHAPE,
                    severity=Severity.ERROR,
                    location=table_location(table.name),
                    message=f"table has {len(lpm)} LPM keys ({', '.join(lpm)}); "
                    "longest-prefix ordering is defined for at most one",
                    fix_hint="use ternary matches for all but one prefix key",
                    table_name=table.name,
                )
            )
    return out


# ----------------------------------------------------------------------
# Pass: references (@refers_to)
# ----------------------------------------------------------------------


def _reference_edges(program: P4Program) -> List[Tuple[str, str, int, str, str]]:
    """(owner_table, location, source_width, target_table, target_key)."""
    edges = []
    for table in program.programmable_tables():
        for key in table.keys:
            if key.refers_to is not None:
                width = _field_width(program, key.field.path) or 0
                edges.append(
                    (
                        table.name,
                        table_location(table.name, f"key {key.key_name}"),
                        width,
                        key.refers_to[0],
                        key.refers_to[1],
                    )
                )
        for ref in table.actions:
            for param in ref.action.params:
                edges.extend(
                    (
                        table.name,
                        table_location(
                            table.name,
                            f"action {ref.action.name}, param {param.name}",
                        ),
                        param.width,
                        target_table,
                        target_key,
                    )
                    for target_table, target_key in param.references()
                )
    return edges


def check_references(program: P4Program) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    tables = {t.name: t for t in program.programmable_tables()}
    graph: Dict[str, Set[str]] = {}

    for owner, location, width, target_table, target_key in _reference_edges(program):
        target = tables.get(target_table)
        if target is None:
            out.append(
                Diagnostic(
                    code=DANGLING_REF,
                    severity=Severity.ERROR,
                    location=location,
                    message=f"@refers_to({target_table}, {target_key}) names a "
                    "table that does not exist (or is not programmable)",
                    fix_hint="point the reference at a programmable table",
                    table_name=owner,
                )
            )
            continue
        target_kspec = next(
            (k for k in target.keys if k.key_name == target_key), None
        )
        if target_kspec is None:
            out.append(
                Diagnostic(
                    code=DANGLING_REF,
                    severity=Severity.ERROR,
                    location=location,
                    message=f"@refers_to({target_table}, {target_key}) names a "
                    f"key {target_table} does not have",
                    fix_hint=f"one of: {', '.join(k.key_name for k in target.keys)}",
                    table_name=owner,
                )
            )
            continue
        graph.setdefault(owner, set()).add(target_table)
        target_width = _field_width(program, target_kspec.field.path)
        if width and target_width is not None and width != target_width:
            out.append(
                Diagnostic(
                    code=REF_WIDTH_MISMATCH,
                    severity=Severity.ERROR,
                    location=location,
                    message=f"reference is {width} bits but "
                    f"{target_table}.{target_key} is {target_width} bits",
                    fix_hint="make both ends of the reference the same width",
                    table_name=owner,
                )
            )

    # Cycle detection over the table-reference graph.  Referential
    # integrity orders inserts referenced-first; a cycle makes that order
    # (and the batcher built on it) unsatisfiable.
    WHITE, GREY, BLACK = 0, 1, 2
    color = {name: WHITE for name in tables}
    reported: Set[frozenset] = set()

    def visit(name: str, path: List[str]) -> None:
        color[name] = GREY
        path.append(name)
        for succ in sorted(graph.get(name, ())):
            if color.get(succ, WHITE) == GREY:
                cycle = path[path.index(succ):] + [succ]
                key = frozenset(cycle)
                if key not in reported:
                    reported.add(key)
                    out.append(
                        Diagnostic(
                            code=REF_CYCLE,
                            severity=Severity.ERROR,
                            location=table_location(succ),
                            message="@refers_to cycle: " + " -> ".join(cycle),
                            fix_hint="break the cycle; referential integrity "
                            "needs a referenced-first insert order",
                            table_name=succ,
                        )
                    )
            elif color.get(succ, WHITE) == WHITE:
                visit(succ, path)
        path.pop()
        color[name] = BLACK

    for name in sorted(tables):
        if color[name] == WHITE:
            visit(name, [])
    return out


# ----------------------------------------------------------------------
# Pass: action reference scopes
# ----------------------------------------------------------------------


def check_action_scopes(program: P4Program) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for table in program.tables():
        for ref in table.actions:
            location = table_location(table.name, f"action {ref.action.name}")
            if ref.default_only and ref.table_only:
                out.append(
                    Diagnostic(
                        code=ACTION_SCOPE,
                        severity=Severity.ERROR,
                        location=location,
                        message="action is both @defaultonly and @tableonly; "
                        "no entry and no default may use it",
                        fix_hint="drop one of the two annotations",
                        table_name=table.name,
                    )
                )
            elif (
                ref.default_only
                and table.const_default
                and table.default_action.name != ref.action.name
            ):
                out.append(
                    Diagnostic(
                        code=UNREACHABLE_ACTION,
                        severity=Severity.ERROR,
                        location=location,
                        message="@defaultonly action can never fire: the "
                        f"default is const {table.default_action.name}",
                        fix_hint="make it the default action or drop @defaultonly",
                        table_name=table.name,
                    )
                )
    return out


# ----------------------------------------------------------------------
# Pass: entry restrictions (structural part)
# ----------------------------------------------------------------------


def check_restrictions(program: P4Program) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for table in program.tables():
        if not table.entry_restriction:
            continue
        location = table_location(table.name, "@entry_restriction")
        try:
            expr = parse_constraint(table.entry_restriction)
        except ConstraintSyntaxError as exc:
            out.append(
                Diagnostic(
                    code=RESTRICTION_SYNTAX,
                    severity=Severity.ERROR,
                    location=location,
                    message=f"restriction does not parse: {exc}",
                    fix_hint="fix the restriction grammar "
                    "(the oracle would disable constraint checking)",
                    table_name=table.name,
                )
            )
            continue
        keys = {k.key_name: k for k in table.keys}

        def walk(node, table=table, keys=keys, location=location) -> None:
            if isinstance(node, CCmp):
                for side in (node.left, node.right):
                    if not isinstance(side, CKey):
                        continue
                    key = keys.get(side.name)
                    if key is None:
                        out.append(
                            Diagnostic(
                                code=RESTRICTION_UNKNOWN_KEY,
                                severity=Severity.ERROR,
                                location=location,
                                message=f"restriction references key "
                                f"{side.name}, which the table does not have",
                                fix_hint=f"one of: {', '.join(sorted(keys))}",
                                table_name=table.name,
                            )
                        )
                    elif side.accessor == "mask" and key.kind is MatchKind.EXACT:
                        out.append(
                            Diagnostic(
                                code=RESTRICTION_ACCESSOR,
                                severity=Severity.ERROR,
                                location=location,
                                message=f"{side.name}::mask on an exact key "
                                "(the mask is always all-ones)",
                                fix_hint="use the bare key value",
                                table_name=table.name,
                            )
                        )
                    elif (
                        side.accessor == "prefix_length"
                        and key.kind is not MatchKind.LPM
                    ):
                        out.append(
                            Diagnostic(
                                code=RESTRICTION_ACCESSOR,
                                severity=Severity.ERROR,
                                location=location,
                                message=f"{side.name}::prefix_length on a "
                                f"{key.kind.value} key (only LPM keys have one)",
                                fix_hint="use ::mask or the bare value",
                                table_name=table.name,
                            )
                        )
            elif isinstance(node, CNot):
                walk(node.arg)
            elif isinstance(node, (CAnd, COr)):
                for arg in node.args:
                    walk(arg)

        walk(expr)
    return out


# ----------------------------------------------------------------------
# Pass: key-name / field drift heuristic
# ----------------------------------------------------------------------


def _header_fields(program: P4Program, header: str) -> List[str]:
    if header == "meta":
        return [name for name, _w in program.metadata]
    if header == "standard":
        return [path.split(".", 1)[1] for path in STANDARD_FIELDS]
    try:
        return [name for name, _w in program.header(header).fields]
    except KeyError:
        return []


def check_key_name_drift(program: P4Program) -> List[Diagnostic]:
    """A key whose P4Runtime name clearly describes one field of its header
    but is bound to a different one.

    This is the static signature of the paper's wrong-field model-bug class
    (a model matching ``icmp.code`` under a key still named ``icmp_type``):
    the controller contract says one thing, the dataplane matches another.
    Heuristic, hence a warning — a name is only "describing" a field when it
    equals the field, equals ``<header>_<field>``, or ends in ``_<field>``.
    """
    out: List[Diagnostic] = []
    for table in program.tables():
        for key in table.keys:
            header, _, actual = key.field.path.partition(".")
            fields = _header_fields(program, header)
            if actual not in fields:
                continue  # undefined-field territory, reported elsewhere
            candidates = [
                f
                for f in fields
                if key.key_name == f
                or key.key_name == f"{header}_{f}"
                or key.key_name.endswith(f"_{f}")
            ]
            if candidates and actual not in candidates:
                out.append(
                    Diagnostic(
                        code=KEY_NAME_DRIFT,
                        severity=Severity.WARNING,
                        location=table_location(table.name, f"key {key.key_name}"),
                        message=f"key {key.key_name} matches {key.field.path} "
                        f"but its name describes {header}.{candidates[0]}",
                        fix_hint=f"bind the key to {header}.{candidates[0]} "
                        "or rename it",
                        table_name=table.name,
                    )
                )
    return out


STRUCTURAL_PASSES = (
    check_fields,
    check_widths,
    check_duplicates,
    check_keys,
    check_references,
    check_action_scopes,
    check_restrictions,
    check_key_name_drift,
)

# Names the CLI uses to select structural passes (--only/--skip); the
# "check_" prefix is an implementation detail, underscores become dashes.
STRUCTURAL_PASS_NAMES = tuple(
    p.__name__.removeprefix("check_").replace("_", "-") for p in STRUCTURAL_PASSES
)
_PASSES_BY_NAME = dict(zip(STRUCTURAL_PASS_NAMES, STRUCTURAL_PASSES, strict=True))


def run_structural_passes(
    program: P4Program, selected: Optional[Sequence[str]] = None
) -> List[Diagnostic]:
    names = STRUCTURAL_PASS_NAMES if selected is None else selected
    out: List[Diagnostic] = []
    for name in names:
        if name in _PASSES_BY_NAME:
            out.extend(_PASSES_BY_NAME[name](program))
    return out
