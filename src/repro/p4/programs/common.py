"""The common P4 component library shared by all role instantiations.

§3: "We simplify the effort required to design and maintain these
instantiations by grouping all common components into a common P4 library,
and instantiating from it using macros and preprocessors."  Here the
"macros" are Python builder functions parameterised by the role-specific
bits (ACL key combinations, table sizes).

The modeled pipeline follows the SAI object model:

    l3_admit → acl_pre_ingress (assigns VRF) → vrf_tbl (resource table)
      → ipv4/ipv6 LPM routing → wcmp_group (one-shot selector)
      → nexthop → neighbor → router_interface → acl_ingress → mirroring

plus fixed traps (TTL ≤ 1 punt) and the mirror-session logical table
(§3 "Mirror Sessions").
"""

from __future__ import annotations

from typing import List, Tuple

from repro.p4 import ast
from repro.p4.ast import (
    Action,
    ActionParamSpec,
    ActionProfile,
    ActionRef,
    BinOp,
    Cmp,
    Const,
    FieldRef,
    HeaderType,
    If,
    IsValid,
    MatchKind,
    NO_ACTION,
    Table,
    TableApply,
    TableKey,
    assign,
    mark_to_drop,
    mirror_to,
    punt_to_cpu,
    seq,
)

# ----------------------------------------------------------------------
# Headers
# ----------------------------------------------------------------------

ETHERNET = HeaderType(
    "ethernet",
    (
        ("dst_addr", 48),
        ("src_addr", 48),
        ("ether_type", 16),
    ),
)

IPV4 = HeaderType(
    "ipv4",
    (
        ("version", 4),
        ("ihl", 4),
        ("dscp", 6),
        ("ecn", 2),
        ("total_len", 16),
        ("identification", 16),
        ("flags", 3),
        ("frag_offset", 13),
        ("ttl", 8),
        ("protocol", 8),
        ("header_checksum", 16),
        ("src_addr", 32),
        ("dst_addr", 32),
    ),
)

IPV6 = HeaderType(
    "ipv6",
    (
        ("version", 4),
        ("dscp", 6),
        ("ecn", 2),
        ("flow_label", 20),
        ("payload_length", 16),
        ("next_header", 8),
        ("hop_limit", 8),
        ("src_addr", 128),
        ("dst_addr", 128),
    ),
)

ICMP = HeaderType(
    "icmp",
    (
        ("type", 8),
        ("code", 8),
        ("checksum", 16),
    ),
)

TCP = HeaderType(
    "tcp",
    (
        ("src_port", 16),
        ("dst_port", 16),
        ("seq_no", 32),
        ("ack_no", 32),
        ("data_offset", 4),
        ("res", 4),
        ("flags", 8),
        ("window", 16),
        ("checksum", 16),
        ("urgent_ptr", 16),
    ),
)

UDP = HeaderType(
    "udp",
    (
        ("src_port", 16),
        ("dst_port", 16),
        ("hdr_length", 16),
        ("checksum", 16),
    ),
)

STANDARD_HEADERS: Tuple[HeaderType, ...] = (ETHERNET, IPV4, IPV6, ICMP, TCP, UDP)

# Shared user metadata: (name, width).
COMMON_METADATA: Tuple[Tuple[str, int], ...] = (
    ("vrf_id", 16),
    ("nexthop_id", 16),
    ("wcmp_group_id", 16),
    ("router_interface_id", 16),
    ("neighbor_id", 16),
    ("l3_admit", 1),
    ("is_ipv4", 1),
    ("is_ipv6", 1),
    ("mirror_session_id", 16),
    ("route_hit", 1),
)

# Ether types used by the parsers and models.
ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_IPV6 = 0x86DD
IP_PROTOCOL_ICMP = 1
IP_PROTOCOL_TCP = 6
IP_PROTOCOL_UDP = 17

# ----------------------------------------------------------------------
# Actions
# ----------------------------------------------------------------------

ACTION_DROP = Action("drop", body=(mark_to_drop(),))

ACTION_TRAP = Action(
    "trap",
    body=(punt_to_cpu(), mark_to_drop()),
)

ACTION_COPY_TO_CPU = Action("acl_copy", body=(punt_to_cpu(),))

ACTION_SET_VRF = Action(
    "set_vrf",
    params=(ActionParamSpec("vrf_id", 16, refers_to=("vrf_tbl", "vrf_id")),),
    body=(assign("meta.vrf_id", ast.Param("vrf_id")),),
)

ACTION_ADMIT_TO_L3 = Action(
    "admit_to_l3",
    body=(assign("meta.l3_admit", Const(1, 1)),),
)

ACTION_SET_NEXTHOP_ID = Action(
    "set_nexthop_id",
    params=(ActionParamSpec("nexthop_id", 16, refers_to=("nexthop_tbl", "nexthop_id")),),
    body=(
        assign("meta.nexthop_id", ast.Param("nexthop_id")),
        assign("meta.route_hit", Const(1, 1)),
    ),
)

ACTION_SET_WCMP_GROUP_ID = Action(
    "set_wcmp_group_id",
    params=(
        ActionParamSpec("wcmp_group_id", 16, refers_to=("wcmp_group_tbl", "wcmp_group_id")),
    ),
    body=(
        assign("meta.wcmp_group_id", ast.Param("wcmp_group_id")),
        assign("meta.route_hit", Const(1, 1)),
    ),
)

ACTION_SET_NEXTHOP = Action(
    "set_ip_nexthop",
    params=(
        # The RIF parameter participates in two references: the RIF table
        # itself, and — jointly with neighbor_id — the neighbor table.  The
        # pair (router_interface_id, neighbor_id) must name an existing
        # neighbor entry (a composite reference, the SAI-P4 pattern).
        ActionParamSpec(
            "router_interface_id",
            16,
            refers_to=(
                ("router_interface_tbl", "router_interface_id"),
                ("neighbor_tbl", "router_interface_id"),
            ),
        ),
        ActionParamSpec("neighbor_id", 16, refers_to=("neighbor_tbl", "neighbor_id")),
    ),
    body=(
        assign("meta.router_interface_id", ast.Param("router_interface_id")),
        assign("meta.neighbor_id", ast.Param("neighbor_id")),
    ),
)

ACTION_SET_DST_MAC = Action(
    "set_dst_mac",
    params=(ActionParamSpec("dst_mac", 48),),
    body=(assign("ethernet.dst_addr", ast.Param("dst_mac")),),
)

ACTION_SET_PORT_AND_SRC_MAC = Action(
    "set_port_and_src_mac",
    params=(
        ActionParamSpec("port", 16),
        ActionParamSpec("src_mac", 48),
    ),
    body=(
        assign("standard.egress_port", ast.Param("port")),
        assign("ethernet.src_addr", ast.Param("src_mac")),
    ),
)

ACTION_MIRROR = Action(
    "acl_mirror",
    params=(
        ActionParamSpec(
            "mirror_session_id", 16, refers_to=("mirror_session_tbl", "mirror_session_id")
        ),
    ),
    body=(assign("meta.mirror_session_id", ast.Param("mirror_session_id")),),
)

ACTION_SET_MIRROR_PORT = Action(
    "set_mirror_port",
    params=(ActionParamSpec("port", 16),),
    body=(mirror_to(ast.Param("port")),),
)

# The logical table translating a mirror target port to a clone-session id
# (§3 "Mirror Sessions") is a modeling artifact; its single action feeds the
# clone API.
ACTION_SET_CLONE_SESSION = Action(
    "set_clone_session",
    params=(ActionParamSpec("session_id", 16),),
    body=(assign("standard.mirror_session", ast.Param("session_id")),),
)


# ----------------------------------------------------------------------
# Table builders
# ----------------------------------------------------------------------


def vrf_table(size: int = 64) -> Table:
    """The VRF resource table (Figure 2): a P4 no-op whose PINS semantics is
    VRF allocation.  VRF 0 is reserved by the hardware."""
    return Table(
        name="vrf_tbl",
        keys=(TableKey(FieldRef("meta.vrf_id"), MatchKind.EXACT, name="vrf_id"),),
        actions=(ActionRef(NO_ACTION),),
        default_action=NO_ACTION,
        size=size,
        entry_restriction="vrf_id != 0",
        is_resource_table=True,
    )


def l3_admit_table(size: int = 128) -> Table:
    return Table(
        name="l3_admit_tbl",
        keys=(
            TableKey(FieldRef("ethernet.dst_addr"), MatchKind.TERNARY, name="dst_mac"),
            TableKey(FieldRef("standard.ingress_port"), MatchKind.OPTIONAL, name="in_port"),
        ),
        actions=(ActionRef(ACTION_ADMIT_TO_L3),),
        default_action=NO_ACTION,
        size=size,
    )


def acl_pre_ingress_table(size: int = 128) -> Table:
    """Pre-ingress ACL assigning the VRF; role-agnostic keys."""
    return Table(
        name="acl_pre_ingress_tbl",
        keys=(
            TableKey(FieldRef("ethernet.src_addr"), MatchKind.TERNARY, name="src_mac"),
            TableKey(FieldRef("ipv4.dst_addr"), MatchKind.TERNARY, name="dst_ip"),
            TableKey(FieldRef("meta.is_ipv4"), MatchKind.OPTIONAL, name="is_ipv4"),
            TableKey(FieldRef("standard.ingress_port"), MatchKind.OPTIONAL, name="in_port"),
        ),
        actions=(ActionRef(ACTION_SET_VRF),),
        default_action=NO_ACTION,
        size=size,
        entry_restriction="dst_ip::mask != 0 -> is_ipv4 == 1",
    )


def ipv4_table(size: int = 1024) -> Table:
    return Table(
        name="ipv4_tbl",
        keys=(
            TableKey(
                FieldRef("meta.vrf_id"),
                MatchKind.EXACT,
                name="vrf_id",
                refers_to=("vrf_tbl", "vrf_id"),
            ),
            TableKey(FieldRef("ipv4.dst_addr"), MatchKind.LPM, name="ipv4_dst"),
        ),
        actions=(
            ActionRef(ACTION_DROP),
            ActionRef(ACTION_SET_NEXTHOP_ID),
            ActionRef(ACTION_SET_WCMP_GROUP_ID),
            ActionRef(ACTION_TRAP),
        ),
        default_action=ACTION_DROP,
        size=size,
    )


def ipv6_table(size: int = 1024) -> Table:
    return Table(
        name="ipv6_tbl",
        keys=(
            TableKey(
                FieldRef("meta.vrf_id"),
                MatchKind.EXACT,
                name="vrf_id",
                refers_to=("vrf_tbl", "vrf_id"),
            ),
            TableKey(FieldRef("ipv6.dst_addr"), MatchKind.LPM, name="ipv6_dst"),
        ),
        actions=(
            ActionRef(ACTION_DROP),
            ActionRef(ACTION_SET_NEXTHOP_ID),
            ActionRef(ACTION_SET_WCMP_GROUP_ID),
            ActionRef(ACTION_TRAP),
        ),
        default_action=ACTION_DROP,
        size=size,
    )


def wcmp_group_table(size: int = 128, max_group_size: int = 128) -> Table:
    """WCMP groups: a one-shot action-selector table (§4.2).

    Member selection hashes the 5-tuple; the hash is a black box (§3).
    """
    selector = ActionProfile(
        name="wcmp_group_selector",
        max_group_size=max_group_size,
        selector_fields=(
            FieldRef("ipv4.src_addr"),
            FieldRef("ipv4.dst_addr"),
            FieldRef("ipv4.protocol"),
        ),
    )
    return Table(
        name="wcmp_group_tbl",
        keys=(
            TableKey(FieldRef("meta.wcmp_group_id"), MatchKind.EXACT, name="wcmp_group_id"),
        ),
        actions=(ActionRef(ACTION_SET_NEXTHOP_ID),),
        default_action=NO_ACTION,
        size=size,
        implementation=selector,
    )


def nexthop_table(size: int = 256) -> Table:
    return Table(
        name="nexthop_tbl",
        keys=(
            TableKey(FieldRef("meta.nexthop_id"), MatchKind.EXACT, name="nexthop_id"),
        ),
        actions=(ActionRef(ACTION_SET_NEXTHOP),),
        default_action=NO_ACTION,
        size=size,
    )


def neighbor_table(size: int = 256) -> Table:
    """Neighbor resolution.

    The default action drops: a next hop pointing at a (RIF, neighbor)
    pair with no neighbor entry blackholes in hardware, and the model must
    say so.  (@refers_to is per-key, so the *pair* can dangle even when
    each value exists somewhere in the table.)
    """
    return Table(
        name="neighbor_tbl",
        keys=(
            TableKey(
                FieldRef("meta.router_interface_id"),
                MatchKind.EXACT,
                name="router_interface_id",
                refers_to=("router_interface_tbl", "router_interface_id"),
            ),
            TableKey(FieldRef("meta.neighbor_id"), MatchKind.EXACT, name="neighbor_id"),
        ),
        actions=(ActionRef(ACTION_SET_DST_MAC),),
        default_action=ACTION_DROP,
        size=size,
    )


def router_interface_table(size: int = 64) -> Table:
    return Table(
        name="router_interface_tbl",
        keys=(
            TableKey(
                FieldRef("meta.router_interface_id"),
                MatchKind.EXACT,
                name="router_interface_id",
            ),
        ),
        actions=(ActionRef(ACTION_SET_PORT_AND_SRC_MAC),),
        default_action=NO_ACTION,
        size=size,
    )


def mirror_session_table(size: int = 4) -> Table:
    return Table(
        name="mirror_session_tbl",
        keys=(
            TableKey(
                FieldRef("meta.mirror_session_id"), MatchKind.EXACT, name="mirror_session_id"
            ),
        ),
        actions=(ActionRef(ACTION_SET_MIRROR_PORT),),
        default_action=NO_ACTION,
        size=size,
    )


def clone_session_logical_table() -> Table:
    """Logical port→clone-session table (§3 "Mirror Sessions"): correctly
    models the effect of cloning without expressing how it is done, and is
    not programmable by the controller."""
    return Table(
        name="mirror_port_to_clone_session_tbl",
        keys=(
            TableKey(FieldRef("standard.mirror_port"), MatchKind.EXACT, name="mirror_port"),
        ),
        actions=(ActionRef(ACTION_SET_CLONE_SESSION),),
        default_action=NO_ACTION,
        size=64,
        is_logical=True,
    )


# ----------------------------------------------------------------------
# Pipeline assembly
# ----------------------------------------------------------------------


def classifier_block() -> List:
    """Initial statements deriving is_ipv4/is_ipv6 metadata from validity."""
    return [
        If(
            cond=IsValid("ipv4"),
            then_block=seq(assign("meta.is_ipv4", Const(1, 1))),
            else_block=seq(),
            label="classify_ipv4",
        ),
        If(
            cond=IsValid("ipv6"),
            then_block=seq(assign("meta.is_ipv6", Const(1, 1))),
            else_block=seq(),
            label="classify_ipv6",
        ),
    ]


def ttl_trap_block() -> If:
    """Fixed-function trap: IP packets with TTL / hop limit 0 or 1 are
    punted.

    §6.1 recounts a chip swap introducing a built-in trap for TTL ≤ 1 that
    the old model missed; the model (now) encodes it explicitly.
    """
    return If(
        cond=ast.or_(
            ast.and_(
                IsValid("ipv4"),
                Cmp("<=", FieldRef("ipv4.ttl"), Const(1, 8)),
            ),
            ast.and_(
                IsValid("ipv6"),
                Cmp("<=", FieldRef("ipv6.hop_limit"), Const(1, 8)),
            ),
        ),
        then_block=seq(punt_to_cpu(), mark_to_drop()),
        else_block=seq(),
        label="ttl_trap",
    )


def broadcast_drop_block() -> If:
    """The chip silently drops IPv4 limited-broadcast packets; the model
    must reflect that (an Appendix-A model bug was exactly this omission)."""
    return If(
        cond=ast.and_(
            IsValid("ipv4"),
            Cmp("==", FieldRef("ipv4.dst_addr"), Const(0xFFFFFFFF, 32)),
        ),
        then_block=seq(mark_to_drop()),
        else_block=seq(),
        label="broadcast_drop",
    )


def not_dropped_gate(*nodes) -> If:
    """Guard the post-trap pipeline on the packet not being dropped.

    The fixed-function traps (TTL, broadcast) terminate processing in
    hardware; the model expresses the same by gating everything after them
    on ``standard.drop == 0`` — the SAI-P4 idiom for early termination.
    """
    return If(
        cond=Cmp("==", FieldRef("standard.drop"), Const(0, 1)),
        then_block=seq(*nodes),
        else_block=seq(),
        label="not_dropped_gate",
    )


def routing_block(ipv4_tbl: Table, ipv6_tbl: Table) -> If:
    """The L3 routing flow guarded by l3_admit."""
    return If(
        cond=Cmp("==", FieldRef("meta.l3_admit"), Const(1, 1)),
        then_block=seq(
            If(
                cond=IsValid("ipv4"),
                then_block=seq(TableApply(ipv4_tbl)),
                else_block=seq(
                    If(
                        cond=IsValid("ipv6"),
                        then_block=seq(TableApply(ipv6_tbl)),
                        else_block=seq(),
                        label="route_ipv6",
                    )
                ),
                label="route_ipv4",
            ),
        ),
        else_block=seq(),
        label="l3_admit_gate",
    )


def resolution_block(
    wcmp_tbl: Table, nexthop_tbl: Table, neighbor_tbl: Table, rif_tbl: Table
) -> If:
    """Nexthop resolution: WCMP → nexthop → neighbor → RIF, then TTL
    decrement, all guarded on a route having been hit.

    A neighbor miss drops (see :func:`neighbor_table`) and terminates
    resolution in hardware, so the RIF rewrite and the TTL decrement are
    additionally gated on the packet not having been dropped.
    """
    return If(
        cond=Cmp("==", FieldRef("meta.route_hit"), Const(1, 1)),
        then_block=seq(
            If(
                cond=Cmp("!=", FieldRef("meta.wcmp_group_id"), Const(0, 16)),
                then_block=seq(TableApply(wcmp_tbl)),
                else_block=seq(),
                label="wcmp_gate",
            ),
            TableApply(nexthop_tbl),
            TableApply(neighbor_tbl),
            If(
                cond=Cmp("==", FieldRef("standard.drop"), Const(0, 1)),
                then_block=seq(
                    TableApply(rif_tbl),
                    If(
                        cond=IsValid("ipv4"),
                        then_block=seq(
                            assign(
                                "ipv4.ttl", BinOp("-", FieldRef("ipv4.ttl"), Const(1, 8))
                            )
                        ),
                        else_block=seq(
                            If(
                                cond=IsValid("ipv6"),
                                then_block=seq(
                                    assign(
                                        "ipv6.hop_limit",
                                        BinOp(
                                            "-",
                                            FieldRef("ipv6.hop_limit"),
                                            Const(1, 8),
                                        ),
                                    )
                                ),
                                else_block=seq(),
                                label="hop_limit_decrement",
                            )
                        ),
                        label="ttl_decrement",
                    ),
                ),
                else_block=seq(),
                label="resolution_not_dropped",
            ),
        ),
        else_block=seq(),
        label="resolution_gate",
    )


def mirroring_block(mirror_tbl: Table, clone_tbl: Table) -> If:
    return If(
        cond=Cmp("!=", FieldRef("meta.mirror_session_id"), Const(0, 16)),
        then_block=seq(TableApply(mirror_tbl), TableApply(clone_tbl)),
        else_block=seq(),
        label="mirror_gate",
    )
