"""The WAN role instantiation ("Inst2" in Table 3).

WAN-facing switches match on a different ACL key combination (source
prefix, DSCP, ingress port, ether type) and add an egress ACL stage.  The
routing flow is shared with the ToR model, with larger route tables —
WAN routing state dominates the Inst2 workload's 1314 entries.
"""

from __future__ import annotations

from repro.p4.ast import (
    ActionRef,
    FieldRef,
    MatchKind,
    NO_ACTION,
    P4Program,
    ParserSpec,
    Seq,
    Table,
    TableApply,
    TableKey,
)
from repro.p4.programs import common as lib

WAN_ACL_RESTRICTION = """
    (src_ip::mask != 0 -> is_ipv4 == 1) &&
    (src_ipv6::mask != 0 -> is_ipv6 == 1) &&
    (dscp::mask != 0 -> (is_ipv4 == 1 || is_ipv6 == 1)) &&
    (is_ipv4::mask == 0 || is_ipv4::mask == 1) &&
    (is_ipv6::mask == 0 || is_ipv6::mask == 1)
"""

WAN_EGRESS_ACL_RESTRICTION = """
    (dst_ip::mask != 0 -> is_ipv4 == 1)
"""


def wan_acl_ingress_table(size: int = 256) -> Table:
    return Table(
        name="acl_ingress_tbl",
        keys=(
            TableKey(FieldRef("meta.is_ipv4"), MatchKind.TERNARY, name="is_ipv4"),
            TableKey(FieldRef("meta.is_ipv6"), MatchKind.TERNARY, name="is_ipv6"),
            TableKey(FieldRef("ipv4.src_addr"), MatchKind.TERNARY, name="src_ip"),
            TableKey(FieldRef("ipv6.src_addr"), MatchKind.TERNARY, name="src_ipv6"),
            TableKey(FieldRef("ipv4.dscp"), MatchKind.TERNARY, name="dscp"),
            TableKey(FieldRef("ethernet.ether_type"), MatchKind.TERNARY, name="ether_type"),
            TableKey(FieldRef("standard.ingress_port"), MatchKind.OPTIONAL, name="in_port"),
        ),
        actions=(
            ActionRef(lib.ACTION_DROP),
            ActionRef(lib.ACTION_TRAP),
            ActionRef(lib.ACTION_COPY_TO_CPU),
            ActionRef(lib.ACTION_MIRROR),
        ),
        default_action=NO_ACTION,
        size=size,
        entry_restriction=WAN_ACL_RESTRICTION,
    )


def wan_acl_egress_table(size: int = 128) -> Table:
    return Table(
        name="acl_egress_tbl",
        keys=(
            TableKey(FieldRef("meta.is_ipv4"), MatchKind.TERNARY, name="is_ipv4"),
            TableKey(FieldRef("ipv4.dst_addr"), MatchKind.TERNARY, name="dst_ip"),
            TableKey(FieldRef("standard.egress_port"), MatchKind.OPTIONAL, name="out_port"),
        ),
        actions=(ActionRef(lib.ACTION_DROP),),
        default_action=NO_ACTION,
        size=size,
        entry_restriction=WAN_EGRESS_ACL_RESTRICTION,
    )


def build_wan_program() -> P4Program:
    """Construct the WAN model. Tables are fresh instances per call."""
    vrf = lib.vrf_table(size=128)
    l3_admit = lib.l3_admit_table()
    pre_ingress = lib.acl_pre_ingress_table()
    ipv4 = lib.ipv4_table(size=4096)
    ipv6 = lib.ipv6_table(size=4096)
    wcmp = lib.wcmp_group_table(size=256)
    nexthop = lib.nexthop_table(size=512)
    neighbor = lib.neighbor_table(size=512)
    rif = lib.router_interface_table()
    acl_ingress = wan_acl_ingress_table()
    acl_egress = wan_acl_egress_table()
    mirror = lib.mirror_session_table()
    clone = lib.clone_session_logical_table()

    ingress = Seq(
        tuple(
            lib.classifier_block()
            + [
                lib.ttl_trap_block(),
                lib.broadcast_drop_block(),
                lib.not_dropped_gate(
                    TableApply(l3_admit),
                    TableApply(pre_ingress),
                    TableApply(vrf),
                    lib.routing_block(ipv4, ipv6),
                    lib.resolution_block(wcmp, nexthop, neighbor, rif),
                    TableApply(acl_ingress),
                    lib.mirroring_block(mirror, clone),
                ),
            ]
        )
    )

    egress = Seq((TableApply(acl_egress),))

    return P4Program(
        name="sai_wan",
        headers=lib.STANDARD_HEADERS,
        metadata=lib.COMMON_METADATA,
        parser=ParserSpec("ethernet_ipv4_ipv6"),
        ingress=ingress,
        egress=egress,
        role="WAN",
    )
