"""The Figure 2 toy program: vrf_tbl + ipv4_tbl.

A minimal routing flow used by unit tests, documentation examples, and the
quickstart.  It exercises every interesting mechanism — exact and LPM keys,
@entry_restriction, @refers_to, a conditional — without the bulk of the
full SAI models.
"""

from __future__ import annotations

from repro.p4 import ast
from repro.p4.ast import (
    Action,
    ActionParamSpec,
    ActionRef,
    FieldRef,
    If,
    IsValid,
    MatchKind,
    NO_ACTION,
    P4Program,
    ParserSpec,
    Seq,
    Table,
    TableApply,
    TableKey,
    assign,
    seq,
)
from repro.p4.programs import common as lib

ACTION_SET_NEXTHOP_PORT = Action(
    "set_nexthop_id",
    params=(ActionParamSpec("nexthop_id", 16),),
    body=(
        assign("meta.nexthop_id", ast.Param("nexthop_id")),
        # The toy program forwards directly out of the port numbered by the
        # nexthop id.
        assign("standard.egress_port", ast.Param("nexthop_id")),
    ),
)


def build_toy_program() -> P4Program:
    vrf_tbl = Table(
        name="vrf_tbl",
        keys=(TableKey(FieldRef("meta.vrf_id"), MatchKind.EXACT, name="vrf_id"),),
        actions=(ActionRef(NO_ACTION),),
        default_action=NO_ACTION,
        size=16,
        entry_restriction="vrf_id != 0",
        is_resource_table=True,
    )
    # Assigns the VRF from the ingress port; plays the role of the
    # pre-ingress ACL in the full models (metadata starts at zero, so
    # something must establish a non-zero VRF before routing).
    pre_tbl = Table(
        name="pre_ingress_tbl",
        keys=(
            TableKey(FieldRef("standard.ingress_port"), MatchKind.OPTIONAL, name="in_port"),
        ),
        actions=(ActionRef(lib.ACTION_SET_VRF),),
        default_action=NO_ACTION,
        size=16,
    )
    ipv4_tbl = Table(
        name="ipv4_tbl",
        keys=(
            TableKey(
                FieldRef("meta.vrf_id"),
                MatchKind.EXACT,
                name="vrf_id",
                refers_to=("vrf_tbl", "vrf_id"),
            ),
            TableKey(FieldRef("ipv4.dst_addr"), MatchKind.LPM, name="ipv4_dst"),
        ),
        actions=(
            ActionRef(lib.ACTION_DROP),
            ActionRef(ACTION_SET_NEXTHOP_PORT),
        ),
        default_action=lib.ACTION_DROP,
        size=32,
    )

    ingress = Seq(
        (
            TableApply(pre_tbl),
            TableApply(vrf_tbl),
            If(
                cond=IsValid("ipv4"),
                then_block=seq(TableApply(ipv4_tbl)),
                else_block=seq(),
                label="ipv4_gate",
            ),
        )
    )

    return P4Program(
        name="toy_router",
        headers=lib.STANDARD_HEADERS,
        metadata=lib.COMMON_METADATA,
        parser=ParserSpec("ethernet_ipv4_ipv6"),
        ingress=ingress,
        egress=Seq(),
        role="toy",
    )
