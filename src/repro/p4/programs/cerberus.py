"""The Cerberus-style pipeline model.

§6: the Cerberus P4 programs "were more complex, with more involved
forwarding pipelines and additional features such as encapsulation and
decapsulation".  This instantiation extends the common flow with IP-in-IP
tunnel encap/decap tables.  Header push/pop is abstracted: encapsulation is
modeled as an outer-address rewrite plus a tunnel flag — enough to express
(and detect!) the paper's endianness bug, where the switch software
reversed the destination IP used for encapsulation.
"""

from __future__ import annotations

from repro.p4 import ast
from repro.p4.ast import (
    ActionParamSpec,
    ActionRef,
    Action,
    Cmp,
    Const,
    FieldRef,
    If,
    IsValid,
    MatchKind,
    NO_ACTION,
    P4Program,
    ParserSpec,
    Seq,
    Table,
    TableApply,
    TableKey,
    assign,
    seq,
)
from repro.p4.programs import common as lib

CERBERUS_METADATA = lib.COMMON_METADATA + (
    ("tunnel_id", 16),
    ("encapped", 1),
    ("decapped", 1),
)

ACTION_SET_NEXTHOP_AND_TUNNEL = Action(
    "set_nexthop_id_and_tunnel",
    params=(
        ActionParamSpec("nexthop_id", 16, refers_to=("nexthop_tbl", "nexthop_id")),
        ActionParamSpec("tunnel_id", 16, refers_to=("tunnel_tbl", "tunnel_id")),
    ),
    body=(
        assign("meta.nexthop_id", ast.Param("nexthop_id")),
        assign("meta.tunnel_id", ast.Param("tunnel_id")),
        assign("meta.route_hit", Const(1, 1)),
    ),
)

# Header push/pop is abstracted: the encapsulation depth rides in the IPv4
# identification field (incremented on encap, decremented on decap), which
# keeps the effect externally observable without modeling header stacks.
ACTION_IP_IN_IP_ENCAP = Action(
    "set_ip_in_ip_encap",
    params=(
        ActionParamSpec("encap_src_ip", 32),
        ActionParamSpec("encap_dst_ip", 32),
    ),
    body=(
        assign("ipv4.src_addr", ast.Param("encap_src_ip")),
        assign("ipv4.dst_addr", ast.Param("encap_dst_ip")),
        assign(
            "ipv4.identification",
            ast.BinOp("+", FieldRef("ipv4.identification"), Const(1, 16)),
        ),
        assign("meta.encapped", Const(1, 1)),
    ),
)

ACTION_DECAP = Action(
    "decap",
    body=(
        assign(
            "ipv4.identification",
            ast.BinOp("-", FieldRef("ipv4.identification"), Const(1, 16)),
        ),
        assign("meta.decapped", Const(1, 1)),
    ),
)


def tunnel_table(size: int = 64) -> Table:
    return Table(
        name="tunnel_tbl",
        keys=(TableKey(FieldRef("meta.tunnel_id"), MatchKind.EXACT, name="tunnel_id"),),
        actions=(ActionRef(ACTION_IP_IN_IP_ENCAP),),
        default_action=NO_ACTION,
        size=size,
        entry_restriction="tunnel_id != 0",
    )


def decap_table(size: int = 64) -> Table:
    return Table(
        name="decap_tbl",
        keys=(
            TableKey(FieldRef("ipv4.dst_addr"), MatchKind.TERNARY, name="dst_ip"),
            TableKey(FieldRef("standard.ingress_port"), MatchKind.OPTIONAL, name="in_port"),
        ),
        actions=(ActionRef(ACTION_DECAP),),
        default_action=NO_ACTION,
        size=size,
    )


CERBERUS_ACL_RESTRICTION = """
    (dst_ip::mask != 0 -> is_ipv4 == 1) &&
    (ttl::mask != 0 -> is_ipv4 == 1) &&
    (is_ipv4::mask == 0 || is_ipv4::mask == 1)
"""


def cerberus_acl_table(size: int = 256) -> Table:
    return Table(
        name="acl_ingress_tbl",
        keys=(
            TableKey(FieldRef("meta.is_ipv4"), MatchKind.TERNARY, name="is_ipv4"),
            TableKey(FieldRef("ipv4.dst_addr"), MatchKind.TERNARY, name="dst_ip"),
            TableKey(FieldRef("ipv4.ttl"), MatchKind.TERNARY, name="ttl"),
            TableKey(FieldRef("udp.dst_port"), MatchKind.TERNARY, name="l4_dst_port"),
        ),
        actions=(
            ActionRef(lib.ACTION_DROP),
            ActionRef(lib.ACTION_TRAP),
            ActionRef(lib.ACTION_COPY_TO_CPU),
        ),
        default_action=NO_ACTION,
        size=size,
        entry_restriction=CERBERUS_ACL_RESTRICTION,
    )


def cerberus_ipv4_table(size: int = 2048) -> Table:
    """Cerberus routing: nexthop-or-tunnel actions on top of the common set."""
    base = lib.ipv4_table(size=size)
    return Table(
        name=base.name,
        keys=base.keys,
        actions=base.actions + (ActionRef(ACTION_SET_NEXTHOP_AND_TUNNEL),),
        default_action=base.default_action,
        size=size,
    )


def build_cerberus_program() -> P4Program:
    vrf = lib.vrf_table()
    l3_admit = lib.l3_admit_table()
    pre_ingress = lib.acl_pre_ingress_table()
    ipv4 = cerberus_ipv4_table()
    ipv6 = lib.ipv6_table()
    wcmp = lib.wcmp_group_table()
    nexthop = lib.nexthop_table()
    neighbor = lib.neighbor_table()
    rif = lib.router_interface_table()
    tunnel = tunnel_table()
    decap = decap_table()
    acl = cerberus_acl_table()
    mirror = lib.mirror_session_table()
    clone = lib.clone_session_logical_table()

    encap_block = If(
        cond=Cmp("!=", FieldRef("meta.tunnel_id"), Const(0, 16)),
        then_block=seq(TableApply(tunnel)),
        else_block=seq(),
        label="encap_gate",
    )

    decap_block = If(
        cond=IsValid("ipv4"),
        then_block=seq(TableApply(decap)),
        else_block=seq(),
        label="decap_gate",
    )

    ingress = Seq(
        tuple(
            lib.classifier_block()
            + [
                lib.ttl_trap_block(),
                lib.broadcast_drop_block(),
                lib.not_dropped_gate(
                    decap_block,
                    TableApply(l3_admit),
                    TableApply(pre_ingress),
                    TableApply(vrf),
                    lib.routing_block(ipv4, ipv6),
                    lib.resolution_block(wcmp, nexthop, neighbor, rif),
                    encap_block,
                    TableApply(acl),
                    lib.mirroring_block(mirror, clone),
                ),
            ]
        )
    )

    return P4Program(
        name="cerberus",
        headers=lib.STANDARD_HEADERS,
        metadata=CERBERUS_METADATA,
        parser=ParserSpec("ethernet_ipv4_ipv6"),
        ingress=ingress,
        egress=Seq(),
        role="Cerberus",
    )
