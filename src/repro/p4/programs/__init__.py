"""Role-specific P4 model instantiations (§3 "Role Specific Instantiations").

The paper builds one P4 model per deployment role, instantiated from a
common SAI-shaped component library.  We mirror that structure:

* :mod:`repro.p4.programs.common` — the shared component library: headers,
  the L3 routing flow (VRF → IPv4/IPv6 LPM → WCMP → nexthop → neighbor →
  router-interface), mirroring, and trap logic.
* :mod:`repro.p4.programs.tor` — the ToR instantiation ("Inst1" in
  Table 3): the common flow plus the ToR-specific ACL key combination.
* :mod:`repro.p4.programs.wan` — the WAN instantiation ("Inst2"): a
  different ACL key combination plus an egress ACL stage.
* :mod:`repro.p4.programs.cerberus` — the Cerberus-style pipeline: more
  involved forwarding with IPv4 tunnel encap/decap (§6: "more complex, with
  more involved forwarding pipelines and additional features such as
  encapsulation and decapsulation").
* :mod:`repro.p4.programs.toy` — the Figure 2 fragment (vrf_tbl +
  ipv4_tbl), used by unit tests and the quickstart example.
"""

from repro.p4.programs.tor import build_tor_program
from repro.p4.programs.wan import build_wan_program
from repro.p4.programs.cerberus import build_cerberus_program
from repro.p4.programs.toy import build_toy_program

__all__ = [
    "build_cerberus_program",
    "build_tor_program",
    "build_toy_program",
    "build_wan_program",
]
