"""The ToR role instantiation ("Inst1" in Table 3).

Top-of-rack switches in the modeled fabric need: the common L3 routing
flow, an ingress ACL matching on the ToR key combination (packet type,
destination IP, L4 destination port, TTL, ICMP type), and mirroring.
The ACL constraint encodes the TCAM key-combination restriction of §3
"Role Specific Instantiations": fields of one protocol may only be matched
on packets of that protocol.
"""

from __future__ import annotations

from repro.p4.ast import (
    ActionRef,
    FieldRef,
    MatchKind,
    NO_ACTION,
    P4Program,
    ParserSpec,
    Seq,
    Table,
    TableApply,
    TableKey,
)
from repro.p4.programs import common as lib

TOR_ACL_RESTRICTION = """
    // Matching IPv4 fields is only sensible on IPv4 packets, etc.
    (dst_ip::mask != 0 -> is_ipv4 == 1) &&
    (dst_ipv6::mask != 0 -> is_ipv6 == 1) &&
    (ttl::mask != 0 -> is_ipv4 == 1) &&
    (icmp_type::mask != 0 -> (ip_protocol::mask != 0 && ip_protocol == 1)) &&
    // Only entire-field matches on packet-type bits are representable.
    (is_ipv4::mask == 0 || is_ipv4::mask == 1) &&
    (is_ipv6::mask == 0 || is_ipv6::mask == 1)
"""


def tor_acl_ingress_table(size: int = 128) -> Table:
    return Table(
        name="acl_ingress_tbl",
        keys=(
            TableKey(FieldRef("meta.is_ipv4"), MatchKind.TERNARY, name="is_ipv4"),
            TableKey(FieldRef("meta.is_ipv6"), MatchKind.TERNARY, name="is_ipv6"),
            TableKey(FieldRef("ipv4.dst_addr"), MatchKind.TERNARY, name="dst_ip"),
            TableKey(FieldRef("ipv6.dst_addr"), MatchKind.TERNARY, name="dst_ipv6"),
            TableKey(FieldRef("ipv4.ttl"), MatchKind.TERNARY, name="ttl"),
            TableKey(FieldRef("ipv4.protocol"), MatchKind.TERNARY, name="ip_protocol"),
            TableKey(FieldRef("icmp.type"), MatchKind.TERNARY, name="icmp_type"),
            TableKey(FieldRef("tcp.dst_port"), MatchKind.TERNARY, name="l4_dst_port"),
        ),
        actions=(
            ActionRef(lib.ACTION_DROP),
            ActionRef(lib.ACTION_TRAP),
            ActionRef(lib.ACTION_COPY_TO_CPU),
            ActionRef(lib.ACTION_MIRROR),
        ),
        default_action=NO_ACTION,
        size=size,
        entry_restriction=TOR_ACL_RESTRICTION,
    )


def build_tor_program() -> P4Program:
    """Construct the ToR model. Tables are fresh instances per call."""
    vrf = lib.vrf_table()
    l3_admit = lib.l3_admit_table()
    pre_ingress = lib.acl_pre_ingress_table()
    ipv4 = lib.ipv4_table()
    ipv6 = lib.ipv6_table()
    wcmp = lib.wcmp_group_table()
    nexthop = lib.nexthop_table()
    neighbor = lib.neighbor_table()
    rif = lib.router_interface_table()
    acl_ingress = tor_acl_ingress_table()
    mirror = lib.mirror_session_table()
    clone = lib.clone_session_logical_table()

    ingress = Seq(
        tuple(
            lib.classifier_block()
            + [
                lib.ttl_trap_block(),
                lib.broadcast_drop_block(),
                lib.not_dropped_gate(
                    TableApply(l3_admit),
                    TableApply(pre_ingress),
                    TableApply(vrf),
                    lib.routing_block(ipv4, ipv6),
                    lib.resolution_block(wcmp, nexthop, neighbor, rif),
                    TableApply(acl_ingress),
                    lib.mirroring_block(mirror, clone),
                ),
            ]
        )
    )

    return P4Program(
        name="sai_tor",
        headers=lib.STANDARD_HEADERS,
        metadata=lib.COMMON_METADATA,
        parser=ParserSpec("ethernet_ipv4_ipv6"),
        ingress=ingress,
        egress=Seq(),
        role="ToR",
    )
