"""repro.p4 — P4 models of fixed-function switches (§3 of the paper).

The paper's key idea is to use P4 programs as machine-readable formal
specifications of both the control-plane API and data-plane behaviour of a
switch.  This package provides:

* :mod:`repro.p4.ast` — the program IR: headers, metadata, match-action
  tables (exact/lpm/ternary/optional keys), actions, expressions,
  control-flow (`if`/table application), and the parser abstraction.
* :mod:`repro.p4.p4info` — the P4Info catalogue generated from a program
  (numeric IDs for tables/actions/match-fields/params), mirroring what the
  P4Runtime standard derives from a compiled P4 program.
* :mod:`repro.p4.constraints` — the P4-constraints extension:
  ``@entry_restriction`` expression language (parser, concrete evaluator,
  symbolic encoder) and ``@refers_to`` referential-integrity annotations.
* :mod:`repro.p4.programs` — the SAI-shaped role-specific model
  instantiations used throughout the evaluation: ToR ("Inst1"),
  WAN ("Inst2"), and the Cerberus-style encap/decap pipeline.
"""

from repro.p4.ast import (
    Action,
    ActionProfile,
    ActionRef,
    BinOp,
    BoolOp,
    Cmp,
    Const,
    FieldRef,
    HashExpr,
    HeaderType,
    If,
    IsValid,
    MatchKind,
    P4Program,
    Param,
    ParserSpec,
    Seq,
    Statement,
    Table,
    TableApply,
    TableKey,
)
from repro.p4.p4info import P4Info, build_p4info

__all__ = [
    "Action",
    "ActionProfile",
    "ActionRef",
    "BinOp",
    "BoolOp",
    "Cmp",
    "Const",
    "FieldRef",
    "HashExpr",
    "HeaderType",
    "If",
    "IsValid",
    "MatchKind",
    "P4Info",
    "P4Program",
    "Param",
    "ParserSpec",
    "Seq",
    "Statement",
    "Table",
    "TableApply",
    "TableKey",
    "build_p4info",
]
