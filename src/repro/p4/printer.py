"""P4-16 pretty-printer: IR → P4 source text.

The paper leans on P4 programs being *living documentation* that engineers
consult.  This module renders any :class:`~repro.p4.ast.P4Program` as
P4-16-style source (the dialect of Figure 2: `@entry_restriction` /
`@refers_to` annotations, match-action tables, a single ingress control),
and :mod:`repro.p4.parser` parses that dialect back into the IR — the
round trip is property-tested, so the text really is the model.
"""

from __future__ import annotations

from typing import List

from repro.p4 import ast
from repro.p4.constraints.lang import normalize_constraint_text
from repro.p4.ast import (
    BinOp,
    BoolOp,
    Cmp,
    Const,
    FieldRef,
    HashExpr,
    If,
    IsValid,
    P4Program,
    Param,
    Seq,
    Statement,
    Table,
    TableApply,
)


def _expr(e) -> str:
    if isinstance(e, Const):
        return f"{e.width}w{e.value}"
    if isinstance(e, FieldRef):
        return e.path
    if isinstance(e, Param):
        return e.name
    if isinstance(e, BinOp):
        return f"({_expr(e.left)} {e.op} {_expr(e.right)})"
    if isinstance(e, HashExpr):
        inner = ", ".join(f.path for f in e.fields)
        return f"hash<{e.width}>({e.label}; {inner})"
    raise TypeError(f"unprintable expression {e!r}")


def _cond(c) -> str:
    if isinstance(c, IsValid):
        return f"{c.header}.isValid()"
    if isinstance(c, Cmp):
        return f"({_expr(c.left)} {c.op} {_expr(c.right)})"
    if isinstance(c, BoolOp):
        if c.op == "not":
            return f"!{_cond(c.args[0])}"
        joiner = " && " if c.op == "and" else " || "
        return "(" + joiner.join(_cond(a) for a in c.args) + ")"
    raise TypeError(f"unprintable condition {c!r}")


def _param(p: ast.ActionParamSpec) -> str:
    annotations = "".join(
        f"@refers_to({table}, {key}) " for table, key in p.references()
    )
    return f"{annotations}bit<{p.width}> {p.name}"


def _action(action: ast.Action, out: List[str]) -> None:
    params = ", ".join(_param(p) for p in action.params)
    out.append(f"    action {action.name}({params}) {{")
    out.extend(
        f"        {stmt.dest.path} = {_expr(stmt.value)};" for stmt in action.body
    )
    out.append("    }")


def _table(table: Table, out: List[str]) -> None:
    if table.entry_restriction:
        restriction = normalize_constraint_text(table.entry_restriction)
        out.append(f'    @entry_restriction("{restriction}")')
    if table.is_resource_table:
        out.append("    @resource_table")
    if table.is_logical:
        out.append("    @logical_table")
    out.append(f"    table {table.name} {{")
    out.append("        key = {")
    for key in table.keys:
        annotation = ""
        if key.refers_to is not None:
            annotation = f" @refers_to({key.refers_to[0]}, {key.refers_to[1]})"
        out.append(
            f"            {key.field.path} : {key.kind.value}"
            f" @name(\"{key.key_name}\"){annotation};"
        )
    out.append("        }")
    def _action_ref(ref: ast.ActionRef) -> str:
        scope = ""
        if ref.default_only:
            scope = "@defaultonly "
        elif ref.table_only:
            scope = "@tableonly "
        return f"{scope}{ref.action.name}"

    actions = ", ".join(_action_ref(ref) for ref in table.actions)
    out.append(f"        actions = {{ {actions} }};")
    out.append(f"        const default_action = {table.default_action.name};")
    out.append(f"        size = {table.size};")
    if table.implementation is not None:
        impl = table.implementation
        selector = ""
        if impl.selector_fields:
            inner = ", ".join(f.path for f in impl.selector_fields)
            selector = f", {{ {inner} }}"
        out.append(
            f"        implementation = action_selector("
            f"{impl.name}, {impl.max_group_size}{selector});"
        )
    out.append("    }")


def _block(block: Seq, out: List[str], indent: int) -> None:
    pad = " " * indent
    for node in block:
        if isinstance(node, TableApply):
            out.append(f"{pad}{node.table.name}.apply();")
        elif isinstance(node, If):
            label = f" @label(\"{node.label}\")" if node.label else ""
            out.append(f"{pad}if{label} ({_cond(node.cond)}) {{")
            _block(node.then_block, out, indent + 4)
            if node.else_block.nodes:
                out.append(f"{pad}}} else {{")
                _block(node.else_block, out, indent + 4)
            out.append(f"{pad}}}")
        elif isinstance(node, Statement):
            out.append(f"{pad}{node.dest.path} = {_expr(node.value)};")


def print_program(program: P4Program) -> str:
    """Render a program as P4-16-style source text."""
    out: List[str] = []
    out.append(f"// P4 model: {program.name} (role: {program.role})")
    out.append(f'@role("{program.role}")')
    out.append(f'@parser("{program.parser.pattern}")')
    out.append("")
    for header in program.headers:
        out.append(f"header {header.name}_t {{")
        out.extend(f"    bit<{width}> {fname};" for fname, width in header.fields)
        out.append("}")
        out.append("")
    out.append("struct metadata_t {")
    out.extend(f"    bit<{width}> {name};" for name, width in program.metadata)
    out.append("}")
    out.append("")
    out.append(f"control {program.name}_ingress(inout headers_t headers,")
    out.append("                                inout metadata_t meta) {")
    emitted = set()
    for table in program.tables():
        for ref in tuple(table.actions) + (ast.ActionRef(table.default_action),):
            if ref.action.name in emitted:
                continue
            emitted.add(ref.action.name)
            _action(ref.action, out)
    for table in program.tables():
        _table(table, out)
    out.append("    apply {")
    _block(program.ingress, out, 8)
    out.append("    }")
    out.append("}")
    if program.egress.nodes:
        out.append("")
        out.append(f"control {program.name}_egress(inout headers_t headers,")
        out.append("                               inout metadata_t meta) {")
        out.append("    apply {")
        _block(program.egress, out, 8)
        out.append("    }")
        out.append("}")
    return "\n".join(out) + "\n"
