"""The P4 model IR.

This is a faithful subset of P4-16 sufficient for the SwitchV use case
(§3 "P4 Language Features"): headers and metadata, match-action tables with
``exact``/``lpm``/``ternary``/``optional`` keys, actions built from
assignments and primitives, single-pass control flow (``if`` + table
application; no loops, no table reuse), and a restricted parser abstraction.
Header stacks, unions and registers are deliberately absent — the paper did
not need them either.

All behaviour-bearing nodes are pure data; the concrete interpreter
(:mod:`repro.bmv2.interpreter`) and the symbolic executor
(:mod:`repro.symbolic.executor`) both walk this AST.

Field naming convention: dotted paths, e.g. ``"ipv4.dst_addr"`` for header
fields, ``"meta.vrf_id"`` for user metadata and ``"standard.egress_port"``
for standard/intrinsic metadata.  Primitive effects (drop, punt to CPU,
mirroring) desugar to assignments on reserved standard-metadata fields so
that both interpreters only ever execute assignments.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

# ----------------------------------------------------------------------
# Reserved standard-metadata fields.
# ----------------------------------------------------------------------

STANDARD_FIELDS: Dict[str, int] = {
    "standard.ingress_port": 16,
    "standard.egress_port": 16,
    "standard.drop": 1,
    "standard.punt": 1,  # packet-in: copy/redirect to the controller
    "standard.mirror_port": 16,  # SAI mirroring target port (0 = none)
    "standard.mirror_session": 16,  # logical clone-session id (modeling artifact)
    "standard.vlan_id": 12,
}

CPU_PORT = 0xFFF0  # distinguished port value meaning "the controller"
DROP_PORT = 0xFFFF  # distinguished port value meaning "dropped"


class MatchKind(enum.Enum):
    """P4Runtime match kinds supported by the model."""

    EXACT = "exact"
    LPM = "lpm"
    TERNARY = "ternary"
    OPTIONAL = "optional"


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FieldRef:
    """A reference to a header/metadata field by dotted path."""

    path: str

    def __repr__(self) -> str:
        return self.path


@dataclass(frozen=True)
class Const:
    """An integer literal with an explicit width."""

    value: int
    width: int

    def __repr__(self) -> str:
        return f"{self.value}w{self.width}"


@dataclass(frozen=True)
class Param:
    """A reference to an action parameter (valid only in action bodies)."""

    name: str

    def __repr__(self) -> str:
        return f"${self.name}"


@dataclass(frozen=True)
class BinOp:
    """Bitvector binary operation: ``+ - & | ^`` (same-width operands)."""

    op: str
    left: "Expr"
    right: "Expr"

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True)
class HashExpr:
    """A black-box hash over the given fields (§3 "Hashing").

    The paper models hashing as an unspecified free operation: the symbolic
    executor treats the result as an unconstrained variable, and BMv2 is run
    with round-robin hashing to enumerate the set of admissible behaviours.
    ``width`` is the bit-width of the hash output.
    """

    fields: Tuple[FieldRef, ...]
    width: int
    label: str = "hash"

    def __repr__(self) -> str:
        inner = ", ".join(f.path for f in self.fields)
        return f"{self.label}({inner})"


Expr = Union[FieldRef, Const, Param, BinOp, HashExpr]


# Boolean expressions (conditions in `if` statements).


@dataclass(frozen=True)
class Cmp:
    """Comparison producing a boolean: op in ``== != < <= > >=`` (unsigned)."""

    op: str
    left: Expr
    right: Expr

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True)
class IsValid:
    """Header validity test, e.g. ``headers.ipv4.isValid()``."""

    header: str

    def __repr__(self) -> str:
        return f"{self.header}.isValid()"


@dataclass(frozen=True)
class BoolOp:
    """Boolean connective over conditions: op in ``and or not``."""

    op: str
    args: Tuple["BoolExpr", ...]

    def __repr__(self) -> str:
        if self.op == "not":
            return f"!({self.args[0]!r})"
        joiner = f" {self.op} "
        return "(" + joiner.join(repr(a) for a in self.args) + ")"


BoolExpr = Union[Cmp, IsValid, BoolOp]


def and_(*args: BoolExpr) -> BoolExpr:
    return BoolOp("and", tuple(args))


def or_(*args: BoolExpr) -> BoolExpr:
    return BoolOp("or", tuple(args))


def not_(arg: BoolExpr) -> BoolExpr:
    return BoolOp("not", (arg,))


# ----------------------------------------------------------------------
# Statements (action bodies)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Statement:
    """An assignment ``dest := value``.

    This is the only statement kind: drop/punt/mirror primitives are
    constructed via the helpers below and desugar to assignments on
    standard-metadata fields.
    """

    dest: FieldRef
    value: Expr

    def __repr__(self) -> str:
        return f"{self.dest!r} := {self.value!r}"


def assign(dest: str, value: Expr) -> Statement:
    return Statement(FieldRef(dest), value)


def mark_to_drop() -> Statement:
    return assign("standard.drop", Const(1, 1))


def punt_to_cpu() -> Statement:
    return assign("standard.punt", Const(1, 1))


def set_egress_port(value: Expr) -> Statement:
    return assign("standard.egress_port", value)


def mirror_to(port: Expr) -> Statement:
    return assign("standard.mirror_port", port)


# ----------------------------------------------------------------------
# Actions
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ActionParamSpec:
    """Declared action parameter: name, bit width, optional @refers_to.

    ``refers_to`` is a single ``(table, key)`` pair or a tuple of them: a
    parameter may participate in references to several tables (the SAI-P4
    pattern where a next hop's ``router_interface_id`` refers to both the
    RIF table and — jointly with ``neighbor_id`` — the neighbor table).
    Parameters of one action referring to the same table form a *composite*
    reference: a single entry must match all of them (see
    :mod:`repro.p4.constraints.refs`).
    """

    name: str
    width: int
    refers_to: Optional[Tuple] = None  # (table, key) or ((table, key), ...)

    def references(self) -> Tuple[Tuple[str, str], ...]:
        """The parameter's reference edges, normalised to a tuple of pairs."""
        if self.refers_to is None:
            return ()
        if self.refers_to and isinstance(self.refers_to[0], str):
            return (self.refers_to,)
        return tuple(self.refers_to)


@dataclass(frozen=True)
class Action:
    """A P4 action: named parameters and a straight-line body."""

    name: str
    params: Tuple[ActionParamSpec, ...] = ()
    body: Tuple[Statement, ...] = ()

    def param(self, name: str) -> ActionParamSpec:
        for p in self.params:
            if p.name == name:
                return p
        raise KeyError(f"action {self.name} has no parameter {name}")

    def __repr__(self) -> str:
        params = ", ".join(f"{p.name}:{p.width}" for p in self.params)
        return f"action {self.name}({params})"


NO_ACTION = Action("NoAction")


# ----------------------------------------------------------------------
# Tables
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TableKey:
    """A match key: the field it matches, the match kind, and annotations."""

    field: FieldRef
    kind: MatchKind
    name: Optional[str] = None  # P4Runtime match-field name; defaults to path
    refers_to: Optional[Tuple[str, str]] = None  # @refers_to(table, key)

    @property
    def key_name(self) -> str:
        return self.name if self.name is not None else self.field.path


@dataclass(frozen=True)
class ActionProfile:
    """One-shot action-selector implementation (WCMP groups, §4.2).

    Tables with an action profile map an entry to a *set* of weighted
    actions; member selection happens via the black-box hash.
    """

    name: str
    max_group_size: int = 256
    selector_fields: Tuple[FieldRef, ...] = ()


@dataclass(frozen=True)
class ActionRef:
    """An action allowed in a table, with scope annotations."""

    action: Action
    # Actions annotated @defaultonly may only be used as the default action;
    # @tableonly actions may not be used as the default action.
    default_only: bool = False
    table_only: bool = False


@dataclass(frozen=True)
class Table:
    """A match-action table (one SAI object, §3)."""

    name: str
    keys: Tuple[TableKey, ...]
    actions: Tuple[ActionRef, ...]
    default_action: Action = NO_ACTION
    size: int = 1024  # minimum guaranteed capacity (resource limit)
    entry_restriction: Optional[str] = None  # P4-constraints source text
    implementation: Optional[ActionProfile] = None
    const_default: bool = True
    # Tables whose P4 semantics is a no-op but whose switch semantics
    # allocates a bounded internal resource (§3 "Bounded Internal
    # Resources"), e.g. the VRF table.
    is_resource_table: bool = False
    # Logical tables that are modeling artifacts not programmable by the
    # controller (§3 "Mirror Sessions").
    is_logical: bool = False

    def key(self, name: str) -> TableKey:
        for k in self.keys:
            if k.key_name == name:
                return k
        raise KeyError(f"table {self.name} has no key {name}")

    def action(self, name: str) -> Action:
        for ref in self.actions:
            if ref.action.name == name:
                return ref.action
        raise KeyError(f"table {self.name} has no action {name}")

    @property
    def action_names(self) -> List[str]:
        return [ref.action.name for ref in self.actions]

    @property
    def has_ternary_or_optional(self) -> bool:
        return any(k.kind in (MatchKind.TERNARY, MatchKind.OPTIONAL) for k in self.keys)

    @property
    def requires_priority(self) -> bool:
        """Per the P4Runtime spec, entries need an explicit priority iff the
        table has at least one ternary/optional (range) key."""
        return self.has_ternary_or_optional

    def __repr__(self) -> str:
        return f"table {self.name}[{len(self.keys)} keys, {len(self.actions)} actions]"


# ----------------------------------------------------------------------
# Control flow
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TableApply:
    """Apply a table at this point in the pipeline."""

    table: Table

    def __repr__(self) -> str:
        return f"{self.table.name}.apply()"


@dataclass(frozen=True)
class If:
    """Conditional: ``if (cond) then_block else else_block``."""

    cond: BoolExpr
    then_block: "Seq"
    else_block: "Seq"
    # Stable label used by coverage bookkeeping; derived from position if
    # not given.
    label: str = ""


@dataclass(frozen=True)
class Seq:
    """A block of control-flow nodes executed in order."""

    nodes: Tuple[Union[TableApply, If, Statement], ...] = ()

    def __iter__(self):
        return iter(self.nodes)


def seq(*nodes) -> Seq:
    return Seq(tuple(nodes))


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ParserSpec:
    """Semi-hardcoded parser (§5 "Limitations").

    The paper deprioritised generic parsers and relied on hardcoded support
    for the parser patterns of interest.  We model the parser as the name of
    a registered pattern from :mod:`repro.bmv2.headers`; both the concrete
    and symbolic sides share the pattern registry.
    """

    pattern: str = "ethernet_ipv4_ipv6"


# ----------------------------------------------------------------------
# The program
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class HeaderType:
    """A header type: ordered (field name, bit width) pairs."""

    name: str
    fields: Tuple[Tuple[str, int], ...]

    @property
    def bit_width(self) -> int:
        return sum(w for _, w in self.fields)

    def field_width(self, name: str) -> int:
        for fname, width in self.fields:
            if fname == name:
                return width
        raise KeyError(f"header {self.name} has no field {name}")


@dataclass(frozen=True)
class P4Program:
    """A complete P4 model: the formal specification of one switch role."""

    name: str
    headers: Tuple[HeaderType, ...]
    metadata: Tuple[Tuple[str, int], ...]  # user metadata: (name, width)
    parser: ParserSpec
    ingress: Seq
    egress: Seq = field(default_factory=Seq)
    role: str = "unspecified"

    # ------------------------------------------------------------------
    # Lookup helpers
    # ------------------------------------------------------------------
    def header(self, name: str) -> HeaderType:
        for h in self.headers:
            if h.name == name:
                return h
        raise KeyError(f"program {self.name} has no header {name}")

    def field_width(self, path: str) -> int:
        """Bit width of a dotted field path (header, meta or standard)."""
        if path in STANDARD_FIELDS:
            return STANDARD_FIELDS[path]
        prefix, _, fname = path.partition(".")
        if prefix == "meta":
            for name, width in self.metadata:
                if name == fname:
                    return width
            raise KeyError(f"program {self.name} has no metadata field {fname}")
        return self.header(prefix).field_width(fname)

    def tables(self) -> List[Table]:
        """All tables in pipeline order (ingress then egress)."""
        out: List[Table] = []

        def walk(block: Seq) -> None:
            for node in block:
                if isinstance(node, TableApply):
                    if node.table not in out:
                        out.append(node.table)
                elif isinstance(node, If):
                    walk(node.then_block)
                    walk(node.else_block)

        walk(self.ingress)
        walk(self.egress)
        return out

    def programmable_tables(self) -> List[Table]:
        """Tables exposed via the control-plane API (excludes logical ones)."""
        return [t for t in self.tables() if not t.is_logical]

    def table(self, name: str) -> Table:
        for t in self.tables():
            if t.name == name:
                return t
        raise KeyError(f"program {self.name} has no table {name}")

    def actions(self) -> List[Action]:
        """All distinct actions across tables, in first-seen order."""
        out: List[Action] = []
        seen = set()
        for t in self.tables():
            for ref in t.actions:
                if ref.action.name not in seen:
                    seen.add(ref.action.name)
                    out.append(ref.action)
        return out

    def conditionals(self) -> List[If]:
        """All `if` nodes, in pipeline order, with stable indices."""
        out: List[If] = []

        def walk(block: Seq) -> None:
            for node in block:
                if isinstance(node, If):
                    out.append(node)
                    walk(node.then_block)
                    walk(node.else_block)

        walk(self.ingress)
        walk(self.egress)
        return out

    def all_field_paths(self) -> List[str]:
        """Every addressable field path: headers, metadata, standard."""
        out: List[str] = []
        for h in self.headers:
            out.extend(f"{h.name}.{fname}" for fname, _ in h.fields)
        out.extend(f"meta.{name}" for name, _ in self.metadata)
        out.extend(STANDARD_FIELDS)
        return out

    def __repr__(self) -> str:
        return f"P4Program({self.name}, role={self.role}, {len(self.tables())} tables)"
