"""The P4 model IR.

This is a faithful subset of P4-16 sufficient for the SwitchV use case
(§3 "P4 Language Features"): headers and metadata, match-action tables with
``exact``/``lpm``/``ternary``/``optional`` keys, actions built from
assignments and primitives, single-pass control flow (``if`` + table
application; no loops, no table reuse), and a restricted parser abstraction.
Header stacks, unions and registers are deliberately absent — the paper did
not need them either.

All behaviour-bearing nodes are pure data; the concrete interpreter
(:mod:`repro.bmv2.interpreter`) and the symbolic executor
(:mod:`repro.symbolic.executor`) both walk this AST.

Field naming convention: dotted paths, e.g. ``"ipv4.dst_addr"`` for header
fields, ``"meta.vrf_id"`` for user metadata and ``"standard.egress_port"``
for standard/intrinsic metadata.  Primitive effects (drop, punt to CPU,
mirroring) desugar to assignments on reserved standard-metadata fields so
that both interpreters only ever execute assignments.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

# ----------------------------------------------------------------------
# Reserved standard-metadata fields.
# ----------------------------------------------------------------------

STANDARD_FIELDS: Dict[str, int] = {
    "standard.ingress_port": 16,
    "standard.egress_port": 16,
    "standard.drop": 1,
    "standard.punt": 1,  # packet-in: copy/redirect to the controller
    "standard.mirror_port": 16,  # SAI mirroring target port (0 = none)
    "standard.mirror_session": 16,  # logical clone-session id (modeling artifact)
    "standard.vlan_id": 12,
}

CPU_PORT = 0xFFF0  # distinguished port value meaning "the controller"
DROP_PORT = 0xFFFF  # distinguished port value meaning "dropped"


class ModelConstructionError(ValueError):
    """An IR node was built that cannot mean anything.

    Raised at *construction* time for mistakes that need no program context
    (a boolean where a bitvector belongs, two literals of different widths,
    a body referencing an undeclared parameter).  Containers (``Action``,
    ``Table``, ``If``) prefix their messages with the same location
    vocabulary the analyzer's diagnostics use — ``action <name>:``,
    ``table <name>:``, ``if <label>:`` — so a constructor crash and a
    lint finding point at the same place.  Mistakes that *do* need program
    context (field widths, reference targets) are the analyzer's job:
    :mod:`repro.analysis`.
    """


class MatchKind(enum.Enum):
    """P4Runtime match kinds supported by the model."""

    EXACT = "exact"
    LPM = "lpm"
    TERNARY = "ternary"
    OPTIONAL = "optional"


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FieldRef:
    """A reference to a header/metadata field by dotted path."""

    path: str

    def __repr__(self) -> str:
        return self.path


@dataclass(frozen=True)
class Const:
    """An integer literal with an explicit width."""

    value: int
    width: int

    def __post_init__(self) -> None:
        if self.width < 0:
            raise ModelConstructionError(f"constant width {self.width} is negative")
        if self.value < 0:
            raise ModelConstructionError(
                f"constant {self.value} is negative (bitvectors are unsigned)"
            )
        if self.width and self.value >> self.width:
            raise ModelConstructionError(
                f"constant {self.value} does not fit in {self.width} bit(s)"
            )

    def __repr__(self) -> str:
        return f"{self.value}w{self.width}"


@dataclass(frozen=True)
class Param:
    """A reference to an action parameter (valid only in action bodies)."""

    name: str

    def __repr__(self) -> str:
        return f"${self.name}"


@dataclass(frozen=True)
class BinOp:
    """Bitvector binary operation: ``+ - & | ^`` (same-width operands)."""

    op: str
    left: "Expr"
    right: "Expr"

    def __post_init__(self) -> None:
        if self.op not in ("+", "-", "&", "|", "^"):
            raise ModelConstructionError(f"unknown binary operator {self.op!r}")
        _require_bitvector_operand(self.left, f"operator {self.op}")
        _require_bitvector_operand(self.right, f"operator {self.op}")
        _check_literal_widths(self.left, self.right, f"operator {self.op}")

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True)
class HashExpr:
    """A black-box hash over the given fields (§3 "Hashing").

    The paper models hashing as an unspecified free operation: the symbolic
    executor treats the result as an unconstrained variable, and BMv2 is run
    with round-robin hashing to enumerate the set of admissible behaviours.
    ``width`` is the bit-width of the hash output.
    """

    fields: Tuple[FieldRef, ...]
    width: int
    label: str = "hash"

    def __repr__(self) -> str:
        inner = ", ".join(f.path for f in self.fields)
        return f"{self.label}({inner})"


Expr = Union[FieldRef, Const, Param, BinOp, HashExpr]


# Boolean expressions (conditions in `if` statements).


@dataclass(frozen=True)
class Cmp:
    """Comparison producing a boolean: op in ``== != < <= > >=`` (unsigned)."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in ("==", "!=", "<", "<=", ">", ">="):
            raise ModelConstructionError(f"unknown comparison operator {self.op!r}")
        _require_bitvector_operand(self.left, f"comparison {self.op}")
        _require_bitvector_operand(self.right, f"comparison {self.op}")
        _check_literal_widths(self.left, self.right, f"comparison {self.op}")

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True)
class IsValid:
    """Header validity test, e.g. ``headers.ipv4.isValid()``."""

    header: str

    def __repr__(self) -> str:
        return f"{self.header}.isValid()"


@dataclass(frozen=True)
class BoolOp:
    """Boolean connective over conditions: op in ``and or not``."""

    op: str
    args: Tuple["BoolExpr", ...]

    def __post_init__(self) -> None:
        if self.op not in ("and", "or", "not"):
            raise ModelConstructionError(f"unknown boolean connective {self.op!r}")
        if self.op == "not" and len(self.args) != 1:
            raise ModelConstructionError(
                f"'not' takes exactly one argument, got {len(self.args)}"
            )
        if not self.args:
            raise ModelConstructionError(f"'{self.op}' needs at least one argument")
        for arg in self.args:
            _require_bool_operand(arg, f"connective {self.op}")

    def __repr__(self) -> str:
        if self.op == "not":
            return f"!({self.args[0]!r})"
        joiner = f" {self.op} "
        return "(" + joiner.join(repr(a) for a in self.args) + ")"


BoolExpr = Union[Cmp, IsValid, BoolOp]


def _require_bitvector_operand(node, where: str) -> None:
    """Sort check: boolean nodes cannot appear where a bitvector belongs.

    Resolved at call time (the boolean classes are defined below the
    bitvector ones), which is safe: no IR node is constructed while this
    module is still importing.
    """
    if isinstance(node, (Cmp, IsValid, BoolOp)):
        raise ModelConstructionError(
            f"{where}: operand {node!r} is boolean, expected a bitvector"
        )


def _require_bool_operand(node, where: str) -> None:
    if not isinstance(node, (Cmp, IsValid, BoolOp)):
        raise ModelConstructionError(
            f"{where}: operand {node!r} is a bitvector, expected a boolean"
        )


def _literal_width(node) -> Optional[int]:
    """The width of an expression when it is statically known *without*
    program context: literals and hashes carry one; fields and parameters
    resolve only against a program (the analyzer's job)."""
    if isinstance(node, Const):
        return node.width or None
    if isinstance(node, HashExpr):
        return node.width
    return None


def _check_literal_widths(left, right, where: str) -> None:
    lw, rw = _literal_width(left), _literal_width(right)
    if lw is not None and rw is not None and lw != rw:
        raise ModelConstructionError(
            f"{where}: operand widths differ ({left!r} is {lw} bit(s), "
            f"{right!r} is {rw} bit(s))"
        )


def and_(*args: BoolExpr) -> BoolExpr:
    return BoolOp("and", tuple(args))


def or_(*args: BoolExpr) -> BoolExpr:
    return BoolOp("or", tuple(args))


def not_(arg: BoolExpr) -> BoolExpr:
    return BoolOp("not", (arg,))


# ----------------------------------------------------------------------
# Statements (action bodies)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Statement:
    """An assignment ``dest := value``.

    This is the only statement kind: drop/punt/mirror primitives are
    constructed via the helpers below and desugar to assignments on
    standard-metadata fields.
    """

    dest: FieldRef
    value: Expr

    def __post_init__(self) -> None:
        if not isinstance(self.dest, FieldRef):
            raise ModelConstructionError(
                f"assignment destination must be a field, got {self.dest!r}"
            )
        _require_bitvector_operand(self.value, "assignment")

    def __repr__(self) -> str:
        return f"{self.dest!r} := {self.value!r}"


def assign(dest: str, value: Expr) -> Statement:
    return Statement(FieldRef(dest), value)


def mark_to_drop() -> Statement:
    return assign("standard.drop", Const(1, 1))


def punt_to_cpu() -> Statement:
    return assign("standard.punt", Const(1, 1))


def set_egress_port(value: Expr) -> Statement:
    return assign("standard.egress_port", value)


def mirror_to(port: Expr) -> Statement:
    return assign("standard.mirror_port", port)


# ----------------------------------------------------------------------
# Actions
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ActionParamSpec:
    """Declared action parameter: name, bit width, optional @refers_to.

    ``refers_to`` is a single ``(table, key)`` pair or a tuple of them: a
    parameter may participate in references to several tables (the SAI-P4
    pattern where a next hop's ``router_interface_id`` refers to both the
    RIF table and — jointly with ``neighbor_id`` — the neighbor table).
    Parameters of one action referring to the same table form a *composite*
    reference: a single entry must match all of them (see
    :mod:`repro.p4.constraints.refs`).
    """

    name: str
    width: int
    refers_to: Optional[Tuple] = None  # (table, key) or ((table, key), ...)

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ModelConstructionError(
                f"parameter {self.name}: width must be positive, got {self.width}"
            )

    def references(self) -> Tuple[Tuple[str, str], ...]:
        """The parameter's reference edges, normalised to a tuple of pairs."""
        if self.refers_to is None:
            return ()
        if self.refers_to and isinstance(self.refers_to[0], str):
            return (self.refers_to,)
        return tuple(self.refers_to)


@dataclass(frozen=True)
class Action:
    """A P4 action: named parameters and a straight-line body."""

    name: str
    params: Tuple[ActionParamSpec, ...] = ()
    body: Tuple[Statement, ...] = ()

    def __post_init__(self) -> None:
        env: Dict[str, int] = {}
        for p in self.params:
            if p.name in env:
                raise ModelConstructionError(
                    f"action {self.name}: duplicate parameter {p.name}"
                )
            env[p.name] = p.width

        def width_of(expr) -> Optional[int]:
            if isinstance(expr, Param):
                if expr.name not in env:
                    raise ModelConstructionError(
                        f"action {self.name}: body references undeclared "
                        f"parameter ${expr.name}"
                    )
                return env[expr.name]
            if isinstance(expr, BinOp):
                lw, rw = width_of(expr.left), width_of(expr.right)
                if lw is not None and rw is not None and lw != rw:
                    raise ModelConstructionError(
                        f"action {self.name}: operand widths differ in "
                        f"{expr!r} ({lw} vs {rw} bit(s))"
                    )
                return lw if lw is not None else rw
            return _literal_width(expr)

        for stmt in self.body:
            width_of(stmt.value)

    def param(self, name: str) -> ActionParamSpec:
        for p in self.params:
            if p.name == name:
                return p
        raise KeyError(f"action {self.name} has no parameter {name}")

    def __repr__(self) -> str:
        params = ", ".join(f"{p.name}:{p.width}" for p in self.params)
        return f"action {self.name}({params})"


NO_ACTION = Action("NoAction")


# ----------------------------------------------------------------------
# Tables
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TableKey:
    """A match key: the field it matches, the match kind, and annotations."""

    field: FieldRef
    kind: MatchKind
    name: Optional[str] = None  # P4Runtime match-field name; defaults to path
    refers_to: Optional[Tuple[str, str]] = None  # @refers_to(table, key)

    @property
    def key_name(self) -> str:
        return self.name if self.name is not None else self.field.path


@dataclass(frozen=True)
class ActionProfile:
    """One-shot action-selector implementation (WCMP groups, §4.2).

    Tables with an action profile map an entry to a *set* of weighted
    actions; member selection happens via the black-box hash.
    """

    name: str
    max_group_size: int = 256
    selector_fields: Tuple[FieldRef, ...] = ()


@dataclass(frozen=True)
class ActionRef:
    """An action allowed in a table, with scope annotations."""

    action: Action
    # Actions annotated @defaultonly may only be used as the default action;
    # @tableonly actions may not be used as the default action.
    default_only: bool = False
    table_only: bool = False


@dataclass(frozen=True)
class Table:
    """A match-action table (one SAI object, §3)."""

    name: str
    keys: Tuple[TableKey, ...]
    actions: Tuple[ActionRef, ...]
    default_action: Action = NO_ACTION
    size: int = 1024  # minimum guaranteed capacity (resource limit)
    entry_restriction: Optional[str] = None  # P4-constraints source text
    implementation: Optional[ActionProfile] = None
    const_default: bool = True
    # Tables whose P4 semantics is a no-op but whose switch semantics
    # allocates a bounded internal resource (§3 "Bounded Internal
    # Resources"), e.g. the VRF table.
    is_resource_table: bool = False
    # Logical tables that are modeling artifacts not programmable by the
    # controller (§3 "Mirror Sessions").
    is_logical: bool = False

    def __post_init__(self) -> None:
        # Duplicate key names make P4Runtime match-field ids ambiguous.
        # The entry_restriction text is deliberately NOT parsed here: a
        # malformed restriction is a model artifact the oracle/analyzer
        # report in context, and tests construct them on purpose.
        seen = set()
        for k in self.keys:
            if k.key_name in seen:
                raise ModelConstructionError(
                    f"table {self.name}: duplicate key {k.key_name}"
                )
            seen.add(k.key_name)
        for ref in self.actions:
            if not isinstance(ref, ActionRef):
                raise ModelConstructionError(
                    f"table {self.name}: actions must be ActionRef, "
                    f"got {ref!r}"
                )

    def key(self, name: str) -> TableKey:
        for k in self.keys:
            if k.key_name == name:
                return k
        raise KeyError(f"table {self.name} has no key {name}")

    def action(self, name: str) -> Action:
        for ref in self.actions:
            if ref.action.name == name:
                return ref.action
        raise KeyError(f"table {self.name} has no action {name}")

    @property
    def action_names(self) -> List[str]:
        return [ref.action.name for ref in self.actions]

    @property
    def has_ternary_or_optional(self) -> bool:
        return any(k.kind in (MatchKind.TERNARY, MatchKind.OPTIONAL) for k in self.keys)

    @property
    def requires_priority(self) -> bool:
        """Per the P4Runtime spec, entries need an explicit priority iff the
        table has at least one ternary/optional (range) key."""
        return self.has_ternary_or_optional

    def __repr__(self) -> str:
        return f"table {self.name}[{len(self.keys)} keys, {len(self.actions)} actions]"


# ----------------------------------------------------------------------
# Control flow
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TableApply:
    """Apply a table at this point in the pipeline."""

    table: Table

    def __repr__(self) -> str:
        return f"{self.table.name}.apply()"


@dataclass(frozen=True)
class If:
    """Conditional: ``if (cond) then_block else else_block``."""

    cond: BoolExpr
    then_block: "Seq"
    else_block: "Seq"
    # Stable label used by coverage bookkeeping; derived from position if
    # not given.
    label: str = ""

    def __post_init__(self) -> None:
        where = f"if {self.label}" if self.label else "if"
        if not isinstance(self.cond, (Cmp, IsValid, BoolOp)):
            raise ModelConstructionError(
                f"{where}: condition {self.cond!r} is not boolean"
            )
        for block_name, block in (("then", self.then_block), ("else", self.else_block)):
            if not isinstance(block, Seq):
                raise ModelConstructionError(
                    f"{where}: {block_name} branch must be a Seq, got {block!r}"
                )


@dataclass(frozen=True)
class Seq:
    """A block of control-flow nodes executed in order."""

    nodes: Tuple[Union[TableApply, If, Statement], ...] = ()

    def __iter__(self):
        return iter(self.nodes)


def seq(*nodes) -> Seq:
    return Seq(tuple(nodes))


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ParserSpec:
    """Semi-hardcoded parser (§5 "Limitations").

    The paper deprioritised generic parsers and relied on hardcoded support
    for the parser patterns of interest.  We model the parser as the name of
    a registered pattern from :mod:`repro.bmv2.headers`; both the concrete
    and symbolic sides share the pattern registry.
    """

    pattern: str = "ethernet_ipv4_ipv6"


# ----------------------------------------------------------------------
# The program
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class HeaderType:
    """A header type: ordered (field name, bit width) pairs."""

    name: str
    fields: Tuple[Tuple[str, int], ...]

    @property
    def bit_width(self) -> int:
        return sum(w for _, w in self.fields)

    def field_width(self, name: str) -> int:
        for fname, width in self.fields:
            if fname == name:
                return width
        raise KeyError(f"header {self.name} has no field {name}")


@dataclass(frozen=True)
class P4Program:
    """A complete P4 model: the formal specification of one switch role."""

    name: str
    headers: Tuple[HeaderType, ...]
    metadata: Tuple[Tuple[str, int], ...]  # user metadata: (name, width)
    parser: ParserSpec
    ingress: Seq
    egress: Seq = field(default_factory=Seq)
    role: str = "unspecified"

    # ------------------------------------------------------------------
    # Lookup helpers
    # ------------------------------------------------------------------
    def header(self, name: str) -> HeaderType:
        for h in self.headers:
            if h.name == name:
                return h
        raise KeyError(f"program {self.name} has no header {name}")

    def field_width(self, path: str) -> int:
        """Bit width of a dotted field path (header, meta or standard)."""
        if path in STANDARD_FIELDS:
            return STANDARD_FIELDS[path]
        prefix, _, fname = path.partition(".")
        if prefix == "meta":
            for name, width in self.metadata:
                if name == fname:
                    return width
            raise KeyError(f"program {self.name} has no metadata field {fname}")
        return self.header(prefix).field_width(fname)

    def tables(self) -> List[Table]:
        """All tables in pipeline order (ingress then egress)."""
        out: List[Table] = []

        def walk(block: Seq) -> None:
            for node in block:
                if isinstance(node, TableApply):
                    if node.table not in out:
                        out.append(node.table)
                elif isinstance(node, If):
                    walk(node.then_block)
                    walk(node.else_block)

        walk(self.ingress)
        walk(self.egress)
        return out

    def programmable_tables(self) -> List[Table]:
        """Tables exposed via the control-plane API (excludes logical ones)."""
        return [t for t in self.tables() if not t.is_logical]

    def table(self, name: str) -> Table:
        for t in self.tables():
            if t.name == name:
                return t
        raise KeyError(f"program {self.name} has no table {name}")

    def actions(self) -> List[Action]:
        """All distinct actions across tables, in first-seen order."""
        out: List[Action] = []
        seen = set()
        for t in self.tables():
            for ref in t.actions:
                if ref.action.name not in seen:
                    seen.add(ref.action.name)
                    out.append(ref.action)
        return out

    def conditionals(self) -> List[If]:
        """All `if` nodes, in pipeline order, with stable indices."""
        out: List[If] = []

        def walk(block: Seq) -> None:
            for node in block:
                if isinstance(node, If):
                    out.append(node)
                    walk(node.then_block)
                    walk(node.else_block)

        walk(self.ingress)
        walk(self.egress)
        return out

    def all_field_paths(self) -> List[str]:
        """Every addressable field path: headers, metadata, standard."""
        out: List[str] = []
        for h in self.headers:
            out.extend(f"{h.name}.{fname}" for fname, _ in h.fields)
        out.extend(f"meta.{name}" for name, _ in self.metadata)
        out.extend(STANDARD_FIELDS)
        return out

    def __repr__(self) -> str:
        return f"P4Program({self.name}, role={self.role}, {len(self.tables())} tables)"
