"""P4Info: the control-plane catalogue derived from a P4 program.

In the real system the P4 compiler emits a ``P4Info`` protobuf enumerating
every table, match field, action and action parameter with a numeric ID; the
P4Runtime protocol addresses objects exclusively by these IDs.  p4-fuzzer's
request generator and the switch's P4Runtime server both operate on P4Info,
so faithful ID plumbing matters: one of the paper's Appendix-A bugs
("Incorrect handling of zero bytes in IDs") lives exactly here.

IDs are deterministic: stable across runs for the same program, derived from
object names.  The P4Runtime convention reserves the high byte of an ID for
the object type prefix; we follow that.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.p4.ast import Action, ActionProfile, MatchKind, P4Program

# P4Runtime object-type ID prefixes (from the P4Runtime specification).
TABLE_PREFIX = 0x02
ACTION_PREFIX = 0x01
ACTION_PROFILE_PREFIX = 0x11


def _stable_id(prefix: int, name: str) -> int:
    """A deterministic 32-bit ID with the given type prefix.

    The low 24 bits are a truncated digest of the name, forced non-zero
    (ID 0 is reserved/invalid in P4Runtime).
    """
    digest = hashlib.sha256(name.encode()).digest()
    low = int.from_bytes(digest[:3], "big")
    if low == 0:
        low = 1
    return (prefix << 24) | low


@dataclass(frozen=True)
class MatchFieldInfo:
    id: int  # 1-based position within the table
    name: str
    bitwidth: int
    match_type: MatchKind


@dataclass(frozen=True)
class ActionParamInfo:
    id: int  # 1-based position within the action
    name: str
    bitwidth: int
    # Normalised reference edges: zero or more (table, key) pairs.
    refers_to: Tuple[Tuple[str, str], ...] = ()


@dataclass(frozen=True)
class ActionInfo:
    id: int
    name: str
    params: Tuple[ActionParamInfo, ...]

    def param_by_id(self, param_id: int) -> Optional[ActionParamInfo]:
        for p in self.params:
            if p.id == param_id:
                return p
        return None


@dataclass(frozen=True)
class TableInfo:
    id: int
    name: str
    match_fields: Tuple[MatchFieldInfo, ...]
    action_ids: Tuple[int, ...]  # actions usable in entries
    default_only_action_ids: Tuple[int, ...]
    size: int
    requires_priority: bool
    implementation_id: int = 0  # action-profile id, 0 if direct-action table
    entry_restriction: Optional[str] = None

    def match_field_by_id(self, field_id: int) -> Optional[MatchFieldInfo]:
        for mf in self.match_fields:
            if mf.id == field_id:
                return mf
        return None

    def match_field_by_name(self, name: str) -> Optional[MatchFieldInfo]:
        for mf in self.match_fields:
            if mf.name == name:
                return mf
        return None


@dataclass(frozen=True)
class ActionProfileInfo:
    id: int
    name: str
    max_group_size: int
    table_ids: Tuple[int, ...]


@dataclass
class P4Info:
    """The complete catalogue for one P4 program."""

    program_name: str
    tables: Dict[int, TableInfo] = field(default_factory=dict)
    actions: Dict[int, ActionInfo] = field(default_factory=dict)
    action_profiles: Dict[int, ActionProfileInfo] = field(default_factory=dict)
    # refers_to edges: (table_name, key_or_param_name) -> (ref table, ref key)
    references: Dict[Tuple[str, str], Tuple[str, str]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Lookups (by id and by name)
    # ------------------------------------------------------------------
    def table_by_name(self, name: str) -> Optional[TableInfo]:
        for t in self.tables.values():
            if t.name == name:
                return t
        return None

    def action_by_name(self, name: str) -> Optional[ActionInfo]:
        for a in self.actions.values():
            if a.name == name:
                return a
        return None

    def table_ids(self) -> List[int]:
        return sorted(self.tables)

    def action_ids(self) -> List[int]:
        return sorted(self.actions)

    def valid_action_ids_for(self, table_id: int) -> Tuple[int, ...]:
        info = self.tables.get(table_id)
        return info.action_ids if info else ()

    def fingerprint(self) -> str:
        """A digest of the catalogue; changes iff the API contract changes."""
        h = hashlib.sha256()
        h.update(self.program_name.encode())
        for tid in sorted(self.tables):
            t = self.tables[tid]
            h.update(
                repr(
                    (
                        tid,
                        t.name,
                        [(m.id, m.name, m.bitwidth, m.match_type.value) for m in t.match_fields],
                        t.action_ids,
                        t.size,
                        t.entry_restriction,
                    )
                ).encode()
            )
        for aid in sorted(self.actions):
            a = self.actions[aid]
            h.update(repr((aid, a.name, [(p.id, p.name, p.bitwidth) for p in a.params])).encode())
        return h.hexdigest()


def build_p4info(program: P4Program) -> P4Info:
    """Derive the P4Info catalogue from a program (compiler front-end role).

    Only programmable tables appear: logical tables (modeling artifacts,
    §3 "Mirror Sessions") are not part of the controller contract.
    """
    # Imported here: the constraints package depends on this module for the
    # reference-graph types, so a top-level import would be circular.
    from repro.p4.constraints.lang import normalize_constraint_text

    info = P4Info(program_name=program.name)

    def ensure_action(action: Action) -> int:
        aid = _stable_id(ACTION_PREFIX, action.name)
        if aid not in info.actions:
            params = tuple(
                ActionParamInfo(
                    id=i + 1, name=p.name, bitwidth=p.width, refers_to=p.references()
                )
                for i, p in enumerate(action.params)
            )
            info.actions[aid] = ActionInfo(id=aid, name=action.name, params=params)
            for p in action.params:
                for target in p.references():
                    info.references[(action.name, p.name)] = target
        return aid

    profile_tables: Dict[str, List[int]] = {}
    profile_specs: Dict[str, ActionProfile] = {}

    for table in program.programmable_tables():
        tid = _stable_id(TABLE_PREFIX, table.name)
        match_fields = tuple(
            MatchFieldInfo(
                id=i + 1,
                name=k.key_name,
                bitwidth=program.field_width(k.field.path),
                match_type=k.kind,
            )
            for i, k in enumerate(table.keys)
        )
        entry_action_ids = []
        default_only_ids = []
        for ref in table.actions:
            aid = ensure_action(ref.action)
            if ref.default_only:
                default_only_ids.append(aid)
            else:
                entry_action_ids.append(aid)
        ensure_action(table.default_action)
        impl_id = 0
        if table.implementation is not None:
            impl_id = _stable_id(ACTION_PROFILE_PREFIX, table.implementation.name)
            profile_tables.setdefault(table.implementation.name, []).append(tid)
            profile_specs[table.implementation.name] = table.implementation
        info.tables[tid] = TableInfo(
            id=tid,
            name=table.name,
            match_fields=match_fields,
            action_ids=tuple(entry_action_ids),
            default_only_action_ids=tuple(default_only_ids),
            size=table.size,
            requires_priority=table.requires_priority,
            implementation_id=impl_id,
            entry_restriction=(
                normalize_constraint_text(table.entry_restriction)
                if table.entry_restriction
                else None
            ),
        )
        for k in table.keys:
            if k.refers_to is not None:
                info.references[(table.name, k.key_name)] = k.refers_to

    for name, tids in profile_tables.items():
        pid = _stable_id(ACTION_PROFILE_PREFIX, name)
        info.action_profiles[pid] = ActionProfileInfo(
            id=pid,
            name=name,
            max_group_size=profile_specs[name].max_group_size,
            table_ids=tuple(tids),
        )
    return info
