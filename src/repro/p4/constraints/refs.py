"""@refers_to referential integrity (§3, §4.4).

A ``@refers_to(table, key)`` annotation on a match key or action parameter
means the annotated value must equal the value of an *existing* entry's key
in the referenced table.  When several parameters of one action refer to
different keys of the *same* table, they form a **composite reference**:
one entry of that table must match all of them jointly (the SAI pattern —
a next hop's ``(router_interface_id, neighbor_id)`` pair must name an
existing neighbor entry, not merely two values that appear somewhere).

Three subsystems consume this graph:

* the switch's P4Runtime layer rejects dangling inserts and orphaning
  deletes;
* p4-fuzzer's request generator picks referenced values from installed
  entries (consistent keysets for composites) or deliberately dangling
  values (the Invalid Reference mutation);
* the batcher sequences dependent updates into different batches, because a
  single Write's updates may execute in any order (§4 Example 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Set, Tuple

from repro.p4.p4info import P4Info
from repro.p4rt import codec
from repro.p4rt.messages import (
    ActionInvocation,
    ActionProfileActionSet,
    TableEntry,
)

# One entry's referenceable identity in a table: the set of (key, value)
# pairs its match contributes.
KeySet = FrozenSet[Tuple[str, int]]


@dataclass(frozen=True)
class Reference:
    """One outgoing reference: possibly-composite (key, value) demands."""

    source: str  # "<table>.<key>" or "<action>"
    target_table: str
    pairs: Tuple[Tuple[str, int], ...]  # (target key, value), jointly required

    @property
    def target_key(self) -> str:
        """First referenced key (for single-pair references / messages)."""
        return self.pairs[0][0]

    @property
    def value(self) -> int:
        """First referenced value (for single-pair references / messages)."""
        return self.pairs[0][1]


class AvailableState:
    """The referenceable keysets of a set of installed entries.

    Refcounted (distinct entries can export identical keysets, e.g. two
    priorities over the same matches) and incrementally maintainable, so
    long campaigns avoid rebuilding it per update.

    A per-pair inverted index ((table, key, value) -> keysets containing
    the pair) makes :meth:`satisfies` cost proportional to the *demand*,
    not to the number of installed keysets — the difference between O(1)
    and O(N) per referential-integrity check at production table sizes.
    """

    def __init__(self) -> None:
        self._by_table: Dict[str, Dict[KeySet, int]] = {}
        # (table, (key, value)) -> keysets currently available that contain
        # the pair.  Maintained only on 0<->1 refcount transitions.
        self._by_pair: Dict[Tuple[str, Tuple[str, int]], Set[KeySet]] = {}

    def add(self, table: str, keyset: KeySet) -> None:
        counts = self._by_table.setdefault(table, {})
        count = counts.get(keyset, 0)
        counts[keyset] = count + 1
        if count == 0:
            for pair in keyset:
                self._by_pair.setdefault((table, pair), set()).add(keyset)

    def remove(self, table: str, keyset: KeySet) -> None:
        counts = self._by_table.get(table)
        if not counts or keyset not in counts:
            return
        counts[keyset] -= 1
        if counts[keyset] <= 0:
            del counts[keyset]
            for pair in keyset:
                holders = self._by_pair.get((table, pair))
                if holders is not None:
                    holders.discard(keyset)
                    if not holders:
                        del self._by_pair[(table, pair)]

    def count(self, table: str, keyset: KeySet) -> int:
        """How many installed entries export exactly this keyset."""
        return self._by_table.get(table, {}).get(keyset, 0)

    def satisfying_keysets(self, table: str, pairs: Iterable[Tuple[str, int]]) -> Set[KeySet]:
        """Available keysets of ``table`` containing *all* of ``pairs``."""
        sets = []
        for pair in pairs:
            holders = self._by_pair.get((table, pair))
            if not holders:
                return set()
            sets.append(holders)
        if not sets:
            # An empty demand is satisfied by any keyset of the table.
            return set(self._by_table.get(table, ()))
        if len(sets) == 1:
            return set(sets[0])
        sets.sort(key=len)
        return sets[0].intersection(*sets[1:])

    def satisfies(self, reference: Reference) -> bool:
        return bool(
            self.satisfying_keysets(reference.target_table, reference.pairs)
        )

    def keysets(self, table: str) -> List[KeySet]:
        # Canonical order: dict iteration depends on insertion history, and
        # consumers feed these into seeded random choices — determinism of
        # fuzz campaigns requires a stable order here.
        return sorted(self._by_table.get(table, ()), key=lambda ks: sorted(ks))

    def copy(self) -> "AvailableState":
        clone = AvailableState()
        clone._by_table = {t: dict(c) for t, c in self._by_table.items()}
        clone._by_pair = {pair: set(ks) for pair, ks in self._by_pair.items()}
        return clone

    def __contains__(self, item: Tuple[str, str, int]) -> bool:
        table, key, value = item
        return bool(self._by_pair.get((table, (key, value))))


class ReferenceGraph:
    """The static reference structure of a P4 program plus query helpers."""

    def __init__(self, p4info: P4Info) -> None:
        self._p4info = p4info
        # Match-key edges: (table name, key name) -> (target table, key).
        self._key_edges: Dict[Tuple[str, str], Tuple[str, str]] = {}
        for (source, field), target in p4info.references.items():
            if p4info.table_by_name(source) is not None:
                self._key_edges[(source, field)] = target
        # Action edges, grouped into composites per target table:
        # action name -> target table -> [(param name, target key)].
        self._action_edges: Dict[str, Dict[str, List[Tuple[str, str]]]] = {}
        for action in p4info.actions.values():
            groups: Dict[str, List[Tuple[str, str]]] = {}
            for param in action.params:
                for table, key in param.refers_to:
                    groups.setdefault(table, []).append((param.name, key))
            if groups:
                self._action_edges[action.name] = groups

    @property
    def edges(self) -> Dict[Tuple[str, str], Tuple[str, str]]:
        """All reference edges, one representative target per source."""
        out = dict(self._key_edges)
        for action_name, groups in self._action_edges.items():
            for table, pairs in groups.items():
                for param_name, key in pairs:
                    out[(action_name, param_name)] = (table, key)
        return out

    def action_reference_groups(self, action_name: str) -> Dict[str, List[Tuple[str, str]]]:
        """target table -> [(param name, target key)] for one action."""
        return {t: list(pairs) for t, pairs in self._action_edges.get(action_name, {}).items()}

    def targets_of_table(self, table_name: str) -> List[Tuple[str, str]]:
        """Tables/keys that entries of ``table_name`` may reference."""
        info = self._p4info.table_by_name(table_name)
        if info is None:
            return []
        out: List[Tuple[str, str]] = [
            target
            for (source, _field), target in self._key_edges.items()
            if source == table_name
        ]
        for aid in info.action_ids:
            action = self._p4info.actions[aid]
            for table, pairs in self._action_edges.get(action.name, {}).items():
                out.extend((table, key) for _param, key in pairs)
        return out

    def is_referenced_table(self, table_name: str) -> bool:
        """Whether any edge points *at* this table."""
        if any(t == table_name for (t, _k) in self._key_edges.values()):
            return True
        return any(
            table_name in groups for groups in self._action_edges.values()
        )

    # ------------------------------------------------------------------
    # Entry-level reference extraction
    # ------------------------------------------------------------------
    def references_of(self, entry: TableEntry) -> List[Reference]:
        """All outgoing references of an entry (keys + action composites).

        Values that fail to decode are skipped: a malformed entry will be
        rejected on syntactic grounds before integrity is consulted.
        """
        table = self._p4info.tables.get(entry.table_id)
        if table is None:
            return []
        out: List[Reference] = []
        for match in entry.matches:
            mf = table.match_field_by_id(match.field_id)
            if mf is None:
                continue
            target = self._key_edges.get((table.name, mf.name))
            if target is None:
                continue
            try:
                value = codec.decode(match.value, mf.bitwidth, strict=False)
            except codec.CodecError:
                continue
            out.append(
                Reference(
                    source=f"{table.name}.{mf.name}",
                    target_table=target[0],
                    pairs=((target[1], value),),
                )
            )
        out.extend(self._action_references(entry))
        return out

    def _action_references(self, entry: TableEntry) -> List[Reference]:
        invocations: List[ActionInvocation] = []
        if isinstance(entry.action, ActionInvocation):
            invocations = [entry.action]
        elif isinstance(entry.action, ActionProfileActionSet):
            invocations = [m.action for m in entry.action.actions]
        out: List[Reference] = []
        for inv in invocations:
            action = self._p4info.actions.get(inv.action_id)
            if action is None:
                continue
            values: Dict[str, int] = {}
            for pid, data in inv.params:
                pinfo = action.param_by_id(pid)
                if pinfo is None:
                    continue
                try:
                    values[pinfo.name] = codec.decode(data, pinfo.bitwidth, strict=False)
                except codec.CodecError:
                    continue
            for target_table, pairs in self._action_edges.get(action.name, {}).items():
                demanded = tuple(
                    (key, values[param_name])
                    for param_name, key in pairs
                    if param_name in values
                )
                if demanded:
                    out.append(
                        Reference(
                            source=action.name,
                            target_table=target_table,
                            pairs=demanded,
                        )
                    )
        return out

    # ------------------------------------------------------------------
    # Values exported by an entry (what others may refer to)
    # ------------------------------------------------------------------
    def exported_keyset(self, entry: TableEntry) -> Optional[Tuple[str, KeySet]]:
        """The (table, keyset) this entry makes referenceable, if any."""
        table = self._p4info.tables.get(entry.table_id)
        if table is None:
            return None
        pairs = []
        for match in entry.matches:
            mf = table.match_field_by_id(match.field_id)
            if mf is None:
                continue
            try:
                value = codec.decode(match.value, mf.bitwidth, strict=False)
            except codec.CodecError:
                continue
            pairs.append((mf.name, value))
        if not pairs:
            return None
        return (table.name, frozenset(pairs))

    def exported_values(self, entry: TableEntry) -> List[Tuple[str, str, int]]:
        """(table, key, value) triples this entry makes referenceable."""
        exported = self.exported_keyset(entry)
        if exported is None:
            return []
        table, keyset = exported
        return [(table, key, value) for key, value in keyset]

    def collect_state(self, entries: Iterable[TableEntry]) -> AvailableState:
        """The referenceable state of a set of installed entries."""
        state = AvailableState()
        for entry in entries:
            exported = self.exported_keyset(entry)
            if exported is not None:
                state.add(*exported)
        return state

    # ------------------------------------------------------------------
    # Integrity checks against a state
    # ------------------------------------------------------------------
    def dangling_references(
        self, entry: TableEntry, available: AvailableState
    ) -> List[Reference]:
        """References of ``entry`` not satisfied by ``available``."""
        return [
            ref for ref in self.references_of(entry) if not available.satisfies(ref)
        ]

    def build_index(self) -> "ReferenceIndex":
        """An empty incremental integrity index over this graph."""
        return ReferenceIndex(self)

    def depends_on(self, entry: TableEntry, other: TableEntry) -> bool:
        """Whether ``entry`` references a keyset exported by ``other``.

        Used by the batcher: two such entries must not share a batch.  A
        composite reference depends on ``other`` if any demanded pair is
        provided by it.
        """
        exported = self.exported_keyset(other)
        if exported is None:
            return False
        table, keyset = exported
        for ref in self.references_of(entry):
            if ref.target_table != table:
                continue
            if any(pair in keyset for pair in ref.pairs):
                return True
        return False


# A demand shared by every entry that references the same joint keyset:
# (target table, the jointly-required (key, value) pairs).
Demand = Tuple[str, KeySet]


class ReferenceIndex:
    """Incrementally maintained referential integrity over an entry store.

    Mirrors a store of wire entries (the oracle's projection, or a switch's
    installed state) and answers the two hot integrity questions in time
    proportional to the *entry*, never to the store:

    * :meth:`dangling` — which of an entry's references the current state
      fails to satisfy (via the pair-indexed :class:`AvailableState`);
    * :meth:`would_orphan` — whether deleting one entry would leave any
      *other* entry with a dangling reference.

    The orphan check decomposes exactly as the linear rebuild does.
    Deleting D orphans iff (1) some other entry is *already* dangling in
    the full state (removal cannot repair it — the remaining state is a
    subset), or (2) D's exported keyset is the last copy (refcount 1) and
    some demand held by another entry is satisfied by that keyset alone.
    Both terms are answered from refcounted demand bookkeeping:
    ``_holders`` counts how many installed reference instances share each
    demand, ``_unsat`` tracks the demands unsatisfied in the full state,
    and ``_by_pair`` finds the demands a disappearing keyset could strand.
    """

    def __init__(self, refs: ReferenceGraph) -> None:
        self._refs = refs
        self.available = AvailableState()
        self._exports: Dict[Hashable, Tuple[str, KeySet]] = {}
        self._demands: Dict[Hashable, Tuple[Demand, ...]] = {}
        self._holders: Dict[Demand, int] = {}
        self._unsat: Dict[Demand, int] = {}  # demand -> unsatisfied instances
        self._by_pair: Dict[Tuple[str, Tuple[str, int]], Set[Demand]] = {}

    # ------------------------------------------------------------------
    # Store mirroring
    # ------------------------------------------------------------------
    def insert(self, key: Hashable, entry: TableEntry) -> None:
        exported = self._refs.exported_keyset(entry)
        if exported is not None:
            self._exports[key] = exported
            self._add_export(*exported)
        demands = tuple(
            (ref.target_table, frozenset(ref.pairs))
            for ref in self._refs.references_of(entry)
        )
        if demands:
            self._demands[key] = demands
            for demand in demands:
                self._register(demand)

    def delete(self, key: Hashable) -> None:
        for demand in self._demands.pop(key, ()):
            self._unregister(demand)
        exported = self._exports.pop(key, None)
        if exported is not None:
            self._remove_export(*exported)

    def replace(self, key: Hashable, entry: TableEntry) -> None:
        """MODIFY: same identity, possibly different references."""
        self.delete(key)
        self.insert(key, entry)

    def rebuild(self, items: Iterable[Tuple[Hashable, TableEntry]]) -> None:
        self.available = AvailableState()
        self._exports.clear()
        self._demands.clear()
        self._holders.clear()
        self._unsat.clear()
        self._by_pair.clear()
        for key, entry in items:
            self.insert(key, entry)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def dangling(self, entry: TableEntry) -> List[Reference]:
        return self._refs.dangling_references(entry, self.available)

    def would_orphan(self, key: Hashable) -> bool:
        mine: Dict[Demand, int] = {}
        for demand in self._demands.get(key, ()):
            mine[demand] = mine.get(demand, 0) + 1
        # (1) Any dangling reference held by another entry stays dangling.
        for demand, instances in self._unsat.items():
            if instances > mine.get(demand, 0):
                return True
        # (2) Demands whose only satisfier is this entry's exported keyset.
        exported = self._exports.get(key)
        if exported is None:
            return False
        table, keyset = exported
        if self.available.count(table, keyset) > 1:
            return False  # another entry exports the same keyset
        candidates: Set[Demand] = set()
        for pair in keyset:
            candidates.update(self._by_pair.get((table, pair), ()))
        for demand in candidates:
            target, pairs = demand
            if target != table or not pairs <= keyset:
                continue
            if self._holders.get(demand, 0) <= mine.get(demand, 0):
                continue  # held only by the entry being deleted
            if len(self.available.satisfying_keysets(target, pairs)) == 1:
                return True
        return False

    # ------------------------------------------------------------------
    # Demand bookkeeping
    # ------------------------------------------------------------------
    def _register(self, demand: Demand) -> None:
        count = self._holders.get(demand, 0)
        self._holders[demand] = count + 1
        if count == 0:
            target, pairs = demand
            for pair in pairs:
                self._by_pair.setdefault((target, pair), set()).add(demand)
            if not self.available.satisfying_keysets(target, pairs):
                self._unsat[demand] = 1
        elif demand in self._unsat:
            self._unsat[demand] += 1

    def _unregister(self, demand: Demand) -> None:
        count = self._holders.get(demand, 0)
        if count <= 1:
            self._holders.pop(demand, None)
            self._unsat.pop(demand, None)
            target, pairs = demand
            for pair in pairs:
                holders = self._by_pair.get((target, pair))
                if holders is not None:
                    holders.discard(demand)
                    if not holders:
                        del self._by_pair[(target, pair)]
            return
        self._holders[demand] = count - 1
        if demand in self._unsat:
            self._unsat[demand] -= 1
            if self._unsat[demand] <= 0:
                del self._unsat[demand]

    def _add_export(self, table: str, keyset: KeySet) -> None:
        fresh = self.available.count(table, keyset) == 0
        self.available.add(table, keyset)
        if not fresh:
            return
        # A newly available keyset can only *satisfy* demands.
        for pair in keyset:
            for demand in list(self._by_pair.get((table, pair), ())):
                if demand in self._unsat and demand[1] <= keyset:
                    del self._unsat[demand]

    def _remove_export(self, table: str, keyset: KeySet) -> None:
        self.available.remove(table, keyset)
        if self.available.count(table, keyset) > 0:
            return
        # The keyset left the available state: demands it covered may now
        # be unsatisfied.
        candidates: Set[Demand] = set()
        for pair in keyset:
            candidates.update(self._by_pair.get((table, pair), ()))
        for demand in candidates:
            target, pairs = demand
            if demand in self._unsat or not pairs <= keyset:
                continue
            if not self.available.satisfying_keysets(target, pairs):
                self._unsat[demand] = self._holders.get(demand, 0)
