"""@refers_to referential integrity (§3, §4.4).

A ``@refers_to(table, key)`` annotation on a match key or action parameter
means the annotated value must equal the value of an *existing* entry's key
in the referenced table.  When several parameters of one action refer to
different keys of the *same* table, they form a **composite reference**:
one entry of that table must match all of them jointly (the SAI pattern —
a next hop's ``(router_interface_id, neighbor_id)`` pair must name an
existing neighbor entry, not merely two values that appear somewhere).

Three subsystems consume this graph:

* the switch's P4Runtime layer rejects dangling inserts and orphaning
  deletes;
* p4-fuzzer's request generator picks referenced values from installed
  entries (consistent keysets for composites) or deliberately dangling
  values (the Invalid Reference mutation);
* the batcher sequences dependent updates into different batches, because a
  single Write's updates may execute in any order (§4 Example 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.p4.p4info import P4Info
from repro.p4rt import codec
from repro.p4rt.messages import (
    ActionInvocation,
    ActionProfileActionSet,
    TableEntry,
)

# One entry's referenceable identity in a table: the set of (key, value)
# pairs its match contributes.
KeySet = FrozenSet[Tuple[str, int]]


@dataclass(frozen=True)
class Reference:
    """One outgoing reference: possibly-composite (key, value) demands."""

    source: str  # "<table>.<key>" or "<action>"
    target_table: str
    pairs: Tuple[Tuple[str, int], ...]  # (target key, value), jointly required

    @property
    def target_key(self) -> str:
        """First referenced key (for single-pair references / messages)."""
        return self.pairs[0][0]

    @property
    def value(self) -> int:
        """First referenced value (for single-pair references / messages)."""
        return self.pairs[0][1]


class AvailableState:
    """The referenceable keysets of a set of installed entries.

    Refcounted (distinct entries can export identical keysets, e.g. two
    priorities over the same matches) and incrementally maintainable, so
    long campaigns avoid rebuilding it per update.
    """

    def __init__(self) -> None:
        self._by_table: Dict[str, Dict[KeySet, int]] = {}

    def add(self, table: str, keyset: KeySet) -> None:
        counts = self._by_table.setdefault(table, {})
        counts[keyset] = counts.get(keyset, 0) + 1

    def remove(self, table: str, keyset: KeySet) -> None:
        counts = self._by_table.get(table)
        if not counts or keyset not in counts:
            return
        counts[keyset] -= 1
        if counts[keyset] <= 0:
            del counts[keyset]

    def satisfies(self, reference: Reference) -> bool:
        demanded = set(reference.pairs)
        keysets = self._by_table.get(reference.target_table)
        if not keysets:
            return False
        return any(demanded <= keyset for keyset in keysets)

    def keysets(self, table: str) -> List[KeySet]:
        # Canonical order: dict iteration depends on insertion history, and
        # consumers feed these into seeded random choices — determinism of
        # fuzz campaigns requires a stable order here.
        return sorted(self._by_table.get(table, ()), key=lambda ks: sorted(ks))

    def copy(self) -> "AvailableState":
        clone = AvailableState()
        clone._by_table = {t: dict(c) for t, c in self._by_table.items()}
        return clone

    def __contains__(self, item: Tuple[str, str, int]) -> bool:
        table, key, value = item
        return any((key, value) in keyset for keyset in self._by_table.get(table, ()))


class ReferenceGraph:
    """The static reference structure of a P4 program plus query helpers."""

    def __init__(self, p4info: P4Info) -> None:
        self._p4info = p4info
        # Match-key edges: (table name, key name) -> (target table, key).
        self._key_edges: Dict[Tuple[str, str], Tuple[str, str]] = {}
        for (source, field), target in p4info.references.items():
            if p4info.table_by_name(source) is not None:
                self._key_edges[(source, field)] = target
        # Action edges, grouped into composites per target table:
        # action name -> target table -> [(param name, target key)].
        self._action_edges: Dict[str, Dict[str, List[Tuple[str, str]]]] = {}
        for action in p4info.actions.values():
            groups: Dict[str, List[Tuple[str, str]]] = {}
            for param in action.params:
                for table, key in param.refers_to:
                    groups.setdefault(table, []).append((param.name, key))
            if groups:
                self._action_edges[action.name] = groups

    @property
    def edges(self) -> Dict[Tuple[str, str], Tuple[str, str]]:
        """All reference edges, one representative target per source."""
        out = dict(self._key_edges)
        for action_name, groups in self._action_edges.items():
            for table, pairs in groups.items():
                for param_name, key in pairs:
                    out[(action_name, param_name)] = (table, key)
        return out

    def action_reference_groups(self, action_name: str) -> Dict[str, List[Tuple[str, str]]]:
        """target table -> [(param name, target key)] for one action."""
        return {t: list(pairs) for t, pairs in self._action_edges.get(action_name, {}).items()}

    def targets_of_table(self, table_name: str) -> List[Tuple[str, str]]:
        """Tables/keys that entries of ``table_name`` may reference."""
        info = self._p4info.table_by_name(table_name)
        if info is None:
            return []
        out: List[Tuple[str, str]] = [
            target
            for (source, _field), target in self._key_edges.items()
            if source == table_name
        ]
        for aid in info.action_ids:
            action = self._p4info.actions[aid]
            for table, pairs in self._action_edges.get(action.name, {}).items():
                out.extend((table, key) for _param, key in pairs)
        return out

    def is_referenced_table(self, table_name: str) -> bool:
        """Whether any edge points *at* this table."""
        if any(t == table_name for (t, _k) in self._key_edges.values()):
            return True
        return any(
            table_name in groups for groups in self._action_edges.values()
        )

    # ------------------------------------------------------------------
    # Entry-level reference extraction
    # ------------------------------------------------------------------
    def references_of(self, entry: TableEntry) -> List[Reference]:
        """All outgoing references of an entry (keys + action composites).

        Values that fail to decode are skipped: a malformed entry will be
        rejected on syntactic grounds before integrity is consulted.
        """
        table = self._p4info.tables.get(entry.table_id)
        if table is None:
            return []
        out: List[Reference] = []
        for match in entry.matches:
            mf = table.match_field_by_id(match.field_id)
            if mf is None:
                continue
            target = self._key_edges.get((table.name, mf.name))
            if target is None:
                continue
            try:
                value = codec.decode(match.value, mf.bitwidth, strict=False)
            except codec.CodecError:
                continue
            out.append(
                Reference(
                    source=f"{table.name}.{mf.name}",
                    target_table=target[0],
                    pairs=((target[1], value),),
                )
            )
        out.extend(self._action_references(entry))
        return out

    def _action_references(self, entry: TableEntry) -> List[Reference]:
        invocations: List[ActionInvocation] = []
        if isinstance(entry.action, ActionInvocation):
            invocations = [entry.action]
        elif isinstance(entry.action, ActionProfileActionSet):
            invocations = [m.action for m in entry.action.actions]
        out: List[Reference] = []
        for inv in invocations:
            action = self._p4info.actions.get(inv.action_id)
            if action is None:
                continue
            values: Dict[str, int] = {}
            for pid, data in inv.params:
                pinfo = action.param_by_id(pid)
                if pinfo is None:
                    continue
                try:
                    values[pinfo.name] = codec.decode(data, pinfo.bitwidth, strict=False)
                except codec.CodecError:
                    continue
            for target_table, pairs in self._action_edges.get(action.name, {}).items():
                demanded = tuple(
                    (key, values[param_name])
                    for param_name, key in pairs
                    if param_name in values
                )
                if demanded:
                    out.append(
                        Reference(
                            source=action.name,
                            target_table=target_table,
                            pairs=demanded,
                        )
                    )
        return out

    # ------------------------------------------------------------------
    # Values exported by an entry (what others may refer to)
    # ------------------------------------------------------------------
    def exported_keyset(self, entry: TableEntry) -> Optional[Tuple[str, KeySet]]:
        """The (table, keyset) this entry makes referenceable, if any."""
        table = self._p4info.tables.get(entry.table_id)
        if table is None:
            return None
        pairs = []
        for match in entry.matches:
            mf = table.match_field_by_id(match.field_id)
            if mf is None:
                continue
            try:
                value = codec.decode(match.value, mf.bitwidth, strict=False)
            except codec.CodecError:
                continue
            pairs.append((mf.name, value))
        if not pairs:
            return None
        return (table.name, frozenset(pairs))

    def exported_values(self, entry: TableEntry) -> List[Tuple[str, str, int]]:
        """(table, key, value) triples this entry makes referenceable."""
        exported = self.exported_keyset(entry)
        if exported is None:
            return []
        table, keyset = exported
        return [(table, key, value) for key, value in keyset]

    def collect_state(self, entries: Iterable[TableEntry]) -> AvailableState:
        """The referenceable state of a set of installed entries."""
        state = AvailableState()
        for entry in entries:
            exported = self.exported_keyset(entry)
            if exported is not None:
                state.add(*exported)
        return state

    # ------------------------------------------------------------------
    # Integrity checks against a state
    # ------------------------------------------------------------------
    def dangling_references(
        self, entry: TableEntry, available: AvailableState
    ) -> List[Reference]:
        """References of ``entry`` not satisfied by ``available``."""
        return [
            ref for ref in self.references_of(entry) if not available.satisfies(ref)
        ]

    def depends_on(self, entry: TableEntry, other: TableEntry) -> bool:
        """Whether ``entry`` references a keyset exported by ``other``.

        Used by the batcher: two such entries must not share a batch.  A
        composite reference depends on ``other`` if any demanded pair is
        provided by it.
        """
        exported = self.exported_keyset(other)
        if exported is None:
            return False
        table, keyset = exported
        for ref in self.references_of(entry):
            if ref.target_table != table:
                continue
            if any(pair in keyset for pair in ref.pairs):
                return True
        return False
