"""Symbolic encoding of @entry_restriction constraints into SMT terms.

§7 of the paper describes ongoing work to make p4-fuzzer *constraint aware*
via binary decision diagrams: sample constraint-compliant entries, and
mutate one node to produce entries that violate exactly the constraint.
We implement the same capability on the SMT backend already built for
p4-symbolic: encode the constraint over per-key bitvector variables, solve
for a model (a compliant entry), or solve the negation (an
"interestingly" non-compliant entry).
"""

from __future__ import annotations

from typing import Dict

from repro.p4.constraints.lang import CAnd, CBool, CCmp, CExpr, CInt, CKey, CNot, COr
from repro.p4.p4info import TableInfo
from repro.p4.ast import MatchKind
from repro.smt import terms as T


class SymbolicKeySet:
    """SMT variables for every accessor of every key of a table."""

    def __init__(self, table: TableInfo) -> None:
        self.table = table
        self.value_vars: Dict[str, T.Term] = {}
        self.mask_vars: Dict[str, T.Term] = {}
        self.prefix_vars: Dict[str, T.Term] = {}
        for mf in table.match_fields:
            base = f"{table.name}.{mf.name}"
            self.value_vars[mf.name] = T.bv_var(f"{base}::value", mf.bitwidth)
            self.mask_vars[mf.name] = T.bv_var(f"{base}::mask", mf.bitwidth)
            # Prefix length fits in 16 bits for any realistic field.
            self.prefix_vars[mf.name] = T.bv_var(f"{base}::prefix_length", 16)

    def accessor_term(self, key: str, accessor: str) -> T.Term:
        if accessor == "value":
            return self.value_vars[key]
        if accessor == "mask":
            return self.mask_vars[key]
        if accessor == "prefix_length":
            return self.prefix_vars[key]
        raise KeyError(f"unknown accessor {accessor}")

    def wellformedness(self) -> T.Term:
        """Structural constraints the solver must respect per match kind.

        * exact keys: mask is all-ones, prefix is the full width;
        * lpm keys: prefix_length <= width, mask is derived, and masked-out
          bits of the value are zero (canonical form);
        * ternary keys: masked-out value bits are zero (canonical form);
        * optional keys: mask is all-ones or all-zeros.
        """
        clauses = []
        for mf in self.table.match_fields:
            value = self.value_vars[mf.name]
            mask = self.mask_vars[mf.name]
            prefix = self.prefix_vars[mf.name]
            width = mf.bitwidth
            ones = T.bv_const((1 << width) - 1, width)
            if mf.match_type is MatchKind.EXACT:
                clauses.append(mask.eq(ones))
                clauses.append(prefix.eq(T.bv_const(width, 16)))
            elif mf.match_type is MatchKind.LPM:
                clauses.append(prefix.ule(T.bv_const(width, 16)))
                # mask == prefix-derived mask, encoded as a chain of ites.
                derived = T.bv_const(0, width)
                for plen in range(width, 0, -1):
                    mval = ((1 << plen) - 1) << (width - plen)
                    derived = T.ite(
                        prefix.eq(T.bv_const(plen, 16)),
                        T.bv_const(mval, width),
                        derived,
                    )
                clauses.append(mask.eq(derived))
                clauses.append((value & ~mask).eq(T.bv_const(0, width)))
            elif mf.match_type is MatchKind.TERNARY:
                clauses.append((value & ~mask).eq(T.bv_const(0, width)))
                clauses.append(prefix.eq(T.bv_const(0, 16)))
            else:  # OPTIONAL: present (exact) or absent (wildcard)
                clauses.append(T.or_(mask.eq(ones), mask.eq(T.bv_const(0, width))))
                clauses.append((value & ~mask).eq(T.bv_const(0, width)))
                clauses.append(prefix.eq(T.bv_const(0, 16)))
        return T.and_(*clauses) if clauses else T.TRUE


def encode_constraint(expr: CExpr, keys: SymbolicKeySet) -> T.Term:
    """Translate a parsed constraint into an SMT boolean term."""

    def operand(node, width_hint: int) -> T.Term:
        if isinstance(node, CInt):
            return T.bv_const(node.value, width_hint)
        if isinstance(node, CKey):
            return keys.accessor_term(node.name, node.accessor)
        raise TypeError(f"bad operand {node!r}")

    def operand_width(node) -> int:
        if isinstance(node, CKey):
            return keys.accessor_term(node.name, node.accessor).width
        return 0

    def walk(node) -> T.Term:
        if isinstance(node, CBool):
            return T.TRUE if node.value else T.FALSE
        if isinstance(node, CCmp):
            width = max(operand_width(node.left), operand_width(node.right))
            if width == 0:
                width = 32  # literal-vs-literal comparison
            left = operand(node.left, width)
            right = operand(node.right, width)
            # Align widths by zero-extension (constraint semantics are
            # unsigned).
            if left.width < width:
                left = T.zext(left, width - left.width)
            if right.width < width:
                right = T.zext(right, width - right.width)
            if node.op == "==":
                return left.eq(right)
            if node.op == "!=":
                return left.ne(right)
            if node.op == "<":
                return left.ult(right)
            if node.op == "<=":
                return left.ule(right)
            if node.op == ">":
                return right.ult(left)
            return right.ule(left)
        if isinstance(node, CNot):
            return T.not_(walk(node.arg))
        if isinstance(node, CAnd):
            return T.and_(*[walk(a) for a in node.args])
        if isinstance(node, COr):
            return T.or_(*[walk(a) for a in node.args])
        raise TypeError(f"bad constraint node {node!r}")

    return walk(expr)
