"""repro.p4.constraints — the P4-constraints extension (§3).

P4Runtime is deliberately permissive; fixed-function hardware is not.  The
paper bridges the gap with two annotation mechanisms that become part of the
controller contract:

* ``@entry_restriction("<expr>")`` on a table — a boolean expression over
  the table's match keys that every entry must satisfy (e.g.
  ``"vrf_id != 0"`` to protect the hardware-reserved default VRF).
  This package implements the expression language: a hand-written
  lexer/recursive-descent parser (:mod:`repro.p4.constraints.lang`), a
  concrete evaluator used by the switch's P4Runtime layer and the fuzzer's
  oracle (:mod:`repro.p4.constraints.evaluator`), and a symbolic encoder
  into SMT terms used for constraint-compliant entry generation
  (:mod:`repro.p4.constraints.symbolic` — the paper sketches a BDD-based
  mechanism in §7; we use the same SMT backend as p4-symbolic).

* ``@refers_to(table, key)`` on a key or action parameter — referential
  integrity between tables (:mod:`repro.p4.constraints.refs`): entries may
  not dangle, deletes may not orphan, and batches must not mix dependent
  updates (§3 "Batching Table Entries", §4.4).
"""

from repro.p4.constraints.lang import ConstraintSyntaxError, parse_constraint
from repro.p4.constraints.evaluator import KeyValue, check_entry_against_constraint
from repro.p4.constraints.refs import ReferenceGraph

__all__ = [
    "ConstraintSyntaxError",
    "KeyValue",
    "ReferenceGraph",
    "check_entry_against_constraint",
    "parse_constraint",
]
