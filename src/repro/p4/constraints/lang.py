"""The @entry_restriction expression language: lexer, parser, AST.

Grammar (precedence low to high, mirroring the open-source p4-constraints
grammar closely enough for every restriction in our models):

    expr     := implies
    implies  := or ( '->' implies )?          (right associative)
    or       := and ( '||' and )*
    and      := unary ( '&&' unary )*
    unary    := '!' unary | comparison
    compare  := operand ( ('=='|'!='|'<'|'<='|'>'|'>=') operand )?
    operand  := INT | 'true' | 'false' | key | '(' expr ')'
    key      := IDENT ('.' IDENT)* ('::' ACCESSOR)?

Keys refer to the enclosing table's match keys by name.  Accessors expose
the sub-structure of non-exact matches:

    vrf_id                value of an exact key
    dst_addr::prefix_length   LPM prefix length
    in_port::mask         ternary mask
    in_port::value        ternary value (same as the bare name)

Integer literals may be decimal, hex (0x...) or binary (0b...).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Tuple, Union


class ConstraintSyntaxError(ValueError):
    """Raised when an @entry_restriction string fails to parse."""


# ----------------------------------------------------------------------
# AST
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CKey:
    """Reference to a match key, possibly with an accessor."""

    name: str  # the key name as written (dotted)
    accessor: str = "value"  # "value" | "mask" | "prefix_length"

    def __repr__(self) -> str:
        if self.accessor == "value":
            return self.name
        return f"{self.name}::{self.accessor}"


@dataclass(frozen=True)
class CInt:
    value: int

    def __repr__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class CBool:
    value: bool

    def __repr__(self) -> str:
        return "true" if self.value else "false"


@dataclass(frozen=True)
class CCmp:
    op: str  # == != < <= > >=
    left: Union[CKey, CInt]
    right: Union[CKey, CInt]

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True)
class CNot:
    arg: "CExpr"

    def __repr__(self) -> str:
        return f"!({self.arg!r})"


@dataclass(frozen=True)
class CAnd:
    args: Tuple["CExpr", ...]

    def __repr__(self) -> str:
        return "(" + " && ".join(repr(a) for a in self.args) + ")"


@dataclass(frozen=True)
class COr:
    args: Tuple["CExpr", ...]

    def __repr__(self) -> str:
        return "(" + " || ".join(repr(a) for a in self.args) + ")"


CExpr = Union[CBool, CCmp, CNot, CAnd, COr]


# ----------------------------------------------------------------------
# Lexer
# ----------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>\#[^\n]*|//[^\n]*)
  | (?P<hex>0[xX][0-9a-fA-F]+)
  | (?P<bin>0[bB][01]+)
  | (?P<int>\d+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*(\.[A-Za-z_][A-Za-z0-9_]*)*)
  | (?P<accessor>::)
  | (?P<op>->|==|!=|<=|>=|&&|\|\||[!<>()])
    """,
    re.VERBOSE,
)

_ACCESSORS = ("value", "mask", "prefix_length")


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise ConstraintSyntaxError(f"unexpected character {text[pos]!r} at offset {pos}")
        pos = m.end()
        kind = m.lastgroup
        if kind in ("ws", "comment"):
            continue
        tokens.append((kind, m.group()))
    tokens.append(("eof", ""))
    return tokens


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------


class _Parser:
    def __init__(self, tokens: List[Tuple[str, str]]) -> None:
        self._tokens = tokens
        self._pos = 0

    def peek(self) -> Tuple[str, str]:
        return self._tokens[self._pos]

    def advance(self) -> Tuple[str, str]:
        tok = self._tokens[self._pos]
        self._pos += 1
        return tok

    def expect(self, text: str) -> None:
        kind, value = self.advance()
        if value != text:
            raise ConstraintSyntaxError(f"expected {text!r}, found {value!r}")

    # expr := implies
    def parse_expr(self) -> CExpr:
        return self.parse_implies()

    def parse_implies(self) -> CExpr:
        left = self.parse_or()
        if self.peek()[1] == "->":
            self.advance()
            right = self.parse_implies()
            return COr((CNot(left), right))
        return left

    def parse_or(self) -> CExpr:
        args = [self.parse_and()]
        while self.peek()[1] == "||":
            self.advance()
            args.append(self.parse_and())
        if len(args) == 1:
            return args[0]
        return COr(tuple(args))

    def parse_and(self) -> CExpr:
        args = [self.parse_unary()]
        while self.peek()[1] == "&&":
            self.advance()
            args.append(self.parse_unary())
        if len(args) == 1:
            return args[0]
        return CAnd(tuple(args))

    def parse_unary(self) -> CExpr:
        if self.peek()[1] == "!":
            self.advance()
            return CNot(self.parse_unary())
        return self.parse_comparison()

    def parse_comparison(self) -> CExpr:
        left = self.parse_operand()
        kind, value = self.peek()
        if value in ("==", "!=", "<", "<=", ">", ">="):
            self.advance()
            right = self.parse_operand()
            if isinstance(left, CBool) or isinstance(right, CBool):
                raise ConstraintSyntaxError("comparisons require integer operands")
            # Sub-expression comparisons are not supported (nor needed).
            if not isinstance(left, (CKey, CInt)) or not isinstance(right, (CKey, CInt)):
                raise ConstraintSyntaxError("comparison operands must be keys or literals")
            return CCmp(value, left, right)
        # A bare operand must be a boolean literal or parenthesised boolean.
        if isinstance(left, (CBool, CCmp, CNot, CAnd, COr)):
            return left
        raise ConstraintSyntaxError(f"expected a comparison after {left!r}")

    def parse_operand(self):
        kind, value = self.peek()
        if kind in ("int", "hex", "bin"):
            self.advance()
            return CInt(int(value, 0))
        if kind == "ident":
            if value == "true":
                self.advance()
                return CBool(True)
            if value == "false":
                self.advance()
                return CBool(False)
            self.advance()
            accessor = "value"
            if self.peek()[1] == "::":
                self.advance()
                akind, aval = self.advance()
                if akind != "ident" or aval not in _ACCESSORS:
                    raise ConstraintSyntaxError(
                        f"unknown accessor ::{aval}; expected one of {_ACCESSORS}"
                    )
                accessor = aval
            return CKey(value, accessor)
        if value == "(":
            self.advance()
            inner = self.parse_expr()
            self.expect(")")
            return inner
        raise ConstraintSyntaxError(f"unexpected token {value!r}")

    def parse_complete(self) -> CExpr:
        expr = self.parse_expr()
        kind, value = self.peek()
        if kind != "eof":
            raise ConstraintSyntaxError(f"trailing input starting at {value!r}")
        if not isinstance(expr, (CBool, CCmp, CNot, CAnd, COr)):
            raise ConstraintSyntaxError("constraint must be a boolean expression")
        return expr


def parse_constraint(text: str) -> CExpr:
    """Parse an @entry_restriction expression; raises ConstraintSyntaxError."""
    return _Parser(_tokenize(text)).parse_complete()


def normalize_constraint_text(text: str) -> str:
    """Canonical single-line form of a restriction: comments stripped,
    whitespace collapsed.  Used wherever the restriction string becomes part
    of an artifact (P4Info fingerprints, printed P4 text) so that layout
    differences don't change the contract."""
    lines = []
    for line in text.splitlines():
        for marker in ("//", "#"):
            index = line.find(marker)
            if index != -1:
                line = line[:index]
        lines.append(line)
    return " ".join(" ".join(lines).split())


def keys_mentioned(expr: CExpr) -> List[str]:
    """All key names referenced by the constraint (no duplicates, in order)."""
    out: List[str] = []

    def walk(node) -> None:
        if isinstance(node, CCmp):
            for side in (node.left, node.right):
                if isinstance(side, CKey) and side.name not in out:
                    out.append(side.name)
        elif isinstance(node, CNot):
            walk(node.arg)
        elif isinstance(node, (CAnd, COr)):
            for a in node.args:
                walk(a)

    walk(expr)
    return out
