"""Concrete evaluation of @entry_restriction constraints against entries.

The switch's P4Runtime layer enforces these at run time (§3
"P4-Constraints"); the fuzzer's oracle evaluates them to decide whether a
generated request was *constraint compliant* (§4 "Valid and Invalid
Requests").  Both call :func:`check_entry_against_constraint`.

Key semantics (matching the open-source p4-constraints tool):

* an omitted lpm/ternary/optional key is a wildcard: value 0, mask 0,
  prefix_length 0;
* ``key`` / ``key::value`` is the match value;
* ``key::mask`` is the ternary mask (for lpm keys, the mask implied by the
  prefix length);
* ``key::prefix_length`` is the LPM prefix length;
* comparisons are unsigned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.p4.constraints.lang import (
    CAnd,
    CBool,
    CCmp,
    CExpr,
    CInt,
    CKey,
    CNot,
    COr,
)


class ConstraintEvalError(ValueError):
    """Raised when a constraint references an unknown key or accessor."""


@dataclass(frozen=True)
class KeyValue:
    """Decoded view of one match key's contribution to an entry."""

    value: int = 0
    mask: int = 0
    prefix_len: int = 0
    present: bool = False  # whether the entry supplied this field match

    def accessor(self, name: str) -> int:
        if name == "value":
            return self.value
        if name == "mask":
            return self.mask
        if name == "prefix_length":
            return self.prefix_len
        raise ConstraintEvalError(f"unknown accessor {name}")


def evaluate_constraint(expr: CExpr, keys: Mapping[str, KeyValue]) -> bool:
    """Evaluate a parsed constraint against decoded key values."""

    def operand(node) -> int:
        if isinstance(node, CInt):
            return node.value
        if isinstance(node, CKey):
            kv = keys.get(node.name)
            if kv is None:
                raise ConstraintEvalError(f"constraint references unknown key {node.name}")
            return kv.accessor(node.accessor)
        raise ConstraintEvalError(f"bad operand {node!r}")

    def walk(node) -> bool:
        if isinstance(node, CBool):
            return node.value
        if isinstance(node, CCmp):
            left = operand(node.left)
            right = operand(node.right)
            return {
                "==": left == right,
                "!=": left != right,
                "<": left < right,
                "<=": left <= right,
                ">": left > right,
                ">=": left >= right,
            }[node.op]
        if isinstance(node, CNot):
            return not walk(node.arg)
        if isinstance(node, CAnd):
            return all(walk(a) for a in node.args)
        if isinstance(node, COr):
            return any(walk(a) for a in node.args)
        raise ConstraintEvalError(f"bad constraint node {node!r}")

    return walk(expr)


def check_entry_against_constraint(
    expr: CExpr, keys: Mapping[str, KeyValue]
) -> Optional[str]:
    """Returns None if the entry satisfies the constraint, else a reason."""
    try:
        ok = evaluate_constraint(expr, keys)
    except ConstraintEvalError as exc:
        return f"constraint evaluation failed: {exc}"
    if ok:
        return None
    return f"entry violates @entry_restriction {expr!r}"
