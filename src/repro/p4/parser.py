"""P4-16 (subset) parser: P4 source text → the model IR.

Parses the dialect emitted by :mod:`repro.p4.printer` — which is the
Figure-2 style the paper's models are written in: header declarations, a
metadata struct, actions with assignment bodies, match-action tables with
``@entry_restriction`` / ``@refers_to`` / ``@name`` annotations, and
ingress/egress controls whose ``apply`` blocks contain table applications,
labelled conditionals, and assignments.

The subset deliberately omits what the paper's models omit (§3 "P4
Language Features"): header stacks, unions, registers, generic parsers
(the parser pattern is an annotation), and table re-use.

``parse_program(print_program(p))`` is a fixpoint: re-printing the parsed
program reproduces the text byte for byte (property-tested).
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.p4 import ast
from repro.p4.ast import (
    Action,
    ActionParamSpec,
    ActionProfile,
    ActionRef,
    BinOp,
    BoolOp,
    Cmp,
    Const,
    FieldRef,
    HashExpr,
    HeaderType,
    If,
    IsValid,
    MatchKind,
    P4Program,
    Param,
    ParserSpec,
    Seq,
    Statement,
    Table,
    TableApply,
    TableKey,
)


class P4ParseError(ValueError):
    """The source text is outside the supported subset or malformed."""


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>//[^\n]*)
  | (?P<string>"[^"]*")
  | (?P<width_const>\d+w\d+)
  | (?P<int>\d+)
  | (?P<path>[A-Za-z_][A-Za-z0-9_]*(\.[A-Za-z_][A-Za-z0-9_]*)+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<at>@[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op>&&|\|\||==|!=|<=|>=|[{}()<>;:=,!+\-&|^])
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise P4ParseError(f"unexpected character {text[pos]!r} at offset {pos}")
        pos = m.end()
        if m.lastgroup in ("ws", "comment"):
            continue
        tokens.append((m.lastgroup, m.group()))
    tokens.append(("eof", ""))
    return tokens


class _Parser:
    def __init__(self, text: str) -> None:
        self._tokens = _tokenize(text)
        self._pos = 0
        self._headers: List[HeaderType] = []
        self._metadata: List[Tuple[str, int]] = []
        self._actions: Dict[str, Action] = {}
        self._pending_param_refs: Dict[str, Tuple[str, str]] = {}
        self._tables: Dict[str, Table] = {}
        self._role = "unspecified"
        self._parser_pattern = "ethernet_ipv4_ipv6"
        self._program_name = "parsed"
        self._ingress: Optional[Seq] = None
        self._egress: Seq = Seq()

    # --- token plumbing -------------------------------------------------
    def peek(self) -> Tuple[str, str]:
        return self._tokens[self._pos]

    def advance(self) -> Tuple[str, str]:
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def expect(self, value: str) -> str:
        kind, text = self.advance()
        if text != value:
            raise P4ParseError(f"expected {value!r}, found {text!r}")
        return text

    def expect_kind(self, kind: str) -> str:
        got_kind, text = self.advance()
        if got_kind != kind:
            raise P4ParseError(f"expected {kind}, found {text!r} ({got_kind})")
        return text

    def _string(self) -> str:
        return self.expect_kind("string")[1:-1]

    def _int(self) -> int:
        return int(self.expect_kind("int"))

    # --- top level ------------------------------------------------------
    def parse(self) -> P4Program:
        while self.peek()[0] != "eof":
            kind, text = self.peek()
            if text == "@role":
                self.advance()
                self.expect("(")
                self._role = self._string()
                self.expect(")")
            elif text == "@parser":
                self.advance()
                self.expect("(")
                self._parser_pattern = self._string()
                self.expect(")")
            elif text == "header":
                self._parse_header()
            elif text == "struct":
                self._parse_metadata()
            elif text == "control":
                self._parse_control()
            elif kind == "at":
                # Stray annotation before a control we understand inline.
                self._parse_control_annotation()
            else:
                raise P4ParseError(f"unexpected top-level token {text!r}")
        if self._ingress is None:
            raise P4ParseError("no ingress control found")
        return P4Program(
            name=self._program_name,
            headers=tuple(self._headers),
            metadata=tuple(self._metadata),
            parser=ParserSpec(self._parser_pattern),
            ingress=self._ingress,
            egress=self._egress,
            role=self._role,
        )

    def _parse_control_annotation(self) -> None:
        raise P4ParseError(f"unsupported top-level annotation {self.peek()[1]!r}")

    # --- declarations ---------------------------------------------------
    def _parse_header(self) -> None:
        self.expect("header")
        name = self.expect_kind("ident")
        if not name.endswith("_t"):
            raise P4ParseError(f"header type {name!r} must end in _t")
        self.expect("{")
        fields: List[Tuple[str, int]] = []
        while self.peek()[1] != "}":
            width = self._parse_bit_type()
            fname = self.expect_kind("ident")
            self.expect(";")
            fields.append((fname, width))
        self.expect("}")
        self._headers.append(HeaderType(name[:-2], tuple(fields)))

    def _parse_bit_type(self) -> int:
        self.expect("bit")
        self.expect("<")
        width = self._int()
        self.expect(">")
        return width

    def _parse_metadata(self) -> None:
        self.expect("struct")
        self.expect_kind("ident")  # metadata_t
        self.expect("{")
        while self.peek()[1] != "}":
            width = self._parse_bit_type()
            name = self.expect_kind("ident")
            self.expect(";")
            self._metadata.append((name, width))
        self.expect("}")

    # --- controls ---------------------------------------------------------
    def _parse_control(self) -> None:
        self.expect("control")
        name = self.expect_kind("ident")
        self.expect("(")
        depth = 1
        while depth:  # skip the parameter list
            text = self.advance()[1]
            if text == "(":
                depth += 1
            elif text == ")":
                depth -= 1
        self.expect("{")
        is_egress = name.endswith("_egress")
        if not is_egress and name.endswith("_ingress"):
            self._program_name = name[: -len("_ingress")]
        body: Optional[Seq] = None
        while self.peek()[1] != "}":
            kind, text = self.peek()
            if text == "action":
                self._parse_action()
            elif text == "table":
                self._parse_table(annotations={})
            elif kind == "at" or kind == "string":
                self._parse_annotated_member()
            elif text == "apply":
                body = self._parse_apply()
            else:
                raise P4ParseError(f"unexpected control member {text!r}")
        self.expect("}")
        if is_egress:
            self._egress = body or Seq()
        else:
            self._ingress = body or Seq()

    def _parse_annotated_member(self) -> None:
        annotations: Dict[str, object] = {}
        while self.peek()[0] == "at":
            name = self.advance()[1]
            if name == "@entry_restriction":
                self.expect("(")
                annotations["entry_restriction"] = self._string()
                self.expect(")")
            elif name == "@resource_table":
                annotations["resource"] = True
            elif name == "@logical_table":
                annotations["logical"] = True
            else:
                raise P4ParseError(f"unknown annotation {name!r}")
        kind, text = self.peek()
        if text == "table":
            self._parse_table(annotations)
        elif text == "action":
            self._parse_action()
        else:
            raise P4ParseError(f"annotation not followed by table/action: {text!r}")

    def _parse_action(self) -> None:
        self.expect("action")
        name = self.expect_kind("ident")
        self.expect("(")
        params: List[ActionParamSpec] = []
        while self.peek()[1] != ")":
            if self.peek()[1] == ",":
                self.advance()
                continue
            refs: List[Tuple[str, str]] = []
            while self.peek()[1] == "@refers_to":
                self.advance()
                self.expect("(")
                table = self.expect_kind("ident")
                self.expect(",")
                key = self.expect_kind("ident")
                self.expect(")")
                refs.append((table, key))
            width = self._parse_bit_type()
            pname = self.expect_kind("ident")
            refers_to = None
            if len(refs) == 1:
                refers_to = refs[0]
            elif refs:
                refers_to = tuple(refs)
            params.append(ActionParamSpec(pname, width, refers_to))
        self.expect(")")
        self.expect("{")
        body: List[Statement] = []
        while self.peek()[1] != "}":
            dest = self.expect_kind("path")
            self.expect("=")
            value = self._parse_expr(params)
            self.expect(";")
            body.append(Statement(FieldRef(dest), value))
        self.expect("}")
        self._actions[name] = Action(name, tuple(params), tuple(body))

    # --- tables -----------------------------------------------------------
    def _parse_table(self, annotations: Dict[str, object]) -> None:
        self.expect("table")
        name = self.expect_kind("ident")
        self.expect("{")
        keys: List[TableKey] = []
        # (action name, default_only, table_only)
        action_refs: List[Tuple[str, bool, bool]] = []
        default_action = "NoAction"
        size = 1024
        implementation: Optional[ActionProfile] = None
        while self.peek()[1] != "}":
            member = self.advance()[1]
            if member == "key":
                self.expect("=")
                self.expect("{")
                while self.peek()[1] != "}":
                    keys.append(self._parse_key())
                self.expect("}")
            elif member == "actions":
                self.expect("=")
                self.expect("{")
                while self.peek()[1] != "}":
                    if self.peek()[1] == ",":
                        self.advance()
                        continue
                    default_only = table_only = False
                    while self.peek()[0] == "at":
                        annotation = self.advance()[1]
                        if annotation == "@defaultonly":
                            default_only = True
                        elif annotation == "@tableonly":
                            table_only = True
                        else:
                            raise P4ParseError(
                                f"unknown action annotation {annotation!r}"
                            )
                    action_refs.append(
                        (self.expect_kind("ident"), default_only, table_only)
                    )
                self.expect("}")
                self.expect(";")
            elif member == "const":
                self.expect("default_action")
                self.expect("=")
                default_action = self.expect_kind("ident")
                self.expect(";")
            elif member == "size":
                self.expect("=")
                size = self._int()
                self.expect(";")
            elif member == "implementation":
                self.expect("=")
                self.expect("action_selector")
                self.expect("(")
                profile_name = self.expect_kind("ident")
                self.expect(",")
                max_group = self._int()
                selector_fields: List[FieldRef] = []
                if self.peek()[1] == ",":
                    self.advance()
                    self.expect("{")
                    while self.peek()[1] != "}":
                        if self.peek()[1] == ",":
                            self.advance()
                            continue
                        selector_fields.append(
                            FieldRef(self.expect_kind("path"))
                        )
                    self.expect("}")
                self.expect(")")
                self.expect(";")
                implementation = ActionProfile(
                    profile_name, max_group, tuple(selector_fields)
                )
            else:
                raise P4ParseError(f"unknown table member {member!r}")
        self.expect("}")

        def lookup(action_name: str) -> Action:
            action = self._actions.get(action_name)
            if action is None:
                if action_name == "NoAction":
                    return ast.NO_ACTION
                raise P4ParseError(f"table {name} references unknown action {action_name}")
            return action

        self._tables[name] = Table(
            name=name,
            keys=tuple(keys),
            actions=tuple(
                ActionRef(lookup(a), default_only=d, table_only=t)
                for a, d, t in action_refs
            ),
            default_action=lookup(default_action),
            size=size,
            entry_restriction=annotations.get("entry_restriction"),
            implementation=implementation,
            is_resource_table=bool(annotations.get("resource")),
            is_logical=bool(annotations.get("logical")),
        )

    def _parse_key(self) -> TableKey:
        path = self.expect_kind("path")
        self.expect(":")
        kind = self.expect_kind("ident")
        try:
            match_kind = MatchKind(kind)
        except ValueError:
            raise P4ParseError(f"unknown match kind {kind!r}") from None
        key_name = None
        refers_to = None
        while self.peek()[0] == "at":
            annotation = self.advance()[1]
            if annotation == "@name":
                self.expect("(")
                key_name = self._string()
                self.expect(")")
            elif annotation == "@refers_to":
                self.expect("(")
                table = self.expect_kind("ident")
                self.expect(",")
                key = self.expect_kind("ident")
                self.expect(")")
                refers_to = (table, key)
            else:
                raise P4ParseError(f"unknown key annotation {annotation!r}")
        self.expect(";")
        return TableKey(FieldRef(path), match_kind, name=key_name, refers_to=refers_to)

    # --- apply blocks -----------------------------------------------------
    def _parse_apply(self) -> Seq:
        self.expect("apply")
        self.expect("{")
        return self._parse_block()

    def _parse_block(self) -> Seq:
        nodes = []
        while self.peek()[1] != "}":
            kind, text = self.peek()
            if text == "if":
                nodes.append(self._parse_if())
            elif kind == "path":
                # Either `table.apply();` (single dotted segment ending in
                # .apply) or an assignment.
                path = self.advance()[1]
                if path.endswith(".apply"):
                    self.expect("(")
                    self.expect(")")
                    self.expect(";")
                    table_name = path[: -len(".apply")]
                    table = self._tables.get(table_name)
                    if table is None:
                        raise P4ParseError(f"apply of unknown table {table_name!r}")
                    nodes.append(TableApply(table))
                else:
                    self.expect("=")
                    value = self._parse_expr(())
                    self.expect(";")
                    nodes.append(Statement(FieldRef(path), value))
            else:
                raise P4ParseError(f"unexpected statement {text!r}")
        self.expect("}")
        return Seq(tuple(nodes))

    def _parse_if(self) -> If:
        # The printer emits `if @label("x") (cond) { ... } [else { ... }]`,
        # with the label annotation optional.
        self.expect("if")
        label = ""
        if self.peek()[1] == "@label":
            self.advance()
            self.expect("(")
            label = self._string()
            self.expect(")")
        self.expect("(")
        cond = self._parse_cond()
        self.expect(")")
        self.expect("{")
        then_block = self._parse_block()
        else_block = Seq()
        if self.peek()[1] == "else":
            self.advance()
            self.expect("{")
            else_block = self._parse_block()
        return If(cond=cond, then_block=then_block, else_block=else_block, label=label)

    # --- expressions --------------------------------------------------------
    def _parse_expr(self, params) -> object:
        param_names = {p.name for p in params} if params else set()
        kind, text = self.peek()
        if kind == "width_const":
            self.advance()
            width, value = text.split("w")
            return Const(int(value), int(width))
        if kind == "path":
            self.advance()
            return FieldRef(text)
        if kind == "ident":
            if text == "hash":
                return self._parse_hash()
            self.advance()
            return Param(text)
        if text == "(":
            self.advance()
            left = self._parse_expr(params)
            op = self.advance()[1]
            if op not in ("+", "-", "&", "|", "^"):
                raise P4ParseError(f"unknown binary operator {op!r}")
            right = self._parse_expr(params)
            self.expect(")")
            return BinOp(op, left, right)
        raise P4ParseError(f"unparseable expression at {text!r}")

    def _parse_hash(self) -> HashExpr:
        self.expect("hash")
        self.expect("<")
        width = self._int()
        self.expect(">")
        self.expect("(")
        label = self.expect_kind("ident")
        self.expect(";")
        fields = []
        while self.peek()[1] != ")":
            if self.peek()[1] == ",":
                self.advance()
                continue
            fields.append(FieldRef(self.expect_kind("path")))
        self.expect(")")
        return HashExpr(tuple(fields), width, label)

    def _parse_cond(self):
        return self._parse_or()

    def _parse_or(self):
        left = self._parse_and()
        args = [left]
        while self.peek()[1] == "||":
            self.advance()
            args.append(self._parse_and())
        if len(args) == 1:
            return left
        return BoolOp("or", tuple(args))

    def _parse_and(self):
        args = [self._parse_cond_unary()]
        while self.peek()[1] == "&&":
            self.advance()
            args.append(self._parse_cond_unary())
        if len(args) == 1:
            return args[0]
        return BoolOp("and", tuple(args))

    def _parse_cond_unary(self):
        if self.peek()[1] == "!":
            self.advance()
            return BoolOp("not", (self._parse_cond_unary(),))
        if self.peek()[1] == "(":
            # Either a parenthesised boolean or a comparison.
            save = self._pos
            self.advance()
            try:
                inner = self._parse_cond()
                if self.peek()[1] in ("==", "!=", "<", "<=", ">", ">="):
                    raise P4ParseError("comparison, rewind")
                self.expect(")")
                return inner
            except P4ParseError:
                self._pos = save
                return self._parse_comparison()
        if self.peek()[0] == "path" and self._tokens[self._pos][1].endswith(".isValid"):
            path = self.advance()[1]
            self.expect("(")
            self.expect(")")
            return IsValid(path[: -len(".isValid")])
        return self._parse_comparison()

    def _parse_comparison(self):
        self.expect("(")
        left = self._parse_expr(())
        op = self.advance()[1]
        if op not in ("==", "!=", "<", "<=", ">", ">="):
            raise P4ParseError(f"unknown comparison operator {op!r}")
        right = self._parse_expr(())
        self.expect(")")
        return Cmp(op, left, right)


def parse_program(text: str) -> P4Program:
    """Parse P4 source text (the printer's dialect) into a P4Program."""
    return _Parser(text).parse()
